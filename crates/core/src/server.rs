//! Multi-session server front-end with a deterministic workload scheduler.
//!
//! The paper's deployment model is a shared accelerator serving many
//! concurrent mainframe sessions. [`Server`] reproduces that front-end on
//! top of the single-caller [`Idaa`] facade: N connected seats, each with
//! its own [`Session`] (statement sequencing, transaction state, special
//! registers) and per-seat prepared-statement handles, feeding a
//! **deterministic scheduler on the virtual clock**:
//!
//! * **Admission control** — at most [`ServerConfig::admission_limit`]
//!   statements are admitted per round (`0` means the accelerator's
//!   [`AccelConfig::workers`](idaa_accel::AccelConfig::workers) count).
//! * **FIFO within priority, round-robin across sessions** — rounds visit
//!   priority classes from [`Priority::System`] down to [`Priority::Low`];
//!   within a class, ready seats are visited in ascending seat order
//!   rotated by the round number, one statement per visit, so no ready
//!   seat starves behind a chatty neighbour.
//! * **Queue time is virtual time** — a queued statement waits while its
//!   predecessors consume the link clock; between rounds the scheduler
//!   charges one [`ServerConfig::reschedule_tick`] via
//!   [`NetLink::advance`](idaa_netsim::NetLink::advance), never a wall
//!   sleep. Queue/reschedule time lands in `LinkMetrics::fault_time`
//!   only — the delivered byte/message counters are untouched, so every
//!   byte-exact transfer assertion holds with or without the server.
//!
//! Scheduling state is mirrored into the system [`idaa_common::MetricsRegistry`] under
//! `server.*` — per-seat `queued`/`running` gauges and
//! `done`/`failed`/`queue_time_us`/`bytes` counters — which is exactly
//! what the `SHOW WORKLOAD` statement renders. Limits are governed, not
//! broken: one seat over [`ServerConfig::max_sessions`] or one statement
//! over [`ServerConfig::max_queue_depth`] is refused with SQLCODE **-905**
//! ([`Error::WorkloadLimit`]) while the system stays healthy.
//!
//! Determinism: for a given (seed, connect order, submission schedule) the
//! scheduler replays byte-identical `LinkMetrics`, traces, and
//! `SHOW WORKLOAD` output — seats are numbered 1.. in connect order
//! (never the process-global `Session::id`), rounds and rotations derive
//! only from scheduler state, and execution is serialized in admission
//! order on the one virtual timeline. With one seat and one statement per
//! drain the server reproduces the plain single-caller paths byte for
//! byte: no reschedule tick is charged when nothing else is queued.

use crate::idaa::{ExecOutcome, Idaa, IdaaConfig, Payload, QueueInfo};
use crate::session::Session;
use idaa_common::{Error, Result, Rows, Value};
use idaa_sql::ast::Statement;
use idaa_sql::parse_statement;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// Workload priority class of a connected seat. Rounds admit classes from
/// `System` down to `Low`; within a class admission is round-robin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    Low,
    Normal,
    High,
    System,
}

impl Priority {
    /// Admission order: highest class first.
    pub(crate) const CLASSES: [Priority; 4] =
        [Priority::System, Priority::High, Priority::Normal, Priority::Low];

    /// Numeric rank stored in the `server.session.{seat}.priority` gauge.
    pub fn rank(self) -> i64 {
        match self {
            Priority::Low => 0,
            Priority::Normal => 1,
            Priority::High => 2,
            Priority::System => 3,
        }
    }

    /// Display name (the `PRIORITY` column of `SHOW WORKLOAD`).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Low => "LOW",
            Priority::Normal => "NORMAL",
            Priority::High => "HIGH",
            Priority::System => "SYSTEM",
        }
    }

    /// Inverse of [`Priority::rank`] for rendering gauge values.
    pub fn name_of_rank(rank: i64) -> &'static str {
        match rank {
            0 => "LOW",
            1 => "NORMAL",
            2 => "HIGH",
            3 => "SYSTEM",
            _ => "UNKNOWN",
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Workload-manager tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Statements admitted per scheduler round. `0` (the default) derives
    /// the limit from the accelerator's worker count — the shared device
    /// is the resource being multiplexed.
    pub admission_limit: usize,
    /// Virtual time charged between rounds while ready work remains
    /// queued (via `NetLink::advance`; fault-time only, never traffic).
    pub reschedule_tick: Duration,
    /// Per-seat queue depth bound; one more statement is refused with
    /// SQLCODE -905. `0` means unbounded.
    pub max_queue_depth: usize,
    /// Connected-seat bound; one more connect is refused with -905.
    /// `0` means unbounded.
    pub max_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            admission_limit: 0,
            reschedule_tick: Duration::from_micros(50),
            max_queue_depth: 64,
            max_sessions: 64,
        }
    }
}

/// Deterministic 1-based seat number assigned in connect order. This — not
/// the process-global `Session::id` — keys every `server.*` metric and the
/// `SHOW WORKLOAD` view, so replays are byte-identical across processes.
pub type SeatId = u64;

/// Server-wide 1-based statement ticket, in submission order.
pub type StatementId = u64;

/// Outcome of one scheduled statement, in completion (= admission) order.
#[derive(Debug)]
pub struct Completion {
    /// Seat that submitted the statement.
    pub session: SeatId,
    /// Submission ticket.
    pub statement: StatementId,
    /// Statement text as submitted (canonical text for prepared handles).
    pub sql: String,
    /// What the statement produced, or the error it failed with.
    pub result: Result<ExecOutcome>,
    /// Virtual time spent queued before execution began.
    pub queued: Duration,
    /// Scheduler round (1-based) that admitted it.
    pub round: u64,
    /// Full scheduler rounds the statement sat in queue before admission.
    pub waited_rounds: u64,
}

/// One queued statement.
#[derive(Debug)]
struct QueuedStmt {
    id: StatementId,
    /// Pre-parsed for prepared handles; raw text is parsed at execution so
    /// a parse error surfaces as that statement's completion, not a
    /// submission error.
    stmt: Option<Statement>,
    sql: String,
    arrival: Duration,
    waited_rounds: u64,
}

/// A connected session and its scheduler bookkeeping.
struct Seat {
    session: Session,
    priority: Priority,
    queue: VecDeque<QueuedStmt>,
    prepared: Vec<Statement>,
}

struct SchedState {
    seats: BTreeMap<SeatId, Seat>,
    next_seat: SeatId,
    next_stmt: StatementId,
    /// Completed scheduler rounds (also the rotation source).
    rounds: u64,
}

/// A statement pulled out of a queue by the admission pass.
struct Admitted {
    seat: SeatId,
    stmt: QueuedStmt,
}

/// Multi-session front-end over one [`Idaa`] federation.
pub struct Server {
    idaa: Idaa,
    config: ServerConfig,
    state: Mutex<SchedState>,
}

impl Server {
    /// Build a fresh federation and serve it.
    pub fn new(config: IdaaConfig, server: ServerConfig) -> Server {
        Server::with_idaa(Idaa::new(config), server)
    }

    /// Serve an existing federation (tests often pre-load data through the
    /// plain facade first).
    pub fn with_idaa(idaa: Idaa, server: ServerConfig) -> Server {
        Server {
            idaa,
            config: server,
            state: Mutex::new(SchedState {
                seats: BTreeMap::new(),
                next_seat: 1,
                next_stmt: 1,
                rounds: 0,
            }),
        }
    }

    /// The underlying federation (metrics, tracer, fault surface, …).
    pub fn idaa(&self) -> &Idaa {
        &self.idaa
    }

    /// Effective per-round admission limit.
    pub fn admission_limit(&self) -> usize {
        if self.config.admission_limit > 0 {
            self.config.admission_limit
        } else {
            self.idaa.config.accel.workers().max(1)
        }
    }

    /// Connect a new seat for `user` at [`Priority::Normal`].
    pub fn connect(&self, user: &str) -> Result<SeatId> {
        self.connect_with_priority(user, Priority::Normal)
    }

    /// Connect a new seat with an explicit priority class. Refused with
    /// SQLCODE -905 once `max_sessions` seats are connected.
    pub fn connect_with_priority(&self, user: &str, priority: Priority) -> Result<SeatId> {
        let mut state = self.state.lock();
        if self.config.max_sessions > 0 && state.seats.len() >= self.config.max_sessions {
            self.idaa.metrics().inc("server.rejected.sessions", 1);
            return Err(Error::WorkloadLimit(format!(
                "session limit ({}) reached; connection for {user} refused",
                self.config.max_sessions
            )));
        }
        let seat = state.next_seat;
        state.next_seat += 1;
        let session = self.idaa.session(user);
        state.seats.insert(
            seat,
            Seat { session, priority, queue: VecDeque::new(), prepared: Vec::new() },
        );
        let m = self.idaa.metrics();
        m.inc("server.sessions.connected", 1);
        m.set_gauge(&format!("server.session.{seat}.priority"), priority.rank());
        m.set_gauge(&format!("server.session.{seat}.queued"), 0);
        m.set_gauge(&format!("server.session.{seat}.running"), 0);
        Ok(seat)
    }

    /// Queue one statement on a seat. Returns its ticket; the statement
    /// runs at the next [`Server::run_until_idle`]. Refused with -905 when
    /// the seat's queue is at `max_queue_depth`.
    pub fn submit(&self, seat: SeatId, sql: &str) -> Result<StatementId> {
        self.enqueue(seat, sql.to_string(), None)
    }

    /// Parse and register a prepared statement on a seat; the handle feeds
    /// [`Server::submit_prepared`]. The statement's canonical text is what
    /// keys the accelerator's compiled-plan cache, so repeated executions
    /// of one handle hit the same cached plan.
    pub fn prepare(&self, seat: SeatId, sql: &str) -> Result<u64> {
        let stmt = parse_statement(sql)?;
        let mut state = self.state.lock();
        let entry = seat_mut(&mut state, seat)?;
        entry.prepared.push(stmt);
        Ok(entry.prepared.len() as u64)
    }

    /// Queue an execution of a prepared handle with `?` markers bound to
    /// `params`.
    pub fn submit_prepared(
        &self,
        seat: SeatId,
        handle: u64,
        params: &[Value],
    ) -> Result<StatementId> {
        let bound = {
            let mut state = self.state.lock();
            let entry = seat_mut(&mut state, seat)?;
            let stmt = entry
                .prepared
                .get((handle as usize).wrapping_sub(1))
                .ok_or_else(|| {
                    Error::UndefinedObject(format!("prepared statement handle {handle}"))
                })?;
            idaa_sql::params::bind_statement(stmt, params)?
        };
        self.enqueue(seat, bound.to_string(), Some(bound))
    }

    fn enqueue(
        &self,
        seat: SeatId,
        sql: String,
        stmt: Option<Statement>,
    ) -> Result<StatementId> {
        let arrival = self.idaa.link().now();
        let mut state = self.state.lock();
        let max_depth = self.config.max_queue_depth;
        let id = state.next_stmt;
        let entry = seat_mut(&mut state, seat)?;
        if max_depth > 0 && entry.queue.len() >= max_depth {
            self.idaa.metrics().inc("server.rejected.statements", 1);
            return Err(Error::WorkloadLimit(format!(
                "queue depth limit ({max_depth}) reached on session {seat}"
            )));
        }
        entry.queue.push_back(QueuedStmt { id, stmt, sql, arrival, waited_rounds: 0 });
        let depth = entry.queue.len() as i64;
        state.next_stmt = id + 1;
        let m = self.idaa.metrics();
        m.inc("server.submitted", 1);
        m.set_gauge(&format!("server.session.{seat}.queued"), depth);
        Ok(id)
    }

    /// Submit one statement and drain the scheduler; returns *this*
    /// statement's outcome. With a single seat and an empty queue this is
    /// byte-identical to calling the plain facade directly — one round,
    /// no reschedule tick.
    pub fn execute(&self, seat: SeatId, sql: &str) -> Result<ExecOutcome> {
        let id = self.submit(seat, sql)?;
        let mut wanted = None;
        for c in self.run_until_idle() {
            if c.statement == id {
                wanted = Some(c.result);
            }
        }
        wanted.unwrap_or_else(|| {
            Err(Error::internal("scheduler drained without completing the statement"))
        })
    }

    /// [`Server::execute`] returning rows (errors unless a result set).
    pub fn query(&self, seat: SeatId, sql: &str) -> Result<Rows> {
        match self.execute(seat, sql)?.payload {
            Payload::Rows(r) => Ok(r),
            other => Err(Error::TypeMismatch(format!(
                "statement did not produce a result set ({other:?})"
            ))),
        }
    }

    /// Run scheduler rounds until every queue is empty, returning the
    /// completions in execution order. Each round admits up to
    /// [`Server::admission_limit`] statements (priority classes high to
    /// low, round-robin across a class's ready seats, FIFO within a
    /// seat), executes them serially in admission order, then — only if
    /// ready work remains — charges one reschedule tick of virtual time.
    pub fn run_until_idle(&self) -> Vec<Completion> {
        let mut state = self.state.lock();
        let mut completions = Vec::new();
        loop {
            let batch = self.admit_round(&mut state);
            if batch.is_empty() {
                break;
            }
            let round = state.rounds;
            for admitted in batch {
                completions.push(self.run_one(&mut state, admitted, round));
            }
            if state.seats.values().any(|s| !s.queue.is_empty()) {
                // Ready work survives the round: the scheduler "sleeps"
                // one tick on the virtual clock before re-admitting.
                self.idaa.link().advance(self.config.reschedule_tick);
            }
        }
        completions
    }

    /// One admission pass. Pops up to the admission limit across priority
    /// classes; bumps `waited_rounds` on everything left queued.
    fn admit_round(&self, state: &mut SchedState) -> Vec<Admitted> {
        let limit = self.admission_limit();
        if !state.seats.values().any(|s| !s.queue.is_empty()) {
            return Vec::new();
        }
        state.rounds += 1;
        self.idaa.metrics().inc("server.rounds", 1);
        let rotation = (state.rounds - 1) as usize;
        let mut admitted = Vec::new();
        for class in Priority::CLASSES {
            if admitted.len() >= limit {
                break;
            }
            // Ready seats of this class, ascending seat order.
            let members: Vec<SeatId> = state
                .seats
                .iter()
                .filter(|(_, s)| s.priority == class && !s.queue.is_empty())
                .map(|(id, _)| *id)
                .collect();
            if members.is_empty() {
                continue;
            }
            // Round-robin: rotate the starting seat by the round number,
            // one statement per visit, multiple passes until the class is
            // drained or the limit is hit.
            let start = rotation % members.len();
            'class: loop {
                let mut took = false;
                for i in 0..members.len() {
                    let seat = members[(start + i) % members.len()];
                    let entry = state.seats.get_mut(&seat).expect("seat exists");
                    if let Some(stmt) = entry.queue.pop_front() {
                        admitted.push(Admitted { seat, stmt });
                        took = true;
                        if admitted.len() >= limit {
                            break 'class;
                        }
                    }
                }
                if !took {
                    break;
                }
            }
        }
        for (seat, entry) in state.seats.iter_mut() {
            for q in entry.queue.iter_mut() {
                q.waited_rounds += 1;
            }
            self.idaa
                .metrics()
                .set_gauge(&format!("server.session.{seat}.queued"), entry.queue.len() as i64);
        }
        admitted
    }

    /// Execute one admitted statement on its seat's session, mirroring the
    /// outcome into the `server.*` metrics.
    fn run_one(&self, state: &mut SchedState, admitted: Admitted, round: u64) -> Completion {
        let Admitted { seat, stmt: queued } = admitted;
        let m = self.idaa.metrics();
        let exec_start = self.idaa.link().now();
        let queued_for = exec_start.saturating_sub(queued.arrival);
        let before = self.idaa.fleet_link_metrics();
        m.set_gauge(&format!("server.session.{seat}.running"), 1);
        let info = QueueInfo {
            seat,
            priority: state.seats[&seat].priority.name(),
            queued: queued_for,
            round,
        };
        let entry = state.seats.get_mut(&seat).expect("seat exists");
        let result = match &queued.stmt {
            Some(stmt) => self.idaa.execute_stmt_queued(&mut entry.session, stmt, Some(&info)),
            None => match parse_statement(&queued.sql) {
                Ok(stmt) => {
                    self.idaa.execute_stmt_queued(&mut entry.session, &stmt, Some(&info))
                }
                Err(e) => Err(e),
            },
        };
        let after = self.idaa.fleet_link_metrics();
        m.set_gauge(&format!("server.session.{seat}.running"), 0);
        m.inc("server.statements", 1);
        m.inc(
            &format!("server.session.{seat}.queue_time_us"),
            queued_for.as_micros() as u64,
        );
        m.inc(
            &format!("server.session.{seat}.bytes"),
            after.total_bytes() - before.total_bytes(),
        );
        match &result {
            Ok(_) => m.inc(&format!("server.session.{seat}.done"), 1),
            Err(_) => m.inc(&format!("server.session.{seat}.failed"), 1),
        }
        Completion {
            session: seat,
            statement: queued.id,
            sql: queued.sql,
            result,
            queued: queued_for,
            round,
            waited_rounds: queued.waited_rounds,
        }
    }

    /// Current queue depth of a seat (diagnostics).
    pub fn queue_depth(&self, seat: SeatId) -> usize {
        self.state.lock().seats.get(&seat).map(|s| s.queue.len()).unwrap_or(0)
    }

    /// Completed scheduler rounds so far.
    pub fn rounds(&self) -> u64 {
        self.state.lock().rounds
    }
}

fn seat_mut(state: &mut SchedState, seat: SeatId) -> Result<&mut Seat> {
    state
        .seats
        .get_mut(&seat)
        .ok_or_else(|| Error::UndefinedObject(format!("server session {seat}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use idaa_host::SYSADM;

    fn server() -> Server {
        Server::new(IdaaConfig::default(), ServerConfig::default())
    }

    #[test]
    fn connect_submit_drain_roundtrip() {
        let srv = server();
        let seat = srv.connect(SYSADM).unwrap();
        assert_eq!(seat, 1);
        srv.execute(seat, "CREATE TABLE T (A INT NOT NULL)").unwrap();
        srv.execute(seat, "INSERT INTO T VALUES (1), (2), (3)").unwrap();
        let rows = srv.query(seat, "SELECT COUNT(*) FROM T").unwrap();
        assert_eq!(rows.scalar().unwrap().render(), "3");
        let m = srv.idaa().metrics();
        assert_eq!(m.counter("server.statements"), 3);
        assert_eq!(m.counter("server.session.1.done"), 3);
        assert_eq!(m.counter("server.session.1.failed"), 0);
    }

    #[test]
    fn session_and_queue_limits_are_905() {
        let srv = Server::new(
            IdaaConfig::default(),
            ServerConfig { max_sessions: 1, max_queue_depth: 2, ..ServerConfig::default() },
        );
        let seat = srv.connect("ALICE").unwrap();
        let too_many = srv.connect("BOB").unwrap_err();
        assert_eq!(too_many.sqlcode(), -905);
        srv.submit(seat, "SET CURRENT QUERY ACCELERATION = NONE").unwrap();
        srv.submit(seat, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        let overflow = srv.submit(seat, "SET CURRENT QUERY ACCELERATION = ALL").unwrap_err();
        assert_eq!(overflow.sqlcode(), -905);
        assert_eq!(srv.idaa().metrics().counter("server.rejected.sessions"), 1);
        assert_eq!(srv.idaa().metrics().counter("server.rejected.statements"), 1);
        // Refusals govern, they don't poison: the queue still drains.
        assert_eq!(srv.run_until_idle().len(), 2);
    }

    #[test]
    fn priority_classes_admit_high_before_low() {
        let srv = Server::new(
            IdaaConfig::default(),
            ServerConfig { admission_limit: 1, ..ServerConfig::default() },
        );
        let low = srv.connect_with_priority("LOWUSER", Priority::Low).unwrap();
        let high = srv.connect_with_priority("HIGHUSER", Priority::High).unwrap();
        srv.submit(low, "SET CURRENT QUERY ACCELERATION = NONE").unwrap();
        srv.submit(high, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        let done = srv.run_until_idle();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].session, high);
        assert_eq!(done[1].session, low);
        assert!(done[1].waited_rounds >= 1);
    }

    #[test]
    fn round_robin_rotates_within_a_class() {
        let srv = Server::new(
            IdaaConfig::default(),
            ServerConfig { admission_limit: 1, ..ServerConfig::default() },
        );
        let a = srv.connect("A").unwrap();
        let b = srv.connect("B").unwrap();
        for _ in 0..2 {
            srv.submit(a, "SET CURRENT QUERY ACCELERATION = NONE").unwrap();
            srv.submit(b, "SET CURRENT QUERY ACCELERATION = NONE").unwrap();
        }
        let order: Vec<SeatId> = srv.run_until_idle().iter().map(|c| c.session).collect();
        // One admission per round, alternating seats: nobody runs twice
        // before the other ready seat ran once.
        assert_eq!(order, vec![a, b, a, b]);
    }

    #[test]
    fn parse_errors_complete_instead_of_wedging_the_queue() {
        let srv = server();
        let seat = srv.connect(SYSADM).unwrap();
        srv.submit(seat, "NOT EVEN SQL").unwrap();
        srv.submit(seat, "SET CURRENT QUERY ACCELERATION = NONE").unwrap();
        let done = srv.run_until_idle();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].result.as_ref().unwrap_err().sqlcode(), -104);
        assert!(done[1].result.is_ok());
        assert_eq!(srv.idaa().metrics().counter("server.session.1.failed"), 1);
    }

    #[test]
    fn prepared_handles_bind_and_rerun() {
        let srv = server();
        let seat = srv.connect(SYSADM).unwrap();
        srv.execute(seat, "CREATE TABLE P (A INT NOT NULL)").unwrap();
        srv.execute(seat, "INSERT INTO P VALUES (1), (2), (3)").unwrap();
        let h = srv.prepare(seat, "SELECT COUNT(*) FROM P WHERE A > ?").unwrap();
        let id = srv.submit_prepared(seat, h, &[Value::Int(1)]).unwrap();
        let done = srv.run_until_idle();
        let c = done.iter().find(|c| c.statement == id).unwrap();
        let rows = c.result.as_ref().unwrap().rows().unwrap();
        assert_eq!(rows.scalar().unwrap().render(), "2");
        let bad = srv.submit_prepared(seat, 99, &[]).unwrap_err();
        assert_eq!(bad.sqlcode(), -204);
    }
}
