//! Query routing: decide *where* a statement runs.
//!
//! Mirrors the DB2/IDAA rules:
//!
//! * Statements touching only accelerator-only tables always run on the
//!   accelerator, regardless of the acceleration register — AOT data exists
//!   nowhere else.
//! * Read-only queries over *accelerated* regular tables are offloaded
//!   according to `CURRENT QUERY ACCELERATION`:
//!   `NONE` never offloads; `ENABLE` offloads when the (cost-heuristic)
//!   optimizer expects a benefit; `ELIGIBLE` offloads whenever possible;
//!   `ALL` offloads or fails (SQLCODE -4742 analogue).
//! * Queries mixing AOTs with tables *not present* on the accelerator fail
//!   with -4742 — there is no single place that can answer them.
//! * DML on regular tables always runs in DB2; DML on AOTs always runs on
//!   the accelerator.

use idaa_common::{Error, ObjectName, Result};
use idaa_host::{AccelStatus, HostEngine, TableKind};
use idaa_sql::ast::{BinaryOp, Expr};
use idaa_sql::plan::Plan;
use idaa_sql::AccelerationMode;

/// Where a statement executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    Host,
    Accelerator,
}

/// Classification of the tables a statement references.
#[derive(Debug, Default, Clone, Copy)]
pub struct TableMix {
    pub aot: usize,
    pub accelerated: usize,
    pub host_only: usize,
    /// Total rows across referenced host tables (cost heuristic input).
    pub host_rows: usize,
    /// The query is an indexed point access on the host — `ENABLE` keeps
    /// those local no matter the table size (DB2's optimizer would, too).
    pub indexed_point: bool,
}

/// Does the plan look like an indexed point access? True when every base
/// scan is filtered by an equality on the leading column of one of its
/// host indexes.
pub fn is_indexed_point(host: &HostEngine, plan: &Plan) -> bool {
    fn walk(host: &HostEngine, plan: &Plan, all_indexed: &mut bool, scans: &mut usize) {
        match plan {
            Plan::Filter { input, predicate } => {
                if let Plan::Scan { table, .. } = input.as_ref() {
                    *scans += 1;
                    if !filter_hits_index(host, table, predicate) {
                        *all_indexed = false;
                    }
                } else {
                    walk(host, input, all_indexed, scans);
                }
            }
            Plan::Scan { cols, .. } => {
                if !cols.is_empty() {
                    *scans += 1;
                    *all_indexed = false; // unfiltered scan
                }
            }
            Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Distinct { input }
            | Plan::Limit { input, .. }
            | Plan::KeepCols { input, .. } => walk(host, input, all_indexed, scans),
            Plan::Join { left, right, .. } | Plan::Union { left, right, .. } => {
                walk(host, left, all_indexed, scans);
                walk(host, right, all_indexed, scans);
            }
        }
    }
    let mut all_indexed = true;
    let mut scans = 0;
    walk(host, plan, &mut all_indexed, &mut scans);
    scans > 0 && all_indexed
}

fn filter_hits_index(host: &HostEngine, table: &ObjectName, predicate: &Expr) -> bool {
    let Ok(meta) = host.table_meta(table) else { return false };
    let mut conjs = vec![predicate];
    let mut eq_cols: Vec<&str> = Vec::new();
    while let Some(e) = conjs.pop() {
        match e {
            Expr::Binary { left, op: BinaryOp::And, right } => {
                conjs.push(left);
                conjs.push(right);
            }
            Expr::Binary { left, op: BinaryOp::Eq, right } => {
                match (left.as_ref(), right.as_ref()) {
                    (Expr::Column { name, .. }, Expr::Literal(_))
                    | (Expr::Literal(_), Expr::Column { name, .. }) => eq_cols.push(name),
                    _ => {}
                }
            }
            _ => {}
        }
    }
    meta.indexes
        .iter()
        .any(|idx| idx.key_columns.first().map(|c| eq_cols.contains(&c.as_str())).unwrap_or(false))
}

/// Classify the referenced tables (resolved against the host catalog —
/// the system of record for all metadata, per the paper's design).
pub fn classify(host: &HostEngine, tables: &[ObjectName]) -> Result<TableMix> {
    let mut mix = TableMix::default();
    for t in tables {
        if t.schema.is_none() && t.name == "SYSDUMMY1" {
            continue;
        }
        let meta = host.table_meta(t)?;
        match meta.kind {
            TableKind::AcceleratorOnly => mix.aot += 1,
            TableKind::Regular => match meta.accel_status {
                AccelStatus::Loaded => {
                    mix.accelerated += 1;
                    mix.host_rows += host.scan_count(&meta.name);
                }
                _ => {
                    mix.host_only += 1;
                    mix.host_rows += host.scan_count(&meta.name);
                }
            },
        }
    }
    Ok(mix)
}

/// Row-count threshold above which `ENABLE` considers offload worthwhile.
/// DB2's real optimizer uses a cost model; a table-size threshold captures
/// the shape that matters for the experiments (small lookups stay, big
/// scans go).
pub const ENABLE_OFFLOAD_ROW_THRESHOLD: usize = 10_000;

/// Route a read-only query given the table mix and the session register.
pub fn route_query(mix: &TableMix, mode: AccelerationMode) -> Result<Route> {
    Ok(route_query_with_reason(mix, mode)?.0)
}

/// [`route_query`] plus a static, deterministic *reason* string — recorded
/// on the statement's `route` trace span and shown by `EXPLAIN`.
pub fn route_query_with_reason(
    mix: &TableMix,
    mode: AccelerationMode,
) -> Result<(Route, &'static str)> {
    if mix.aot > 0 {
        if mix.host_only > 0 {
            return Err(Error::InvalidAcceleratorUse(
                "statement references accelerator-only tables together with tables \
                 that are not available on the accelerator"
                    .into(),
            ));
        }
        return Ok((Route::Accelerator, "accelerator-only tables referenced"));
    }
    let all_offloadable = mix.host_only == 0 && mix.accelerated > 0;
    match mode {
        AccelerationMode::None => Ok((Route::Host, "acceleration register is NONE")),
        AccelerationMode::Enable => {
            if all_offloadable && mix.host_rows >= ENABLE_OFFLOAD_ROW_THRESHOLD {
                if mix.indexed_point {
                    Ok((Route::Host, "indexed point access stays local"))
                } else {
                    Ok((Route::Accelerator, "cost heuristic favors offload"))
                }
            } else if all_offloadable {
                Ok((Route::Host, "referenced tables below offload threshold"))
            } else {
                Ok((Route::Host, "not all tables available on the accelerator"))
            }
        }
        AccelerationMode::Eligible => {
            if all_offloadable {
                Ok((Route::Accelerator, "all tables accelerated"))
            } else {
                Ok((Route::Host, "not all tables available on the accelerator"))
            }
        }
        AccelerationMode::All => {
            if all_offloadable {
                Ok((Route::Accelerator, "ALL forces offload"))
            } else if mix.accelerated == 0 && mix.host_only == 0 {
                // FROM-less / catalog-only statements run locally.
                Ok((Route::Host, "no base tables referenced"))
            } else {
                Err(Error::NotOffloadable(
                    "CURRENT QUERY ACCELERATION = ALL but the statement references \
                     tables that are not accelerated"
                        .into(),
                ))
            }
        }
    }
}

/// True when a query routed to the accelerator has no host fallback: it
/// touches accelerator-only tables (the data exists nowhere else) or the
/// session demands `ALL`. Availability handling consults this — anything
/// else can re-run on the host when the accelerator is unreachable.
pub fn must_accelerate(mix: &TableMix, mode: AccelerationMode) -> bool {
    mix.aot > 0 || mode == AccelerationMode::All
}

/// Route DML by its *target* table.
pub fn route_dml(host: &HostEngine, target: &ObjectName) -> Result<Route> {
    let meta = host.table_meta(target)?;
    Ok(match meta.kind {
        TableKind::AcceleratorOnly => Route::Accelerator,
        TableKind::Regular => Route::Host,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(aot: usize, accelerated: usize, host_only: usize, host_rows: usize) -> TableMix {
        TableMix { aot, accelerated, host_only, host_rows, indexed_point: false }
    }

    #[test]
    fn enable_keeps_indexed_point_lookups_local() {
        let m = TableMix { indexed_point: true, ..mix(0, 1, 0, 1_000_000) };
        assert_eq!(route_query(&m, AccelerationMode::Enable).unwrap(), Route::Host);
        // ELIGIBLE still offloads (the register demands it when possible).
        assert_eq!(route_query(&m, AccelerationMode::Eligible).unwrap(), Route::Accelerator);
    }

    #[test]
    fn indexed_point_detection() {
        use idaa_host::{HostEngine, TableKind, SYSADM};
        use idaa_sql::plan::plan_query;
        use idaa_sql::{parse_statement, Statement};
        let host = HostEngine::default();
        host.create_table(
            SYSADM,
            &ObjectName::bare("T"),
            idaa_common::Schema::new(vec![
                idaa_common::ColumnDef::new("ID", idaa_common::DataType::Integer),
                idaa_common::ColumnDef::new("V", idaa_common::DataType::Integer),
            ])
            .unwrap(),
            TableKind::Regular,
            vec![],
        )
        .unwrap();
        host.create_index(SYSADM, &ObjectName::bare("I1"), &ObjectName::bare("T"), vec!["ID".into()])
            .unwrap();
        let plan_of = |sql: &str| {
            let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
            plan_query(&q, &host).unwrap()
        };
        assert!(is_indexed_point(&host, &plan_of("SELECT v FROM t WHERE id = 5")));
        assert!(is_indexed_point(&host, &plan_of("SELECT v FROM t WHERE id = 5 AND v > 2")));
        assert!(!is_indexed_point(&host, &plan_of("SELECT v FROM t WHERE v = 5")), "no index on V");
        assert!(!is_indexed_point(&host, &plan_of("SELECT v FROM t WHERE id > 5")), "range, not point");
        assert!(!is_indexed_point(&host, &plan_of("SELECT SUM(v) FROM t")), "full scan");
        assert!(!is_indexed_point(&host, &plan_of("SELECT 1")), "no scan at all");
    }

    #[test]
    fn aot_always_offloads() {
        for mode in [
            AccelerationMode::None,
            AccelerationMode::Enable,
            AccelerationMode::Eligible,
            AccelerationMode::All,
        ] {
            assert_eq!(route_query(&mix(1, 0, 0, 0), mode).unwrap(), Route::Accelerator);
            assert_eq!(route_query(&mix(1, 2, 0, 0), mode).unwrap(), Route::Accelerator);
        }
    }

    #[test]
    fn aot_mixed_with_host_only_fails() {
        let err = route_query(&mix(1, 0, 1, 0), AccelerationMode::Eligible).unwrap_err();
        assert_eq!(err.sqlcode(), -4742);
    }

    #[test]
    fn none_never_offloads() {
        assert_eq!(
            route_query(&mix(0, 3, 0, 1_000_000), AccelerationMode::None).unwrap(),
            Route::Host
        );
    }

    #[test]
    fn enable_uses_cost_heuristic() {
        assert_eq!(
            route_query(&mix(0, 1, 0, 100), AccelerationMode::Enable).unwrap(),
            Route::Host,
            "small tables stay on the host"
        );
        assert_eq!(
            route_query(&mix(0, 1, 0, 1_000_000), AccelerationMode::Enable).unwrap(),
            Route::Accelerator
        );
    }

    #[test]
    fn eligible_offloads_when_possible() {
        assert_eq!(
            route_query(&mix(0, 1, 0, 10), AccelerationMode::Eligible).unwrap(),
            Route::Accelerator
        );
        assert_eq!(
            route_query(&mix(0, 1, 1, 10), AccelerationMode::Eligible).unwrap(),
            Route::Host,
            "non-accelerated reference forces host execution"
        );
    }

    #[test]
    fn must_accelerate_identifies_no_fallback_cases() {
        assert!(must_accelerate(&mix(1, 0, 0, 0), AccelerationMode::None));
        assert!(must_accelerate(&mix(0, 1, 0, 0), AccelerationMode::All));
        assert!(!must_accelerate(&mix(0, 2, 0, 1_000_000), AccelerationMode::Eligible));
        assert!(!must_accelerate(&mix(0, 1, 0, 50), AccelerationMode::Enable));
    }

    #[test]
    fn all_fails_when_not_offloadable() {
        assert_eq!(
            route_query(&mix(0, 2, 0, 10), AccelerationMode::All).unwrap(),
            Route::Accelerator
        );
        let err = route_query(&mix(0, 1, 1, 10), AccelerationMode::All).unwrap_err();
        assert_eq!(err.sqlcode(), -4742);
        // FROM-less is fine.
        assert_eq!(route_query(&mix(0, 0, 0, 0), AccelerationMode::All).unwrap(), Route::Host);
    }
}
