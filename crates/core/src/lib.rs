//! # idaa-core
//!
//! The paper's contribution: the federation layer that turns a DB2-style
//! host (`idaa-host`) and a Netezza-style accelerator (`idaa-accel`) into
//! one transparent system —
//!
//! * **query routing** honoring `CURRENT QUERY ACCELERATION` and the
//!   accelerator-only-table rules ([`router`]),
//! * **accelerator-only tables** created with `CREATE TABLE … IN
//!   ACCELERATOR`, populated and transformed entirely on the accelerator,
//! * **transaction awareness**: the accelerator enrolls in DB2 transactions
//!   and a two-phase commit keeps both sides atomic ([`Idaa::execute`]),
//! * **incremental replication** for regular accelerated tables
//!   ([`replication`]),
//! * **governed stored procedures** for system management and in-database
//!   analytics deployment ([`procedures`]).

pub mod fleet;
pub mod health;
pub mod idaa;
pub mod procedures;
pub mod replication;
pub mod router;
pub mod server;
pub mod session;

pub use fleet::{shard_of, shard_table, AccelNode, FleetConfig};
pub use health::{Delivery, HealthConfig, HealthMonitor, HealthState, SeqTracker};
pub use idaa::{ExecOutcome, Faults, Idaa, IdaaConfig, Payload, QueueInfo};
pub use procedures::{message_result, Procedure};
pub use replication::Replicator;
pub use router::{Route, TableMix};
pub use server::{Completion, Priority, SeatId, Server, ServerConfig, StatementId};
pub use session::Session;
