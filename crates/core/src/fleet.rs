//! Multi-accelerator fleet: deterministic shard placement, scatter/gather
//! execution, and epoch-fenced replica failover.
//!
//! The fleet generalizes the single `Idaa { accel }` pairing to K accelerator
//! nodes, each behind its own metered [`NetLink`] and seeded
//! [`FaultRegistry`]. Accelerator-only tables created `IN ACCELERATOR` are
//! hash-sharded across the fleet (physical tables `T__S0 .. T__S{N-1}`), with
//! every shard placed on `replication_factor` consecutive nodes. Queries
//! scatter to the owning shards in ascending shard order and merge at the
//! coordinator, so any fleet size reproduces the single-accelerator answer
//! modulo float summation order. When a shard's primary is crashed or
//! Offline, the gather fails over to the next replica (protected by the same
//! epoch-fenced [`SeqTracker`] exactly-once exchange as the single-node
//! path), the lagging node re-joins via a metered catch-up copy, and a
//! rebalance check on the virtual clock migrates shards back to their
//! preferred owners. Shard placement, gather order, and failover order are
//! all deterministic, so a given seed replays byte-identical `LinkMetrics`
//! and traces.

use crate::health::{HealthMonitor, HealthState, SeqTracker};
use crate::idaa::{Idaa, IdaaConfig, ReplyPayload};
use crate::replication::Replicator;
use crate::session::Session;
use idaa_accel::{AccelEngine, RestartStats};
use idaa_common::trace::Trace;
use idaa_common::{wire, Error, ObjectName, Result, Row, Rows, Schema, Value};
use idaa_host::TxnId;
use idaa_netsim::{sites, Direction, FaultRegistry, LinkMetrics, NetLink};
use idaa_sql::ast::{BinaryOp, Expr, JoinKind, OrderByItem, Query, SelectItem, TableRef};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Fleet topology: how many accelerators, how AOTs shard across them, and
/// when a failed-over shard migrates back to its preferred owner.
///
/// The default (one accelerator, one shard, replication factor one) is the
/// paper's single-accelerator pairing; every legacy code path is byte-for-byte
/// unchanged under it.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of accelerator nodes (K). Each gets its own metered link,
    /// fault registry, health monitor, and replication stream.
    pub accelerators: usize,
    /// Number of hash shards (N) for accelerator-only tables.
    pub shards: usize,
    /// Copies of every shard (clamped to `1..=accelerators`). Shard `s`
    /// lives on nodes `(s + r) % K` for `r in 0..replication_factor`.
    pub replication_factor: usize,
    /// Virtual-clock delay after a failover before the shard migrates back
    /// to its preferred (recovered) owner.
    pub rebalance_after: Duration,
    /// Ship a build-side key summary (Bloom filter + min/max) with the
    /// scatter request of an inner equi-join against a sharded probe table,
    /// so each shard pre-filters its reply before encoding. The summary is
    /// false-positive-only, so the merged answer is byte-identical with the
    /// knob off — only gather traffic changes.
    pub join_pushdown: bool,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            accelerators: 1,
            shards: 1,
            replication_factor: 1,
            rebalance_after: Duration::from_millis(20),
            join_pushdown: true,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-node state
// ---------------------------------------------------------------------------

/// One accelerator node: the engine plus everything the coordinator tracks
/// per peer — its metered link, seeded fault registry, health machine,
/// epoch-fenced delivery tracker, replication stream, and queued phase-2
/// commit decisions.
pub struct AccelNode {
    /// Position in the fleet (0-based; node 0 is the legacy single node).
    pub(crate) id: usize,
    /// The accelerator engine itself.
    pub(crate) engine: Arc<AccelEngine>,
    /// This node's host↔accelerator link. Every byte to or from the node is
    /// metered here.
    pub(crate) link: Arc<NetLink>,
    /// This node's seeded fault/crash registry.
    pub(crate) registry: Arc<FaultRegistry>,
    /// Circuit breaker for this node's link.
    pub(crate) health: HealthMonitor,
    /// Exactly-once statement delivery, fenced by this node's recovery epoch.
    pub(crate) delivered: SeqTracker,
    /// Replication stream shipping committed host changes to this node.
    pub(crate) replicator: Mutex<Replicator>,
    /// Phase-2 COMMIT decisions that could not be delivered; flushed on
    /// reconnect.
    pub(crate) pending_commits: Mutex<Vec<TxnId>>,
    /// Stats from this node's most recent crash restart.
    pub(crate) last_restart: Mutex<Option<RestartStats>>,
    /// Set when the node's durable state failed validation beyond local
    /// repair and a full rebuild (fresh media + re-ship from the host /
    /// replicas) is in progress. A rebuild that fails part-way leaves the
    /// flag set, so the next recovery probe resumes it instead of booting
    /// an empty engine.
    pub(crate) needs_rebuild: std::sync::atomic::AtomicBool,
    /// Completed storage rebuilds of this node (diagnostics + traces).
    pub(crate) rebuilds: AtomicU64,
}

impl AccelNode {
    pub(crate) fn new(id: usize, config: &IdaaConfig, registry: Arc<FaultRegistry>) -> Arc<AccelNode> {
        let engine = Arc::new(AccelEngine::new(&config.default_schema, config.accel.clone()));
        engine.set_identity(&format!("ACCEL{}", id + 1));
        engine.set_fault_registry(registry.clone());
        let node = AccelNode {
            id,
            engine,
            link: Arc::new(NetLink::new(config.link.clone())),
            registry,
            health: HealthMonitor::new(config.health.clone()),
            delivered: SeqTracker::default(),
            replicator: Mutex::new(Replicator::new(config.replication_batch, config.retry)),
            pending_commits: Mutex::new(Vec::new()),
            last_restart: Mutex::new(None),
            needs_rebuild: std::sync::atomic::AtomicBool::new(false),
            rebuilds: AtomicU64::new(0),
        };
        node.delivered.reset(node.engine.epoch());
        Arc::new(node)
    }
}

// ---------------------------------------------------------------------------
// Placement
// ---------------------------------------------------------------------------

/// FNV-1a over the value's canonical debug rendering. Stable across runs and
/// platforms, so shard placement is deterministic per value.
pub fn shard_of(value: &Value, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{value:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Physical per-shard table name: `SCHEMA.NAME__S{shard}`.
pub fn shard_table(table: &ObjectName, shard: usize) -> ObjectName {
    ObjectName { schema: table.schema.clone(), name: format!("{}__S{shard}", table.name) }
}

/// Coordinator-side fleet bookkeeping: current primaries, failover history,
/// nodes awaiting catch-up, per-transaction enlistment, and which logical
/// tables are sharded.
pub(crate) struct FleetState {
    accelerators: usize,
    pub(crate) shards: usize,
    replicas: usize,
    rebalance_after: Duration,
    current_primary: Mutex<Vec<usize>>,
    failed_over_at: Mutex<Vec<Option<Duration>>>,
    catch_up: Mutex<BTreeSet<usize>>,
    enlisted: Mutex<HashMap<TxnId, BTreeSet<usize>>>,
    sharded: Mutex<BTreeSet<ObjectName>>,
    failovers: AtomicU64,
    rebalances: AtomicU64,
    catch_up_bytes: AtomicU64,
}

impl FleetState {
    pub(crate) fn new(config: &FleetConfig) -> FleetState {
        let accelerators = config.accelerators.max(1);
        let shards = config.shards.max(1);
        let replicas = config.replication_factor.clamp(1, accelerators);
        FleetState {
            accelerators,
            shards,
            replicas,
            rebalance_after: config.rebalance_after,
            current_primary: Mutex::new((0..shards).map(|s| s % accelerators).collect()),
            failed_over_at: Mutex::new(vec![None; shards]),
            catch_up: Mutex::new(BTreeSet::new()),
            enlisted: Mutex::new(HashMap::new()),
            sharded: Mutex::new(BTreeSet::new()),
            failovers: AtomicU64::new(0),
            rebalances: AtomicU64::new(0),
            catch_up_bytes: AtomicU64::new(0),
        }
    }

    /// Nodes owning `shard`, preferred owner first.
    pub(crate) fn owners(&self, shard: usize) -> Vec<usize> {
        (0..self.replicas).map(|r| (shard + r) % self.accelerators).collect()
    }

    pub(crate) fn primary_of(&self, shard: usize) -> usize {
        self.current_primary.lock()[shard]
    }

    pub(crate) fn record_failover(&self, shard: usize, to: usize, now: Duration) {
        let mut primaries = self.current_primary.lock();
        primaries[shard] = to;
        let preferred = self.owners(shard)[0];
        self.failed_over_at.lock()[shard] = if to == preferred { None } else { Some(now) };
        self.failovers.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn failed_over_time(&self, shard: usize) -> Option<Duration> {
        self.failed_over_at.lock()[shard]
    }

    pub(crate) fn set_primary(&self, shard: usize, node: usize) {
        self.current_primary.lock()[shard] = node;
        self.failed_over_at.lock()[shard] = None;
    }

    pub(crate) fn mark_catch_up(&self, node: usize) {
        self.catch_up.lock().insert(node);
    }

    pub(crate) fn needs_catch_up(&self, node: usize) -> bool {
        self.catch_up.lock().contains(&node)
    }

    pub(crate) fn clear_catch_up(&self, node: usize) {
        self.catch_up.lock().remove(&node);
    }

    pub(crate) fn enlist(&self, txn: TxnId, node: usize) {
        self.enlisted.lock().entry(txn).or_default().insert(node);
    }

    pub(crate) fn is_enlisted(&self, txn: TxnId, node: usize) -> bool {
        self.enlisted.lock().get(&txn).is_some_and(|s| s.contains(&node))
    }

    /// Remove and return the nodes enlisted in `txn`, in ascending id order.
    pub(crate) fn take_enlisted(&self, txn: TxnId) -> Vec<usize> {
        self.enlisted.lock().remove(&txn).map(|s| s.into_iter().collect()).unwrap_or_default()
    }

    pub(crate) fn add_sharded(&self, table: ObjectName) {
        self.sharded.lock().insert(table);
    }

    /// Remove `table` from the sharded set; true if it was sharded.
    pub(crate) fn remove_sharded(&self, table: &ObjectName) -> bool {
        self.sharded.lock().remove(table)
    }

    pub(crate) fn is_sharded(&self, table: &ObjectName) -> bool {
        self.sharded.lock().contains(table)
    }

    pub(crate) fn sharded_tables(&self) -> Vec<ObjectName> {
        self.sharded.lock().iter().cloned().collect()
    }

    pub(crate) fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    pub(crate) fn rebalances(&self) -> u64 {
        self.rebalances.load(Ordering::Relaxed)
    }

    pub(crate) fn note_rebalance(&self) {
        self.rebalances.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_catch_up_bytes(&self, bytes: u64) {
        self.catch_up_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn catch_up_bytes(&self) -> u64 {
        self.catch_up_bytes.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Scatter planning
// ---------------------------------------------------------------------------

/// Name of the coordinator-local staging table gathered partials land in.
const GATHER: &str = "__GATHER";

/// How a query over one sharded table executes across the fleet.
pub(crate) enum ScatterPlan {
    /// Run `partial` on every shard, gather the partial rows into a staging
    /// table, and run `merge` over it at the coordinator. Covers mergeable
    /// aggregation (COUNT/SUM/MIN/MAX re-aggregate) and top-K (per-shard
    /// ORDER BY + LIMIT, re-sorted and re-limited at the coordinator).
    TwoPhase { partial: Box<Query>, merge: Box<Query> },
    /// Gather raw shard rows and run the original query at the coordinator.
    Raw,
}

fn col(name: impl Into<String>) -> Expr {
    Expr::Column { qualifier: None, name: name.into() }
}

fn item(expr: Expr, alias: String) -> SelectItem {
    SelectItem::Expr { expr, alias: Some(alias) }
}

/// The output column name `plan_query` would derive for projection item `i`:
/// the alias if present, a bare column's own name, else `C{i+1}`.
fn output_name(expr: &Expr, alias: &Option<String>, i: usize) -> String {
    if let Some(a) = alias {
        return a.clone();
    }
    if let Expr::Column { name, .. } = expr {
        return name.clone();
    }
    format!("C{}", i + 1)
}

/// True for `ORDER BY <integer literal>` positional references.
fn is_ordinal(expr: &Expr) -> bool {
    matches!(expr, Expr::Literal(Value::SmallInt(_) | Value::Int(_) | Value::BigInt(_)))
}

/// The merge-side aggregate that re-aggregates partials of `expr`, if the
/// aggregate is mergeable (partial COUNTs re-aggregate by summation; AVG,
/// STDDEV, VARIANCE, and DISTINCT aggregates are not decomposable without
/// changing float summation order, so they gather raw rows instead).
fn merge_fn_of(expr: &Expr) -> Option<&'static str> {
    let Expr::Function { name, args, distinct } = expr else { return None };
    if *distinct || args.iter().any(Expr::contains_aggregate) {
        return None;
    }
    match name.as_str() {
        "COUNT" | "SUM" => Some("SUM"),
        "MIN" => Some("MIN"),
        "MAX" => Some("MAX"),
        _ => None,
    }
}

/// Collect every aggregate call in `expr` into `out` (structurally deduped).
/// Returns false if a non-mergeable aggregate is found.
fn collect_aggregates(expr: &Expr, out: &mut Vec<Expr>) -> bool {
    if let Expr::Function { name, .. } = expr {
        if idaa_sql::ast::is_aggregate_name(name) {
            if merge_fn_of(expr).is_none() {
                return false;
            }
            if !out.contains(expr) {
                out.push(expr.clone());
            }
            return true;
        }
    }
    match expr {
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out) && collect_aggregates(right, out)
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            collect_aggregates(expr, out)
        }
        Expr::Function { args, .. } => args.iter().all(|a| collect_aggregates(a, out)),
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out) && list.iter().all(|e| collect_aggregates(e, out))
        }
        Expr::Between { expr, low, high, .. } => {
            collect_aggregates(expr, out)
                && collect_aggregates(low, out)
                && collect_aggregates(high, out)
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, out) && collect_aggregates(pattern, out)
        }
        Expr::Case { operand, branches, else_result } => {
            operand.as_deref().map(|e| collect_aggregates(e, out)).unwrap_or(true)
                && branches
                    .iter()
                    .all(|(w, t)| collect_aggregates(w, out) && collect_aggregates(t, out))
                && else_result.as_deref().map(|e| collect_aggregates(e, out)).unwrap_or(true)
        }
        _ => true,
    }
}

/// The partial-result components a two-phase aggregate ships per shard:
/// the group expressions (aliased `C0..C{G-1}`) followed by the deduped
/// aggregates (aliased `C{G}..`).
struct Components {
    groups: Vec<Expr>,
    aggs: Vec<Expr>,
}

/// Rewrite `expr` for the merge query: group expressions become references to
/// their partial column, aggregates become their merge aggregate over the
/// partial column, and scalar structure is preserved. None if the expression
/// mixes in anything that cannot be reconstructed from the partials.
fn rewrite(expr: &Expr, comp: &Components) -> Option<Expr> {
    if let Some(i) = comp.groups.iter().position(|g| g == expr) {
        return Some(col(format!("C{i}")));
    }
    if let Some(j) = comp.aggs.iter().position(|a| a == expr) {
        let merge = merge_fn_of(expr)?;
        return Some(Expr::Function {
            name: merge.into(),
            args: vec![col(format!("C{}", comp.groups.len() + j))],
            distinct: false,
        });
    }
    match expr {
        Expr::Literal(_) | Expr::Parameter(_) => Some(expr.clone()),
        Expr::Binary { left, op, right } => Some(Expr::Binary {
            left: Box::new(rewrite(left, comp)?),
            op: *op,
            right: Box::new(rewrite(right, comp)?),
        }),
        Expr::Unary { op, expr } => {
            Some(Expr::Unary { op: *op, expr: Box::new(rewrite(expr, comp)?) })
        }
        Expr::IsNull { expr, negated } => {
            Some(Expr::IsNull { expr: Box::new(rewrite(expr, comp)?), negated: *negated })
        }
        Expr::Between { expr, low, high, negated } => Some(Expr::Between {
            expr: Box::new(rewrite(expr, comp)?),
            low: Box::new(rewrite(low, comp)?),
            high: Box::new(rewrite(high, comp)?),
            negated: *negated,
        }),
        Expr::InList { expr, list, negated } => Some(Expr::InList {
            expr: Box::new(rewrite(expr, comp)?),
            list: list.iter().map(|e| rewrite(e, comp)).collect::<Option<Vec<_>>>()?,
            negated: *negated,
        }),
        Expr::Like { expr, pattern, negated } => Some(Expr::Like {
            expr: Box::new(rewrite(expr, comp)?),
            pattern: Box::new(rewrite(pattern, comp)?),
            negated: *negated,
        }),
        _ => None,
    }
}

fn gather_from() -> Option<TableRef> {
    Some(TableRef::Table { name: ObjectName::bare(GATHER), alias: None })
}

/// Plan how `q` scatters across shards. Non-Raw plans require a plain
/// single-table query (no DISTINCT, no UNION) whose result is reconstructible
/// from per-shard partials.
pub(crate) fn plan_scatter(q: &Query) -> ScatterPlan {
    if q.distinct || !q.unions.is_empty() {
        return ScatterPlan::Raw;
    }
    if !matches!(&q.from, Some(TableRef::Table { .. })) {
        return ScatterPlan::Raw;
    }
    if let Some(plan) = plan_two_phase_aggregate(q) {
        return plan;
    }
    if let Some(plan) = plan_top_k(q) {
        return plan;
    }
    ScatterPlan::Raw
}

fn plan_two_phase_aggregate(q: &Query) -> Option<ScatterPlan> {
    let mut proj = Vec::with_capacity(q.projection.len());
    for it in &q.projection {
        let SelectItem::Expr { expr, alias } = it else { return None };
        proj.push((expr.clone(), alias.clone()));
    }
    if q.group_by.iter().any(Expr::contains_aggregate) {
        return None;
    }
    let mut aggs = Vec::new();
    for (e, _) in &proj {
        if !collect_aggregates(e, &mut aggs) {
            return None;
        }
    }
    if let Some(h) = &q.having {
        if !collect_aggregates(h, &mut aggs) {
            return None;
        }
    }
    for o in &q.order_by {
        if !collect_aggregates(&o.expr, &mut aggs) {
            return None;
        }
    }
    if aggs.is_empty() && q.group_by.is_empty() {
        return None;
    }
    let comp = Components { groups: q.group_by.clone(), aggs };

    let names: Vec<String> =
        proj.iter().enumerate().map(|(i, (e, a))| output_name(e, a, i)).collect();
    // A bare `ORDER BY <group expr>` in the merge query resolves by output
    // name first; bail out if a derived output name could shadow a partial
    // column reference.
    if !q.order_by.is_empty()
        && names.iter().any(|n| {
            n.strip_prefix('C').is_some_and(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
        })
    {
        return None;
    }

    let mut merge_proj = Vec::with_capacity(proj.len());
    for (i, (e, _)) in proj.iter().enumerate() {
        merge_proj.push(item(rewrite(e, &comp)?, names[i].clone()));
    }
    let merge_having = match &q.having {
        Some(h) => Some(rewrite(h, &comp)?),
        None => None,
    };
    let mut merge_order = Vec::with_capacity(q.order_by.len());
    for o in &q.order_by {
        let expr = if is_ordinal(&o.expr) { o.expr.clone() } else { rewrite(&o.expr, &comp)? };
        merge_order.push(OrderByItem { expr, desc: o.desc });
    }

    let mut partial_proj = Vec::with_capacity(comp.groups.len() + comp.aggs.len());
    for (i, g) in comp.groups.iter().enumerate() {
        partial_proj.push(item(g.clone(), format!("C{i}")));
    }
    for (j, a) in comp.aggs.iter().enumerate() {
        partial_proj.push(item(a.clone(), format!("C{}", comp.groups.len() + j)));
    }
    let partial = Query {
        distinct: false,
        projection: partial_proj,
        from: q.from.clone(),
        filter: q.filter.clone(),
        group_by: q.group_by.clone(),
        having: None,
        unions: Vec::new(),
        order_by: Vec::new(),
        limit: None,
    };
    let merge = Query {
        distinct: false,
        projection: merge_proj,
        from: gather_from(),
        filter: None,
        group_by: (0..comp.groups.len()).map(|i| col(format!("C{i}"))).collect(),
        having: merge_having,
        unions: Vec::new(),
        order_by: merge_order,
        limit: q.limit,
    };
    Some(ScatterPlan::TwoPhase { partial: Box::new(partial), merge: Box::new(merge) })
}

fn plan_top_k(q: &Query) -> Option<ScatterPlan> {
    if !q.group_by.is_empty() || q.having.is_some() || q.order_by.is_empty() || q.limit.is_none() {
        return None;
    }
    let mut proj = Vec::with_capacity(q.projection.len());
    for it in &q.projection {
        let SelectItem::Expr { expr, alias } = it else { return None };
        if expr.contains_aggregate() {
            return None;
        }
        proj.push((expr.clone(), alias.clone()));
    }
    let names: Vec<String> =
        proj.iter().enumerate().map(|(i, (e, a))| output_name(e, a, i)).collect();
    let mut sorted = names.clone();
    sorted.sort();
    sorted.dedup();
    if sorted.len() != names.len() {
        return None;
    }
    let mut merge_order = Vec::with_capacity(q.order_by.len());
    for o in &q.order_by {
        if o.expr.contains_aggregate() {
            return None;
        }
        let expr = if is_ordinal(&o.expr) {
            o.expr.clone()
        } else if let Some(j) = proj.iter().position(|(e, _)| e == &o.expr) {
            col(names[j].clone())
        } else if let Expr::Column { qualifier: None, name } = &o.expr {
            if names.iter().filter(|n| *n == name).count() == 1 {
                col(name.clone())
            } else {
                return None;
            }
        } else {
            return None;
        };
        merge_order.push(OrderByItem { expr, desc: o.desc });
    }
    let merge = Query {
        distinct: false,
        projection: vec![SelectItem::Wildcard],
        from: gather_from(),
        filter: None,
        group_by: Vec::new(),
        having: None,
        unions: Vec::new(),
        order_by: merge_order,
        limit: q.limit,
    };
    Some(ScatterPlan::TwoPhase { partial: Box::new(q.clone()), merge: Box::new(merge) })
}

/// Retarget the query's single FROM table at a shard's physical table,
/// keeping the original name visible as an alias so column qualifiers still
/// resolve.
pub(crate) fn with_shard_from(q: &Query, shard: &ObjectName) -> Query {
    let mut out = q.clone();
    if let Some(TableRef::Table { name, alias }) = &q.from {
        out.from = Some(TableRef::Table {
            name: shard.clone(),
            alias: Some(alias.clone().unwrap_or_else(|| name.name.clone())),
        });
    }
    out
}

fn select_star(table: &ObjectName) -> Query {
    Query {
        distinct: false,
        projection: vec![SelectItem::Wildcard],
        from: Some(TableRef::Table { name: table.clone(), alias: None }),
        filter: None,
        group_by: Vec::new(),
        having: None,
        unions: Vec::new(),
        order_by: Vec::new(),
        limit: None,
    }
}

fn shard_unavailable(shard: usize, table: &ObjectName) -> Error {
    Error::ResourceUnavailable(format!(
        "shard {shard} of {table} has no live replica; all owners are unavailable"
    ))
}

fn shard_link_failure(shard: usize, table: &ObjectName) -> Error {
    Error::LinkFailure(format!(
        "the exchange for shard {shard} of {table} failed after retries on every replica"
    ))
}

// ---------------------------------------------------------------------------
// Join-filter pushdown for raw gathers
// ---------------------------------------------------------------------------

/// A build-side key summary that rides with each shard's gather request of
/// an inner equi-join, so the node drops probe rows that cannot match any
/// build key *before* encoding its reply frame. The summary is
/// false-positive-only (Bloom filter plus min/max range), so false negatives
/// are impossible and the merged answer is byte-identical with pushdown
/// disabled — only gather traffic shrinks.
pub(crate) struct GatherFilter {
    /// Key column index in the sharded probe table's schema.
    col: usize,
    summary: wire::KeySummary,
    /// Encoded summary size, charged on every shard's request leg.
    bytes: usize,
}

/// An inner equi-join eligible for gather pushdown: the single sharded
/// table is the probe side and `build` (replicated, gathered raw from DB2)
/// supplies the keys summarized for the shards.
struct JoinPushdown {
    build: ObjectName,
    probe_col: usize,
    build_col: usize,
}

/// Detect a pushdown-eligible join in `q`: a plain (no UNION) inner join of
/// two base tables, exactly one of them `sharded`, with at least one ON
/// conjunct equating a bare probe column with a bare build column whose
/// declared types share a key family (integer or character) — the same
/// static gate the accelerator's typed join kernels use, so a value can
/// never equal a key the summary cannot represent.
fn find_join_pushdown(
    q: &Query,
    sharded: &ObjectName,
    default_schema: &str,
    schema_of: &dyn Fn(&ObjectName) -> Option<Schema>,
) -> Option<JoinPushdown> {
    if !q.unions.is_empty() {
        return None;
    }
    let TableRef::Join { left, right, kind: JoinKind::Inner, on } = q.from.as_ref()? else {
        return None;
    };
    let (TableRef::Table { name: ln, alias: la }, TableRef::Table { name: rn, alias: ra }) =
        (left.as_ref(), right.as_ref())
    else {
        return None;
    };
    let (lr, rr) = (ln.resolve(default_schema), rn.resolve(default_schema));
    let (pn, pa, bn, ba, build) = if lr == *sharded && rr != *sharded {
        (ln, la, rn, ra, rr)
    } else if rr == *sharded && lr != *sharded {
        (rn, ra, ln, la, lr)
    } else {
        return None;
    };
    let plabel = pa.clone().unwrap_or_else(|| pn.name.clone());
    let blabel = ba.clone().unwrap_or_else(|| bn.name.clone());
    let probe_schema = schema_of(sharded)?;
    let build_schema = schema_of(&build)?;
    // Resolve a bare column to (is_probe, index), or None if ambiguous.
    let side_of = |e: &Expr| -> Option<(bool, usize)> {
        let Expr::Column { qualifier, name } = e else { return None };
        match qualifier {
            Some(q) if *q == plabel => probe_schema.index_of(name).ok().map(|i| (true, i)),
            Some(q) if *q == blabel => build_schema.index_of(name).ok().map(|i| (false, i)),
            Some(_) => None,
            None => match (probe_schema.index_of(name).ok(), build_schema.index_of(name).ok()) {
                (Some(i), None) => Some((true, i)),
                (None, Some(i)) => Some((false, i)),
                _ => None,
            },
        }
    };
    let mut stack = vec![on];
    while let Some(e) = stack.pop() {
        if let Expr::Binary { left, op, right } = e {
            match op {
                BinaryOp::And => {
                    stack.push(right);
                    stack.push(left);
                }
                BinaryOp::Eq => {
                    if let (Some((ls, li)), Some((rs, ri))) = (side_of(left), side_of(right)) {
                        if ls != rs {
                            let (probe_col, build_col) = if ls { (li, ri) } else { (ri, li) };
                            let pt = probe_schema.columns()[probe_col].data_type;
                            let bt = build_schema.columns()[build_col].data_type;
                            if (pt.is_integer() && bt.is_integer())
                                || (pt.is_character() && bt.is_character())
                            {
                                return Some(JoinPushdown { build, probe_col, build_col });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Summarize the build side's key column for shipping to the shards.
fn build_gather_filter(rows: &[Row], build_col: usize, probe_col: usize) -> GatherFilter {
    let mut summary = wire::KeySummary::with_capacity(rows.len());
    for r in rows {
        match &r[build_col] {
            Value::Null => {}
            Value::SmallInt(v) => summary.insert_i64(i64::from(*v)),
            Value::Int(v) => summary.insert_i64(i64::from(*v)),
            Value::BigInt(v) => summary.insert_i64(*v),
            Value::Varchar(s) => summary.insert_str(s),
            // Unreachable under the declared-type gate; a value the summary
            // cannot represent is simply not inserted, and the probe side's
            // matching values pass through `matches_value` untouched.
            _ => {}
        }
    }
    let bytes = wire::encode_summary(&summary).len();
    GatherFilter { col: probe_col, summary, bytes }
}

// ---------------------------------------------------------------------------
// Fleet execution
// ---------------------------------------------------------------------------

impl Idaa {
    /// True when this instance runs a real fleet (more than one node or more
    /// than one shard). When false, every legacy single-accelerator path is
    /// taken unchanged.
    pub fn fleet_active(&self) -> bool {
        self.nodes.len() > 1 || self.fleet.shards > 1
    }

    /// Number of accelerator nodes in the fleet.
    pub fn fleet_size(&self) -> usize {
        self.nodes.len()
    }

    /// Engine of node `i` (0-based).
    pub fn node_engine(&self, i: usize) -> &AccelEngine {
        &self.nodes[i].engine
    }

    /// Metered link of node `i`.
    pub fn node_link(&self, i: usize) -> &NetLink {
        &self.nodes[i].link
    }

    /// Seeded fault/crash registry of node `i`.
    pub fn node_registry(&self, i: usize) -> &Arc<FaultRegistry> {
        &self.nodes[i].registry
    }

    /// Install a crash plan on node `i`'s registry.
    pub fn set_crash_plan_on(&self, i: usize, plan: idaa_netsim::CrashPlan) {
        self.nodes[i].registry.set_plan(plan);
    }

    /// Install a seeded storage fault plan on node `i`'s registry.
    pub fn set_disk_plan_on(&self, i: usize, plan: idaa_netsim::DiskFaultPlan) {
        self.nodes[i].registry.set_disk_plan(plan);
    }

    /// Completed storage rebuilds of node `i` (durable state discarded and
    /// re-shipped from the host and replicas after unrepairable
    /// corruption).
    pub fn node_rebuilds(&self, i: usize) -> u64 {
        self.nodes[i].rebuilds.load(Ordering::Relaxed)
    }

    /// Total failovers (a gather served by a non-primary replica).
    pub fn fleet_failovers(&self) -> u64 {
        self.fleet.failovers()
    }

    /// Total shards migrated back to their preferred owner.
    pub fn fleet_rebalances(&self) -> u64 {
        self.fleet.rebalances()
    }

    /// Total wire bytes spent on shard catch-up copies.
    pub fn fleet_catch_up_bytes(&self) -> u64 {
        self.fleet.catch_up_bytes()
    }

    /// Current primary node of every shard.
    pub fn current_primaries(&self) -> Vec<usize> {
        (0..self.fleet.shards).map(|s| self.fleet.primary_of(s)).collect()
    }

    /// Merged [`LinkMetrics`] across every node's link: the fleet-wide
    /// traffic totals the experiments report.
    pub fn fleet_link_metrics(&self) -> LinkMetrics {
        let per_node: Vec<LinkMetrics> = self.nodes.iter().map(|n| n.link.metrics()).collect();
        LinkMetrics::merged(per_node.iter())
    }

    /// Lift a node's virtual clock up to the coordinator's "now". The
    /// coordinator timeline is node 0's link; a lagging node cannot serve a
    /// statement in the coordinator's past, so every per-node exchange first
    /// synchronizes the node clock forward. Together with
    /// [`Idaa::absorb_node_clock`] this keeps statement span trees
    /// well-nested on one monotone timeline even though every shard link
    /// meters (and delays) independently.
    pub(crate) fn sync_node_clock(&self, node: &AccelNode) {
        let (now, node_now) = (self.link().now(), node.link.now());
        if node_now < now {
            node.link.advance(now - node_now);
        }
    }

    /// Absorb into the coordinator's clock whatever virtual time a node
    /// consumed serving an exchange (transfer costs, retries, recovery).
    pub(crate) fn absorb_node_clock(&self, node: &AccelNode) {
        let (now, node_now) = (self.link().now(), node.link.now());
        if now < node_now {
            self.link().advance(node_now - now);
        }
    }

    /// Manually trigger recovery of node `i`, bypassing the probe-interval
    /// gate (the fleet counterpart of [`Idaa::recover`]).
    pub fn recover_node(&self, i: usize) -> bool {
        let node = self.nodes[i].clone();
        if self.faults.accel_unavailable.load(Ordering::Relaxed) {
            return false;
        }
        if node.engine.is_crashed() {
            node.health.force_offline();
        }
        if !node.health.probe(&node.link, &self.retry) {
            return false;
        }
        if node.engine.is_crashed() && self.restart_node(&node).is_err() {
            return false;
        }
        if self.fleet_active()
            && self.fleet.needs_catch_up(node.id)
            && self.catch_up_node(&node).is_err()
        {
            return false;
        }
        let _ = self.replicate_now();
        true
    }

    /// Execute `q` across the fleet: scatter to owning shards in ascending
    /// shard order, fail over per shard, and merge at the coordinator.
    pub(crate) fn fleet_query(
        &self,
        session: &mut Session,
        q: &Query,
        tables: &[ObjectName],
    ) -> Result<Rows> {
        let trace = session.trace.clone();
        if self.faults.accel_unavailable.load(Ordering::Relaxed) {
            return Err(self.unavailable_error());
        }
        self.maybe_rebalance();
        let mut sharded: Vec<ObjectName> = Vec::new();
        for t in tables {
            if self.fleet.is_sharded(t) && !sharded.contains(t) {
                sharded.push(t.clone());
            }
        }
        if sharded.is_empty() {
            // Replicated tables only: node 0 serves the whole query.
            if !self.accel_ready_traced(&trace) {
                return Err(self.unavailable_error());
            }
            return self.accel_query(session, q);
        }
        let span = if trace.is_enabled() { Some(trace.begin("gather", self.link().now())) } else { None };
        if let Some(id) = span {
            let list = sharded.iter().map(|t| t.to_string()).collect::<Vec<_>>().join(",");
            trace.attr(id, "tables", list);
            trace.attr(id, "shards", self.fleet.shards);
        }
        let result = self.fleet_query_inner(session, &trace, q, tables, &sharded);
        if let Some(id) = span {
            if let Err(e) = &result {
                trace.attr(id, "err", e);
            }
            trace.end(id, self.link().now());
        }
        result
    }

    fn fleet_query_inner(
        &self,
        session: &mut Session,
        trace: &Trace,
        q: &Query,
        tables: &[ObjectName],
        sharded: &[ObjectName],
    ) -> Result<Rows> {
        let scratch = AccelEngine::new(&self.config.default_schema, self.config.accel.clone());
        let plan = if sharded.len() == 1 { plan_scatter(q) } else { ScatterPlan::Raw };
        match plan {
            ScatterPlan::TwoPhase { partial, merge } => {
                let table = &sharded[0];
                let gather = ObjectName::bare(GATHER);
                let mut created = false;
                for s in 0..self.fleet.shards {
                    let pq = with_shard_from(&partial, &shard_table(table, s));
                    let rows = self.gather_shard(session, trace, table, s, &pq, None)?;
                    if !created {
                        scratch.create_table(&gather, rows.schema.clone(), &[])?;
                        created = true;
                    }
                    scratch.load_committed(&gather, rows.rows)?;
                }
                scratch.query(0, &merge)
            }
            ScatterPlan::Raw => {
                let mut staged: Vec<ObjectName> = Vec::new();
                // Inner equi-join against one sharded probe table: stage the
                // build side first and ship its key summary with every shard
                // gather, so shards pre-filter probe rows before encoding.
                let mut filter: Option<GatherFilter> = None;
                if self.config.fleet.join_pushdown && sharded.len() == 1 {
                    let schema_of = |t: &ObjectName| -> Option<Schema> {
                        self.host.table_meta(t).ok().map(|m| m.schema.clone())
                    };
                    if let Some(pd) =
                        find_join_pushdown(q, &sharded[0], &self.config.default_schema, &schema_of)
                    {
                        let meta = self.host.table_meta(&pd.build)?;
                        scratch.create_table(&pd.build, meta.schema.clone(), &[])?;
                        let build_rows = self.host.scan_all(&pd.build)?;
                        filter = Some(build_gather_filter(&build_rows, pd.build_col, pd.probe_col));
                        scratch.load_committed(&pd.build, build_rows)?;
                        staged.push(pd.build);
                    }
                }
                for t in tables {
                    if t.name == "SYSDUMMY1" || staged.contains(t) {
                        continue;
                    }
                    let meta = self.host.table_meta(t)?;
                    scratch.create_table(t, meta.schema.clone(), &[])?;
                    if self.fleet.is_sharded(t) {
                        for s in 0..self.fleet.shards {
                            let pq = select_star(&shard_table(t, s));
                            let rows =
                                self.gather_shard(session, trace, t, s, &pq, filter.as_ref())?;
                            scratch.load_committed(t, rows.rows)?;
                        }
                    } else {
                        scratch.load_committed(t, self.host.scan_all(t)?)?;
                    }
                    staged.push(t.clone());
                }
                scratch.query(0, q)
            }
        }
    }

    /// Fetch one shard's partial result, failing over from the current
    /// primary to the remaining replicas in deterministic order.
    pub(crate) fn gather_shard(
        &self,
        session: &mut Session,
        trace: &Trace,
        table: &ObjectName,
        shard: usize,
        pq: &Query,
        prefilter: Option<&GatherFilter>,
    ) -> Result<Rows> {
        let span = if trace.is_enabled() { Some(trace.begin("shard", self.link().now())) } else { None };
        if let Some(id) = span {
            trace.attr(id, "table", table);
            trace.attr(id, "shard", shard);
            if let Some(f) = prefilter {
                trace.attr(id, "summary_bytes", f.bytes);
            }
        }
        let owners = self.fleet.owners(shard);
        let primary = self.fleet.primary_of(shard);
        let start = owners.iter().position(|&o| o == primary).unwrap_or(0);
        let mut saw_unavailable = false;
        let mut outcome = None;
        for step in 0..owners.len() {
            let owner = owners[(start + step) % owners.len()];
            let node = self.nodes[owner].clone();
            self.sync_node_clock(&node);
            let ready = self.node_ready(&node);
            self.absorb_node_clock(&node);
            if !ready {
                saw_unavailable = true;
                continue;
            }
            if node.engine.crash_point(sites::MID_SCATTER).is_err() {
                node.health.force_offline();
                self.fleet.mark_catch_up(owner);
                saw_unavailable = true;
                continue;
            }
            let txn = self.node_query_txn(session, &node);
            let attempt = self.exchange_on(
                &node,
                session,
                pq.to_string().len()
                    + wire::CONTROL_FRAME
                    + prefilter.map_or(0, |f| f.bytes),
                || {
                    let mut rows = node.engine.query(txn, pq)?;
                    if let Some(f) = prefilter {
                        // Node-side pre-filter: only rows that *might* join
                        // are encoded into the reply frame.
                        rows.rows.retain(|r| f.summary.matches_value(&r[f.col]));
                    }
                    Ok(rows)
                },
                |r: &Rows| ReplyPayload::Frame(wire::encode_frame(&r.schema, &r.rows)),
            );
            self.absorb_node_clock(&node);
            match attempt {
                Ok((rows, frame)) => {
                    let frame = frame.expect("row replies travel as wire frames");
                    let delivered = wire::decode_rows(&frame, &rows.schema)?;
                    if owner != primary {
                        self.fleet.record_failover(shard, owner, self.link().now());
                        self.metrics.inc("fleet.failovers", 1);
                        trace.event(
                            "failover",
                            &[("shard", &shard), ("from", &primary), ("to", &owner)],
                            self.link().now(),
                        );
                    }
                    if let Some(id) = span {
                        trace.attr(id, "node", node.engine.identity());
                        trace.attr(id, "epoch", node.engine.epoch());
                    }
                    outcome = Some(Ok(Rows { schema: rows.schema, rows: delivered }));
                    break;
                }
                Err(Error::LinkFailure(_)) => continue,
                Err(Error::ResourceUnavailable(_)) => {
                    node.health.force_offline();
                    saw_unavailable = true;
                    continue;
                }
                Err(e) => {
                    outcome = Some(Err(e));
                    break;
                }
            }
        }
        let result = outcome.unwrap_or_else(|| {
            Err(if saw_unavailable {
                shard_unavailable(shard, table)
            } else {
                shard_link_failure(shard, table)
            })
        });
        if let Some(id) = span {
            if let Err(e) = &result {
                trace.attr(id, "err", e);
            }
            trace.end(id, self.link().now());
        }
        result
    }

    /// Route failed-over shards back to their preferred owner once it is
    /// healthy, caught up, and the rebalance delay has elapsed on the
    /// virtual clock.
    pub(crate) fn maybe_rebalance(&self) {
        if !self.fleet_active() {
            return;
        }
        for s in 0..self.fleet.shards {
            let preferred = self.fleet.owners(s)[0];
            if self.fleet.primary_of(s) == preferred {
                continue;
            }
            let Some(at) = self.fleet.failed_over_time(s) else { continue };
            if self.link().now() < at + self.fleet.rebalance_after {
                continue;
            }
            let node = &self.nodes[preferred];
            if node.engine.is_crashed()
                || node.health.state() == HealthState::Offline
                || self.fleet.needs_catch_up(preferred)
            {
                continue;
            }
            self.fleet.set_primary(s, preferred);
            self.fleet.note_rebalance();
            self.metrics.inc("fleet.rebalances", 1);
        }
    }

    /// Copy every shard a lagging node owns from a live replica, metering
    /// both legs of the transfer. The node stays flagged until a full pass
    /// succeeds.
    pub(crate) fn catch_up_node(&self, node: &AccelNode) -> Result<()> {
        for t in self.fleet.sharded_tables() {
            let meta = self.host.table_meta(&t)?;
            for s in 0..self.fleet.shards {
                let owners = self.fleet.owners(s);
                if !owners.contains(&node.id) {
                    continue;
                }
                let Some(src_id) = owners.iter().copied().find(|&o| {
                    o != node.id
                        && !self.nodes[o].engine.is_crashed()
                        && !self.fleet.needs_catch_up(o)
                }) else {
                    continue;
                };
                let src = self.nodes[src_id].clone();
                let st = shard_table(&t, s);
                let rows = src.engine.scan_visible(&st)?;
                let mut delivered: Vec<Row> = Vec::with_capacity(rows.len());
                let mut bytes = 0u64;
                for frame in wire::encode_frames(&meta.schema, &rows) {
                    self.ship_frame_on(&src, Direction::ToHost, &frame)?;
                    self.ship_frame_on(node, Direction::ToAccel, &frame)?;
                    bytes += 2 * frame.len() as u64;
                    delivered.extend(wire::decode_rows(&frame, &meta.schema)?);
                }
                node.engine.truncate(&st)?;
                node.engine.load_committed(&st, delivered)?;
                self.fleet.add_catch_up_bytes(bytes);
                self.metrics.inc("fleet.catch_up.bytes", bytes);
            }
        }
        self.fleet.clear_catch_up(node.id);
        self.metrics.inc("fleet.catch_ups", 1);
        Ok(())
    }

    /// Create the physical shard tables of an `IN ACCELERATOR` table on
    /// every owning node and register the logical table as sharded.
    pub(crate) fn fleet_create_sharded(
        &self,
        name: &ObjectName,
        schema: &Schema,
        distribute_by: &[String],
        ddl: &str,
    ) -> Result<()> {
        for s in 0..self.fleet.shards {
            let st = shard_table(name, s);
            for owner in self.fleet.owners(s) {
                let node = &self.nodes[owner];
                self.ship_ddl_on(node, ddl)?;
                node.engine.create_table(&st, schema.clone(), distribute_by)?;
            }
        }
        self.fleet.add_sharded(name.clone());
        Ok(())
    }

    /// Best-effort drop of a table's accelerator copies across the fleet
    /// (shard tables if sharded, else the replicated copy on every node).
    pub(crate) fn fleet_drop_table(&self, name: &ObjectName, ddl: &str) {
        if self.fleet.remove_sharded(name) {
            for s in 0..self.fleet.shards {
                let st = shard_table(name, s);
                for owner in self.fleet.owners(s) {
                    let node = &self.nodes[owner];
                    let _ = self.ship_ddl_on(node, ddl);
                    let _ = node.engine.drop_table(&st);
                }
            }
        } else {
            for node in &self.nodes {
                let _ = self.ship_ddl_on(node, ddl);
                let _ = node.engine.drop_table(name);
            }
        }
    }

    /// Scatter an AOT insert: rows hash to shards by the first distribution
    /// column and every owning replica applies its shard's slice.
    pub(crate) fn fleet_insert_rows(
        &self,
        session: &mut Session,
        table: &ObjectName,
        schema: &Schema,
        distribute_by: &[String],
        rows: Vec<Row>,
    ) -> Result<usize> {
        self.maybe_rebalance();
        let dist_idx = match distribute_by.first() {
            Some(c) => schema.index_of(c)?,
            None => 0,
        };
        let mut by_shard: BTreeMap<usize, Vec<Row>> = BTreeMap::new();
        for row in rows {
            by_shard.entry(shard_of(&row[dist_idx], self.fleet.shards)).or_default().push(row);
        }
        let trace = session.trace.clone();
        let mut total = 0usize;
        for (s, shard_rows) in by_shard {
            let st = shard_table(table, s);
            let mut counted = None;
            let mut saw_unavailable = false;
            for owner in self.fleet.owners(s) {
                let node = self.nodes[owner].clone();
                self.sync_node_clock(&node);
                let ready = self.node_ready(&node);
                self.absorb_node_clock(&node);
                if !ready {
                    self.fleet.mark_catch_up(owner);
                    saw_unavailable = true;
                    continue;
                }
                let attempt: Result<usize> = (|| {
                    let txn = self.enlist_node(session, &node)?;
                    let delivered = self.ship_rows_traced_on(
                        &node,
                        &trace,
                        Direction::ToAccel,
                        schema,
                        &shard_rows,
                    )?;
                    let n = node.engine.insert_rows(txn, &st, delivered)?;
                    self.ship_traced_on(&node, &trace, Direction::ToHost, "ack", wire::ACK_FRAME)?;
                    Ok(n)
                })();
                self.absorb_node_clock(&node);
                match attempt {
                    Ok(n) => {
                        if counted.is_none() {
                            counted = Some(n);
                        }
                    }
                    Err(Error::LinkFailure(_)) => self.fleet.mark_catch_up(owner),
                    Err(Error::ResourceUnavailable(_)) => {
                        node.health.force_offline();
                        self.fleet.mark_catch_up(owner);
                        saw_unavailable = true;
                    }
                    Err(e) => return Err(e),
                }
            }
            match counted {
                Some(n) => total += n,
                None => {
                    return Err(if saw_unavailable {
                        shard_unavailable(s, table)
                    } else {
                        shard_link_failure(s, table)
                    })
                }
            }
        }
        Ok(total)
    }

    /// Scatter an AOT UPDATE/DELETE: every shard applies the statement on
    /// every live owning replica; the per-shard row count is taken from the
    /// first replica that serves it.
    pub(crate) fn fleet_dml_each_shard(
        &self,
        session: &mut Session,
        table: &ObjectName,
        request_bytes: usize,
        op: impl Fn(&AccelNode, TxnId, &ObjectName) -> Result<usize>,
    ) -> Result<usize> {
        self.maybe_rebalance();
        let mut total = 0usize;
        for s in 0..self.fleet.shards {
            let st = shard_table(table, s);
            let mut counted = None;
            let mut saw_unavailable = false;
            for owner in self.fleet.owners(s) {
                let node = self.nodes[owner].clone();
                self.sync_node_clock(&node);
                let ready = self.node_ready(&node);
                self.absorb_node_clock(&node);
                if !ready {
                    self.fleet.mark_catch_up(owner);
                    saw_unavailable = true;
                    continue;
                }
                let attempt: Result<usize> = (|| {
                    let txn = self.enlist_node(session, &node)?;
                    let (n, _) = self.exchange_on(
                        &node,
                        session,
                        request_bytes,
                        || op(&node, txn, &st),
                        |_| ReplyPayload::Control(wire::ACK_FRAME),
                    )?;
                    Ok(n)
                })();
                self.absorb_node_clock(&node);
                match attempt {
                    Ok(n) => {
                        if counted.is_none() {
                            counted = Some(n);
                        }
                    }
                    Err(Error::LinkFailure(_)) => self.fleet.mark_catch_up(owner),
                    Err(Error::ResourceUnavailable(_)) => {
                        node.health.force_offline();
                        self.fleet.mark_catch_up(owner);
                        saw_unavailable = true;
                    }
                    Err(e) => return Err(e),
                }
            }
            match counted {
                Some(n) => total += n,
                None => {
                    return Err(if saw_unavailable {
                        shard_unavailable(s, table)
                    } else {
                        shard_link_failure(s, table)
                    })
                }
            }
        }
        Ok(total)
    }

    /// Two-phase commit across every enlisted fleet node: all prepare, all
    /// vote, one host decision, and per-node phase-2 delivery with queued
    /// decisions for unreachable nodes.
    pub(crate) fn commit_two_phase_fleet(
        &self,
        trace: &Trace,
        txn: TxnId,
        ids: &[usize],
    ) -> Result<()> {
        let abort_all = |idaa: &Idaa| {
            for &i in ids {
                idaa.nodes[i].engine.abort(txn);
            }
        };
        if self.faults.accel_unavailable.load(Ordering::Relaxed)
            || ids.iter().any(|&i| self.nodes[i].engine.is_crashed())
        {
            abort_all(self);
            self.host.rollback(txn)?;
            return Err(Error::ResourceUnavailable(
                "an enlisted accelerator is unavailable; the transaction was rolled back on all participants"
                    .into(),
            ));
        }
        for &i in ids {
            self.sync_node_clock(&self.nodes[i]);
            let shipped = self
                .ship_traced_on(&self.nodes[i], trace, Direction::ToAccel, "prepare", wire::CONTROL_FRAME);
            self.absorb_node_clock(&self.nodes[i]);
            if shipped.is_err() {
                abort_all(self);
                self.host.rollback(txn)?;
                return Err(Error::CommitFailed(
                    "PREPARE could not be delivered to every fleet node; transaction rolled back"
                        .into(),
                ));
            }
        }
        if self.faults.registry.fire(sites::PREPARE_VOTE_NO) {
            abort_all(self);
            self.host.rollback(txn)?;
            return Err(Error::CommitFailed(
                "a fleet node voted NO during PREPARE; transaction rolled back".into(),
            ));
        }
        for &i in ids {
            if self.nodes[i].engine.prepare(txn).is_err() {
                abort_all(self);
                self.host.rollback(txn)?;
                return Err(Error::CommitFailed(
                    "a fleet node failed to prepare; transaction rolled back".into(),
                ));
            }
        }
        for &i in ids {
            self.sync_node_clock(&self.nodes[i]);
            let shipped = self
                .ship_traced_on(&self.nodes[i], trace, Direction::ToHost, "vote", wire::CONTROL_FRAME);
            self.absorb_node_clock(&self.nodes[i]);
            if shipped.is_err() {
                abort_all(self);
                self.host.rollback(txn)?;
                return Err(Error::CommitFailed(
                    "a fleet node's commit vote was lost; transaction rolled back".into(),
                ));
            }
        }
        self.host.commit(txn);
        for &i in ids {
            let node = &self.nodes[i];
            self.sync_node_clock(node);
            let decided = !node.engine.is_crashed()
                && self
                    .ship_traced_on(node, trace, Direction::ToAccel, "commit", wire::CONTROL_FRAME)
                    .is_ok();
            self.absorb_node_clock(node);
            if !decided {
                node.pending_commits.lock().push(txn);
                self.metrics.inc("twopc.decisions_queued", 1);
            } else {
                node.engine.commit(txn);
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use idaa_sql::parse_statement;
    use idaa_sql::ast::Statement;

    fn q(sql: &str) -> Query {
        match parse_statement(sql).expect("parse") {
            Statement::Query(q) => *q,
            other => panic!("not a query: {other:?}"),
        }
    }

    #[test]
    fn shard_placement_is_deterministic_and_wraps() {
        let fs = FleetState::new(&FleetConfig {
            accelerators: 3,
            shards: 4,
            replication_factor: 2,
            ..FleetConfig::default()
        });
        assert_eq!(fs.owners(0), vec![0, 1]);
        assert_eq!(fs.owners(2), vec![2, 0]);
        assert_eq!(fs.owners(3), vec![0, 1]);
        let v = Value::BigInt(42);
        assert_eq!(shard_of(&v, 4), shard_of(&v, 4));
        assert_eq!(shard_of(&v, 1), 0);
        assert!(shard_of(&Value::Varchar("x".into()), 4) < 4);
    }

    #[test]
    fn replication_factor_clamps_to_fleet_size() {
        let fs = FleetState::new(&FleetConfig {
            accelerators: 2,
            shards: 2,
            replication_factor: 5,
            ..FleetConfig::default()
        });
        assert_eq!(fs.owners(0), vec![0, 1]);
    }

    #[test]
    fn shard_table_names_keep_schema() {
        let t = ObjectName::qualified("APP", "SALES");
        assert_eq!(shard_table(&t, 2).to_string(), "APP.SALES__S2");
    }

    #[test]
    fn mergeable_aggregates_plan_two_phase() {
        let plan =
            plan_scatter(&q("SELECT REGION, COUNT(*), SUM(AMOUNT) FROM SALES GROUP BY REGION"));
        let ScatterPlan::TwoPhase { partial, merge } = plan else {
            panic!("expected two-phase plan")
        };
        assert_eq!(
            partial.to_string(),
            "SELECT REGION AS C0, COUNT(*) AS C1, SUM(AMOUNT) AS C2 FROM SALES GROUP BY REGION"
        );
        assert_eq!(
            merge.to_string(),
            "SELECT C0 AS REGION, SUM(C1) AS C2, SUM(C2) AS C3 FROM __GATHER GROUP BY C0"
        );
    }

    #[test]
    fn global_aggregates_merge_without_groups() {
        let plan = plan_scatter(&q("SELECT COUNT(*) AS N, MIN(X) AS LO FROM T WHERE X > 3"));
        let ScatterPlan::TwoPhase { partial, merge } = plan else {
            panic!("expected two-phase plan")
        };
        assert_eq!(
            partial.to_string(),
            "SELECT COUNT(*) AS C0, MIN(X) AS C1 FROM T WHERE (X > 3)"
        );
        assert_eq!(merge.to_string(), "SELECT SUM(C0) AS N, MIN(C1) AS LO FROM __GATHER");
    }

    #[test]
    fn avg_distinct_and_joins_gather_raw() {
        assert!(matches!(plan_scatter(&q("SELECT AVG(X) FROM T")), ScatterPlan::Raw));
        assert!(matches!(plan_scatter(&q("SELECT COUNT(DISTINCT X) FROM T")), ScatterPlan::Raw));
        assert!(matches!(plan_scatter(&q("SELECT DISTINCT X FROM T")), ScatterPlan::Raw));
        assert!(matches!(
            plan_scatter(&q("SELECT A.X FROM A JOIN B ON A.K = B.K")),
            ScatterPlan::Raw
        ));
    }

    #[test]
    fn top_k_pushes_order_and_limit_per_shard() {
        let original = q("SELECT ID, AMOUNT FROM SALES ORDER BY AMOUNT DESC LIMIT 5");
        let plan = plan_scatter(&original);
        let ScatterPlan::TwoPhase { partial, merge } = plan else {
            panic!("expected two-phase plan")
        };
        assert_eq!(*partial, original);
        assert_eq!(merge.to_string(), "SELECT * FROM __GATHER ORDER BY AMOUNT DESC LIMIT 5");
    }

    #[test]
    fn unlimited_scans_gather_raw() {
        assert!(matches!(plan_scatter(&q("SELECT X FROM T")), ScatterPlan::Raw));
        assert!(matches!(plan_scatter(&q("SELECT X FROM T ORDER BY X")), ScatterPlan::Raw));
    }

    #[test]
    fn with_shard_from_preserves_qualifier_resolution() {
        let original = q("SELECT SALES.ID FROM SALES WHERE SALES.ID > 1");
        let shard = ObjectName::qualified("APP", "SALES__S1");
        let rewritten = with_shard_from(&original, &shard);
        assert_eq!(
            rewritten.to_string(),
            "SELECT SALES.ID FROM APP.SALES__S1 AS SALES WHERE (SALES.ID > 1)"
        );
    }

    #[test]
    fn join_pushdown_detects_typed_inner_equi_joins_only() {
        use idaa_common::{ColumnDef, DataType};
        let probe = Schema::new(vec![
            ColumnDef::not_null("K", DataType::Integer),
            ColumnDef::new("V", DataType::Double),
        ])
        .unwrap();
        let build = Schema::new(vec![
            ColumnDef::not_null("K", DataType::BigInt),
            ColumnDef::new("NAME", DataType::Varchar(10)),
        ])
        .unwrap();
        let schema_of = |t: &ObjectName| -> Option<Schema> {
            match t.name.as_str() {
                "F" => Some(probe.clone()),
                "D" => Some(build.clone()),
                _ => None,
            }
        };
        let sharded = ObjectName::bare("F").resolve("APP");
        let find = |sql: &str| find_join_pushdown(&q(sql), &sharded, "APP", &schema_of);
        // Inner equi-join on an integer-family key pair qualifies.
        let pd = find("SELECT * FROM F JOIN D ON F.K = D.K AND F.V > 1").unwrap();
        assert_eq!((pd.probe_col, pd.build_col), (0, 0));
        assert_eq!(pd.build, ObjectName::bare("D").resolve("APP"));
        // Probe/build sides swap freely.
        assert!(find("SELECT * FROM D JOIN F ON D.K = F.K").is_some());
        // LEFT joins must keep non-matching probe rows for null padding.
        assert!(find("SELECT * FROM F LEFT JOIN D ON F.K = D.K").is_none());
        // Self-joins, mixed key families, and non-equi conjuncts don't.
        assert!(find("SELECT * FROM F A JOIN F B ON A.K = B.K").is_none());
        assert!(find("SELECT * FROM F JOIN D ON F.K = D.NAME").is_none());
        assert!(find("SELECT * FROM F JOIN D ON F.K > D.K").is_none());
    }

    #[test]
    fn gather_filter_is_false_positive_only() {
        let rows: Vec<Row> = (0..50)
            .map(|i| vec![Value::Int(i * 3), Value::Varchar(format!("N{i}"))])
            .collect();
        let f = build_gather_filter(&rows, 0, 0);
        // Every build key must pass; NULLs never do.
        for r in &rows {
            assert!(f.summary.matches_value(&r[0]));
        }
        assert!(!f.summary.matches_value(&Value::Null));
        // Out-of-range probes are cut off by the min/max guard.
        assert!(!f.summary.matches_value(&Value::Int(-1)));
        assert!(!f.summary.matches_value(&Value::Int(1000)));
        assert!(f.bytes > 0);
    }

    #[test]
    fn failover_bookkeeping_tracks_primaries() {
        let fs = FleetState::new(&FleetConfig {
            accelerators: 3,
            shards: 2,
            replication_factor: 2,
            ..FleetConfig::default()
        });
        assert_eq!(fs.primary_of(1), 1);
        fs.record_failover(1, 2, Duration::from_millis(5));
        assert_eq!(fs.primary_of(1), 2);
        assert_eq!(fs.failed_over_time(1), Some(Duration::from_millis(5)));
        assert_eq!(fs.failovers(), 1);
        fs.set_primary(1, 1);
        assert_eq!(fs.primary_of(1), 1);
        assert_eq!(fs.failed_over_time(1), None);
    }
}
