//! The parallel load pipeline: reader → parse workers → writer.
//!
//! Reading pulls record batches from the source; a configurable number of
//! parser workers convert text records into typed rows against the target
//! schema (the "format conversion" stage of the real loader); the writer
//! applies parsed batches to the target. Experiment E5 sweeps the worker
//! count.

use crate::source::{Record, RecordSource};
use crossbeam_channel::bounded;
use idaa_common::{DataType, Error, Result, Row, Schema, Value};

/// How to react to malformed records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectPolicy {
    /// First bad record fails the load.
    FailFast,
    /// Skip bad records up to a limit, then fail.
    SkipUpTo(usize),
}

/// Load pipeline configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Parser worker threads.
    pub parallelism: usize,
    /// Records per batch through the pipeline.
    pub batch_size: usize,
    /// Malformed-record policy.
    pub rejects: RejectPolicy,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig { parallelism: 4, batch_size: 4096, rejects: RejectPolicy::SkipUpTo(0) }
    }
}

/// Outcome of a load.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LoadReport {
    pub rows_loaded: usize,
    pub rows_rejected: usize,
    pub batches: usize,
}

/// Parse one text field into a typed [`Value`] for `data_type`. Empty
/// fields load as NULL (classic loader convention).
pub fn parse_field(field: &str, data_type: DataType) -> Result<Value> {
    let t = field.trim();
    if t.is_empty() || t.eq_ignore_ascii_case("null") {
        return Ok(Value::Null);
    }
    let bad = |what: &str| Error::Load(format!("cannot parse '{field}' as {what}"));
    Ok(match data_type {
        DataType::Boolean => match t.to_ascii_uppercase().as_str() {
            "TRUE" | "T" | "1" | "Y" | "YES" => Value::Boolean(true),
            "FALSE" | "F" | "0" | "N" | "NO" => Value::Boolean(false),
            _ => return Err(bad("BOOLEAN")),
        },
        DataType::SmallInt => Value::SmallInt(t.parse().map_err(|_| bad("SMALLINT"))?),
        DataType::Integer => Value::Int(t.parse().map_err(|_| bad("INTEGER"))?),
        DataType::BigInt => Value::BigInt(t.parse().map_err(|_| bad("BIGINT"))?),
        DataType::Double => Value::Double(t.parse().map_err(|_| bad("DOUBLE"))?),
        DataType::Decimal(_, s) => {
            let d = idaa_common::Decimal::parse(t).map_err(|_| bad("DECIMAL"))?;
            Value::Decimal(d.rescale(s)?)
        }
        DataType::Varchar(_) | DataType::Char(_) => Value::Varchar(field.to_string()),
        DataType::Date => Value::Date(
            idaa_common::value::parse_date(t).map_err(|_| bad("DATE"))?,
        ),
        DataType::Timestamp => Value::Timestamp(
            idaa_common::value::parse_timestamp(t).map_err(|_| bad("TIMESTAMP"))?,
        ),
    })
}

/// Parse one record against `schema` (arity + per-field typing +
/// constraint validation).
pub fn parse_record(record: &Record, schema: &Schema) -> Result<Row> {
    if record.len() != schema.len() {
        return Err(Error::Load(format!(
            "record has {} fields but target table has {} columns",
            record.len(),
            schema.len()
        )));
    }
    let row: Row = record
        .iter()
        .zip(schema.columns())
        .map(|(f, c)| parse_field(f, c.data_type))
        .collect::<Result<_>>()?;
    schema.check_row(&row).map_err(|e| Error::Load(e.to_string()))
}

/// Run the pipeline: parse all records from `source` against `schema` with
/// `config.parallelism` workers, handing each parsed batch to `write`.
///
/// `write` is called from the coordinating thread only (targets need no
/// internal ordering guarantees beyond that).
pub fn run_pipeline(
    mut source: Box<dyn RecordSource>,
    schema: &Schema,
    config: &LoadConfig,
    mut write: impl FnMut(Vec<Row>) -> Result<()>,
) -> Result<LoadReport> {
    let workers = config.parallelism.max(1);
    let (raw_tx, raw_rx) = bounded::<Vec<Record>>(workers * 2);
    let (parsed_tx, parsed_rx) = bounded::<Result<(Vec<Row>, usize)>>(workers * 2);

    let reject_limit = match config.rejects {
        RejectPolicy::FailFast => None,
        RejectPolicy::SkipUpTo(n) => Some(n),
    };

    let mut report = LoadReport::default();
    std::thread::scope(|scope| -> Result<()> {
        // Parser workers.
        for _ in 0..workers {
            let raw_rx = raw_rx.clone();
            let parsed_tx = parsed_tx.clone();
            scope.spawn(move || {
                for batch in raw_rx.iter() {
                    let mut rows = Vec::with_capacity(batch.len());
                    let mut rejected = 0;
                    let mut failure: Option<Error> = None;
                    for rec in &batch {
                        match parse_record(rec, schema) {
                            Ok(row) => rows.push(row),
                            Err(e) => {
                                if reject_limit.is_none() {
                                    failure = Some(e);
                                    break;
                                }
                                rejected += 1;
                            }
                        }
                    }
                    let msg = match failure {
                        Some(e) => Err(e),
                        None => Ok((rows, rejected)),
                    };
                    if parsed_tx.send(msg).is_err() {
                        return;
                    }
                }
            });
        }
        drop(parsed_tx);

        // Reader: feed raw batches, draining parsed output opportunistically
        // to keep the pipeline moving.
        let feed_result: Result<()> = (|| {
            while let Some(batch) = source.next_batch(config.batch_size)? {
                raw_tx
                    .send(batch)
                    .map_err(|_| Error::internal("load pipeline workers terminated early"))?;
                while let Ok(msg) = parsed_rx.try_recv() {
                    handle_parsed(msg?, &mut report, reject_limit, &mut write)?;
                }
            }
            Ok(())
        })();
        drop(raw_tx);
        // Drain the remaining parsed batches (after a feed error, drain
        // without writing so the workers can terminate).
        for msg in parsed_rx.iter() {
            if feed_result.is_ok() {
                handle_parsed(msg?, &mut report, reject_limit, &mut write)?;
            }
        }
        feed_result
    })?;
    Ok(report)
}

fn handle_parsed(
    (rows, rejected): (Vec<Row>, usize),
    report: &mut LoadReport,
    reject_limit: Option<usize>,
    write: &mut impl FnMut(Vec<Row>) -> Result<()>,
) -> Result<()> {
    report.rows_rejected += rejected;
    if let Some(limit) = reject_limit {
        if report.rows_rejected > limit {
            return Err(Error::Load(format!(
                "reject limit exceeded: {} records rejected (limit {limit})",
                report.rows_rejected
            )));
        }
    }
    if !rows.is_empty() {
        report.rows_loaded += rows.len();
        report.batches += 1;
        write(rows)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use idaa_common::ColumnDef;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("ID", DataType::Integer),
            ColumnDef::new("NAME", DataType::Varchar(10)),
            ColumnDef::new("SCORE", DataType::Double),
        ])
        .unwrap()
    }

    #[test]
    fn field_parsing_by_type() {
        assert_eq!(parse_field("42", DataType::Integer).unwrap(), Value::Int(42));
        assert_eq!(parse_field(" 4.5 ", DataType::Double).unwrap(), Value::Double(4.5));
        assert_eq!(
            parse_field("12.345", DataType::Decimal(10, 2)).unwrap().render(),
            "12.34"
        );
        assert_eq!(parse_field("yes", DataType::Boolean).unwrap(), Value::Boolean(true));
        assert_eq!(parse_field("", DataType::Integer).unwrap(), Value::Null);
        assert_eq!(parse_field("NULL", DataType::Double).unwrap(), Value::Null);
        assert_eq!(
            parse_field("2016-03-15", DataType::Date).unwrap(),
            Value::Date(idaa_common::value::parse_date("2016-03-15").unwrap())
        );
        assert!(parse_field("abc", DataType::Integer).is_err());
        assert!(parse_field("2016-13-40", DataType::Date).is_err());
    }

    #[test]
    fn record_parsing_checks_arity_and_constraints() {
        let s = schema();
        let row = parse_record(&vec!["1".into(), "bob".into(), "2.5".into()], &s).unwrap();
        assert_eq!(row[0], Value::Int(1));
        assert!(parse_record(&vec!["1".into()], &s).is_err());
        // NOT NULL violation surfaces as a Load error.
        let r = parse_record(&vec!["".into(), "x".into(), "1.0".into()], &s);
        assert!(matches!(r, Err(Error::Load(_))));
    }

    fn records(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| vec![i.to_string(), format!("n{i}"), format!("{}.5", i)])
            .collect()
    }

    #[test]
    fn pipeline_loads_everything() {
        for workers in [1, 4] {
            let cfg = LoadConfig {
                parallelism: workers,
                batch_size: 16,
                rejects: RejectPolicy::SkipUpTo(0),
            };
            let mut collected = Vec::new();
            let report = run_pipeline(
                Box::new(VecSource::new(records(100))),
                &schema(),
                &cfg,
                |rows| {
                    collected.extend(rows);
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(report.rows_loaded, 100);
            assert_eq!(report.rows_rejected, 0);
            assert_eq!(collected.len(), 100);
        }
    }

    #[test]
    fn pipeline_rejects_up_to_limit() {
        let mut recs = records(10);
        recs[3][0] = "bad".into();
        recs[7][0] = "worse".into();
        let cfg =
            LoadConfig { parallelism: 2, batch_size: 4, rejects: RejectPolicy::SkipUpTo(5) };
        let mut n = 0;
        let report = run_pipeline(Box::new(VecSource::new(recs)), &schema(), &cfg, |rows| {
            n += rows.len();
            Ok(())
        })
        .unwrap();
        assert_eq!(report.rows_loaded, 8);
        assert_eq!(report.rows_rejected, 2);
        assert_eq!(n, 8);
    }

    #[test]
    fn pipeline_fail_fast() {
        let mut recs = records(10);
        recs[5][0] = "bad".into();
        let cfg = LoadConfig { parallelism: 1, batch_size: 4, rejects: RejectPolicy::FailFast };
        let r = run_pipeline(Box::new(VecSource::new(recs)), &schema(), &cfg, |_| Ok(()));
        assert!(matches!(r, Err(Error::Load(_))));
    }

    #[test]
    fn pipeline_reject_limit_exceeded() {
        let mut recs = records(10);
        for r in recs.iter_mut().take(4) {
            r[0] = "bad".into();
        }
        let cfg =
            LoadConfig { parallelism: 1, batch_size: 2, rejects: RejectPolicy::SkipUpTo(2) };
        let r = run_pipeline(Box::new(VecSource::new(recs)), &schema(), &cfg, |_| Ok(()));
        assert!(matches!(r, Err(Error::Load(_))));
    }

    #[test]
    fn writer_error_propagates() {
        let cfg = LoadConfig::default();
        let r = run_pipeline(Box::new(VecSource::new(records(10))), &schema(), &cfg, |_| {
            Err(Error::internal("disk full"))
        });
        assert!(r.is_err());
    }
}
