//! The IDAA Loader facade: load a record source into a DB2 table or
//! *directly* into an accelerator(-only) table — the paper's Fig. 1 dual
//! ingestion paths.
//!
//! * **DB2 path**: rows are inserted through the host engine under normal
//!   transactions; if the table is accelerated, incremental replication
//!   ships the rows to the accelerator *again* (double movement — exactly
//!   what direct load avoids).
//! * **Direct path**: rows cross the link once, straight into the
//!   accelerator table (AOT or replicated table being initially filled).
//!
//! Experiment E5 compares the two paths.

use crate::pipeline::{run_pipeline, LoadConfig, LoadReport};
use crate::source::RecordSource;
use idaa_common::{wire, Error, ObjectName, Result, Row};
use idaa_core::Idaa;
use idaa_host::TableKind;
use idaa_netsim::Direction;

/// Which path the loader takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadTarget {
    /// Through DB2 (only valid for regular tables).
    Db2,
    /// Directly into the accelerator (valid for AOTs and for regular
    /// tables that were added to the accelerator).
    AcceleratorDirect,
    /// Pick automatically: AOTs load directly, regular tables through DB2.
    Auto,
}

/// The loader.
pub struct Loader {
    pub config: LoadConfig,
    /// Rows per commit on the DB2 path.
    pub commit_every: usize,
    /// Authorization id performing the load.
    pub user: String,
}

impl Loader {
    /// Loader for `user` with default pipeline settings.
    pub fn new(user: &str) -> Loader {
        Loader { config: LoadConfig::default(), commit_every: 10_000, user: user.to_string() }
    }

    /// Load `source` into `table` via `target` path.
    pub fn load(
        &self,
        idaa: &Idaa,
        source: Box<dyn RecordSource>,
        table: &ObjectName,
        target: LoadTarget,
    ) -> Result<LoadReport> {
        let meta = idaa.host().table_meta(table)?;
        let resolved = meta.name.clone();
        let target = match (target, meta.kind) {
            (LoadTarget::Auto, TableKind::AcceleratorOnly) => LoadTarget::AcceleratorDirect,
            (LoadTarget::Auto, TableKind::Regular) => LoadTarget::Db2,
            (t, _) => t,
        };
        // Governance: loading is an INSERT, authorized on DB2 regardless of
        // the physical path.
        idaa.host()
            .privileges
            .read()
            .check(&self.user, &resolved, idaa_sql::Privilege::Insert)?;
        match target {
            LoadTarget::Db2 => {
                if meta.kind == TableKind::AcceleratorOnly {
                    return Err(Error::InvalidAcceleratorUse(format!(
                        "{resolved} is accelerator-only; use the direct load path"
                    )));
                }
                self.load_via_db2(idaa, source, &resolved, &meta.schema)
            }
            LoadTarget::AcceleratorDirect => {
                if !idaa.accel().has_table(&resolved) {
                    return Err(Error::UndefinedObject(format!(
                        "{resolved} is not defined on the accelerator"
                    )));
                }
                self.load_direct(idaa, source, &resolved, &meta.schema)
            }
            LoadTarget::Auto => unreachable!("resolved above"),
        }
    }

    fn load_via_db2(
        &self,
        idaa: &Idaa,
        source: Box<dyn RecordSource>,
        table: &ObjectName,
        schema: &idaa_common::Schema,
    ) -> Result<LoadReport> {
        let host = idaa.host();
        let mut txn = host.begin();
        let mut since_commit = 0usize;
        let report = run_pipeline(source, schema, &self.config, |rows| {
            since_commit += rows.len();
            host.insert_rows(&self.user, txn, table, rows)?;
            if since_commit >= self.commit_every {
                host.commit(txn);
                txn = host.begin();
                since_commit = 0;
            }
            Ok(())
        });
        match report {
            Ok(r) => {
                host.commit(txn);
                // Committed rows flow to the accelerator via replication
                // when the table is accelerated.
                idaa.replicate_now()?;
                Ok(r)
            }
            Err(e) => {
                host.rollback(txn)?;
                Err(e)
            }
        }
    }

    fn load_direct(
        &self,
        idaa: &Idaa,
        source: Box<dyn RecordSource>,
        table: &ObjectName,
        schema: &idaa_common::Schema,
    ) -> Result<LoadReport> {
        let accel = idaa.accel();
        // One accelerator transaction for the whole load: an aborted load
        // leaves nothing visible.
        let txn = next_direct_txn();
        accel.begin(txn);
        let result = run_pipeline(source, schema, &self.config, |rows: Vec<Row>| {
            // Each pipeline batch crosses the link as encoded wire frames;
            // the accelerator ingests the decoded rows, so the codec sits on
            // the real data path rather than being a byte estimate.
            let delivered = idaa.ship_rows(Direction::ToAccel, schema, &rows)?;
            accel.insert_rows(txn, table, delivered)?;
            Ok(())
        });
        match result {
            Ok(r) => {
                accel.prepare(txn)?;
                accel.commit(txn);
                idaa.ship(Direction::ToHost, wire::ACK_FRAME)?;
                Ok(r)
            }
            Err(e) => {
                accel.abort(txn);
                Err(e)
            }
        }
    }
}

static NEXT_DIRECT_TXN: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1 << 60);

fn next_direct_txn() -> u64 {
    NEXT_DIRECT_TXN.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{CsvSource, EventSource, VecSource};
    use idaa_common::Value;
    use idaa_core::Session;

    fn system() -> (Idaa, Session) {
        let idaa = Idaa::default();
        let s = idaa.session(idaa_host::SYSADM);
        (idaa, s)
    }

    #[test]
    fn csv_into_db2_table() {
        let (idaa, mut s) = system();
        idaa.execute(&mut s, "CREATE TABLE CUST (ID INT NOT NULL, NAME VARCHAR(20), SCORE DOUBLE)")
            .unwrap();
        let loader = Loader::new(idaa_host::SYSADM);
        let csv = "1,ann,0.5\n2,bob,0.7\n3,carol,\n";
        let report = loader
            .load(
                &idaa,
                Box::new(CsvSource::new(csv)),
                &ObjectName::bare("CUST"),
                LoadTarget::Auto,
            )
            .unwrap();
        assert_eq!(report.rows_loaded, 3);
        let r = idaa.query(&mut s, "SELECT COUNT(*) FROM cust").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(3));
        let r = idaa.query(&mut s, "SELECT score FROM cust WHERE id = 3").unwrap();
        assert!(r.scalar().unwrap().is_null());
    }

    #[test]
    fn direct_load_into_aot_skips_db2() {
        let (idaa, mut s) = system();
        idaa.execute(
            &mut s,
            "CREATE TABLE EVENTS (EVENT_ID INT, USER_ID INT, TOPIC VARCHAR(10), \
             SENTIMENT DOUBLE, POSTED_AT TIMESTAMP) IN ACCELERATOR",
        )
        .unwrap();
        let loader = Loader::new(idaa_host::SYSADM);
        let before = idaa.link().metrics();
        let report = loader
            .load(
                &idaa,
                Box::new(EventSource::new(500, 42)),
                &ObjectName::bare("EVENTS"),
                LoadTarget::Auto,
            )
            .unwrap();
        assert_eq!(report.rows_loaded, 500);
        let moved = idaa.link().metrics().since(&before);
        assert!(moved.bytes_to_accel > 0);
        let r = idaa.query(&mut s, "SELECT COUNT(*) FROM events").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(500));
        assert_eq!(idaa.host().scan_count(&ObjectName::bare("EVENTS")), 0);
    }

    #[test]
    fn db2_path_rejected_for_aot() {
        let (idaa, mut s) = system();
        idaa.execute(&mut s, "CREATE TABLE A (X INT) IN ACCELERATOR").unwrap();
        let loader = Loader::new(idaa_host::SYSADM);
        let r = loader.load(
            &idaa,
            Box::new(VecSource::new(vec![vec!["1".into()]])),
            &ObjectName::bare("A"),
            LoadTarget::Db2,
        );
        assert!(matches!(r, Err(Error::InvalidAcceleratorUse(_))));
    }

    #[test]
    fn direct_path_requires_accelerator_table() {
        let (idaa, mut s) = system();
        idaa.execute(&mut s, "CREATE TABLE R (X INT)").unwrap();
        let loader = Loader::new(idaa_host::SYSADM);
        let r = loader.load(
            &idaa,
            Box::new(VecSource::new(vec![vec!["1".into()]])),
            &ObjectName::bare("R"),
            LoadTarget::AcceleratorDirect,
        );
        assert!(matches!(r, Err(Error::UndefinedObject(_))));
    }

    #[test]
    fn load_requires_insert_privilege() {
        let (idaa, mut s) = system();
        idaa.execute(&mut s, "CREATE TABLE P (X INT)").unwrap();
        let loader = Loader::new("BOB");
        let r = loader.load(
            &idaa,
            Box::new(VecSource::new(vec![vec!["1".into()]])),
            &ObjectName::bare("P"),
            LoadTarget::Auto,
        );
        assert!(matches!(r, Err(Error::Privilege(_))));
        idaa.execute(&mut s, "GRANT INSERT ON P TO BOB").unwrap();
        loader
            .load(
                &idaa,
                Box::new(VecSource::new(vec![vec!["1".into()]])),
                &ObjectName::bare("P"),
                LoadTarget::Auto,
            )
            .unwrap();
    }

    #[test]
    fn failed_direct_load_leaves_nothing_visible() {
        let (idaa, mut s) = system();
        idaa.execute(&mut s, "CREATE TABLE B (X INT) IN ACCELERATOR").unwrap();
        let mut loader = Loader::new(idaa_host::SYSADM);
        loader.config.rejects = crate::pipeline::RejectPolicy::FailFast;
        loader.config.batch_size = 1;
        let r = loader.load(
            &idaa,
            Box::new(VecSource::new(vec![
                vec!["1".into()],
                vec!["oops".into()],
                vec!["3".into()],
            ])),
            &ObjectName::bare("B"),
            LoadTarget::Auto,
        );
        assert!(r.is_err());
        let rows = idaa.query(&mut s, "SELECT COUNT(*) FROM b").unwrap();
        assert_eq!(rows.scalar().unwrap(), &Value::BigInt(0));
    }

    #[test]
    fn db2_load_replicates_to_accelerated_table() {
        let (idaa, mut s) = system();
        idaa.execute(&mut s, "CREATE TABLE T (X INT)").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('T')").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('T')").unwrap();
        let loader = Loader::new(idaa_host::SYSADM);
        loader
            .load(
                &idaa,
                Box::new(VecSource::new((0..50).map(|i| vec![i.to_string()]).collect())),
                &ObjectName::bare("T"),
                LoadTarget::Db2,
            )
            .unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        let out = idaa.execute(&mut s, "SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(out.route, idaa_core::Route::Accelerator);
        assert_eq!(out.rows().unwrap().scalar().unwrap(), &Value::BigInt(50));
    }

    #[test]
    fn commit_every_batches_transactions() {
        let (idaa, mut s) = system();
        idaa.execute(&mut s, "CREATE TABLE CE (X INT)").unwrap();
        let mut loader = Loader::new(idaa_host::SYSADM);
        loader.commit_every = 10;
        loader.config.batch_size = 5;
        loader
            .load(
                &idaa,
                Box::new(VecSource::new((0..37).map(|i| vec![i.to_string()]).collect())),
                &ObjectName::bare("CE"),
                LoadTarget::Db2,
            )
            .unwrap();
        let r = idaa.query(&mut s, "SELECT COUNT(*) FROM ce").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(37));
    }
}
