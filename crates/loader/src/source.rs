//! Record sources for the IDAA Loader.
//!
//! The paper's loader ingests "data from a variety of sources, even from
//! applications not running on System z" — e.g. social-media feeds — into
//! DB2 tables or directly into accelerator-only tables. A source produces
//! *untyped text records* (CSV-shaped); the load pipeline parses them into
//! typed rows against the target schema.

use idaa_common::{Error, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One raw record: text fields, not yet typed.
pub type Record = Vec<String>;

/// A pull-based record source.
pub trait RecordSource: Send {
    /// Next batch of at most `max` records; `None` when exhausted.
    fn next_batch(&mut self, max: usize) -> Result<Option<Vec<Record>>>;
}

/// CSV text source (comma separator, minimal quoting with `"`).
pub struct CsvSource {
    lines: std::vec::IntoIter<String>,
    /// Field separator.
    pub separator: char,
}

impl CsvSource {
    /// Source over CSV text (no header handling — strip headers upstream
    /// or use [`CsvSource::with_header`]).
    pub fn new(text: &str) -> CsvSource {
        CsvSource {
            lines: text
                .lines()
                .filter(|l| !l.trim().is_empty())
                .map(str::to_string)
                .collect::<Vec<_>>()
                .into_iter(),
            separator: ',',
        }
    }

    /// Source over CSV text whose first line is a header (skipped).
    pub fn with_header(text: &str) -> CsvSource {
        let mut s = Self::new(text);
        s.lines.next();
        s
    }

    fn parse_line(&self, line: &str) -> Result<Record> {
        let mut fields = Vec::new();
        let mut cur = String::new();
        let mut in_quotes = false;
        let mut chars = line.chars().peekable();
        while let Some(c) = chars.next() {
            if in_quotes {
                if c == '"' {
                    if chars.peek() == Some(&'"') {
                        cur.push('"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                } else {
                    cur.push(c);
                }
            } else if c == '"' {
                in_quotes = true;
            } else if c == self.separator {
                fields.push(std::mem::take(&mut cur));
            } else {
                cur.push(c);
            }
        }
        if in_quotes {
            return Err(Error::Load(format!("unterminated quote in record '{line}'")));
        }
        fields.push(cur);
        Ok(fields)
    }
}

impl RecordSource for CsvSource {
    fn next_batch(&mut self, max: usize) -> Result<Option<Vec<Record>>> {
        let mut batch = Vec::with_capacity(max);
        let lines: Vec<String> = self.lines.by_ref().take(max).collect();
        for line in lines {
            batch.push(self.parse_line(&line)?);
        }
        if batch.is_empty() {
            Ok(None)
        } else {
            Ok(Some(batch))
        }
    }
}

/// Synthetic social-media event stream — the paper's motivating external
/// source. Deterministic for a given seed.
///
/// Record layout: `(event_id, user_id, topic, sentiment, posted_at)` —
/// matching `(INTEGER, INTEGER, VARCHAR, DOUBLE, TIMESTAMP)`.
pub struct EventSource {
    rng: StdRng,
    remaining: usize,
    next_id: i64,
}

/// Topics emitted by [`EventSource`].
pub const TOPICS: &[&str] = &["PRICING", "OUTAGE", "SUPPORT", "FEATURE", "CHURN"];

impl EventSource {
    /// `count` events from `seed`.
    pub fn new(count: usize, seed: u64) -> EventSource {
        EventSource { rng: StdRng::seed_from_u64(seed), remaining: count, next_id: 1 }
    }
}

impl RecordSource for EventSource {
    fn next_batch(&mut self, max: usize) -> Result<Option<Vec<Record>>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        let n = max.min(self.remaining);
        self.remaining -= n;
        let mut batch = Vec::with_capacity(n);
        for _ in 0..n {
            let id = self.next_id;
            self.next_id += 1;
            let user: i64 = self.rng.gen_range(1..=100_000);
            let topic = TOPICS[self.rng.gen_range(0..TOPICS.len())];
            let sentiment: f64 = self.rng.gen_range(-1.0..1.0);
            let day = self.rng.gen_range(0..365);
            let secs = self.rng.gen_range(0..86_400);
            // 16436 = days from 1970-01-01 to 2015-01-01.
            let posted_at = format!(
                "{} {:02}:{:02}:{:02}",
                idaa_common::value::render_date(16436 + day),
                secs / 3600,
                (secs / 60) % 60,
                secs % 60
            );
            batch.push(vec![
                id.to_string(),
                user.to_string(),
                topic.to_string(),
                format!("{sentiment:.4}"),
                posted_at,
            ]);
        }
        Ok(Some(batch))
    }
}

/// In-memory source over pre-built records (tests, adapters).
pub struct VecSource {
    records: std::vec::IntoIter<Record>,
}

impl VecSource {
    pub fn new(records: Vec<Record>) -> VecSource {
        VecSource { records: records.into_iter() }
    }
}

impl RecordSource for VecSource {
    fn next_batch(&mut self, max: usize) -> Result<Option<Vec<Record>>> {
        let batch: Vec<Record> = self.records.by_ref().take(max).collect();
        if batch.is_empty() {
            Ok(None)
        } else {
            Ok(Some(batch))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_basic() {
        let mut s = CsvSource::new("1,alice,10.5\n2,bob,20.0\n");
        let b = s.next_batch(10).unwrap().unwrap();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0], vec!["1", "alice", "10.5"]);
        assert!(s.next_batch(10).unwrap().is_none());
    }

    #[test]
    fn csv_quoting() {
        let mut s = CsvSource::new("1,\"hello, world\",\"say \"\"hi\"\"\"\n");
        let b = s.next_batch(1).unwrap().unwrap();
        assert_eq!(b[0][1], "hello, world");
        assert_eq!(b[0][2], "say \"hi\"");
    }

    #[test]
    fn csv_unterminated_quote_errors() {
        let mut s = CsvSource::new("1,\"oops\n");
        assert!(s.next_batch(1).is_err());
    }

    #[test]
    fn csv_header_skipped_and_batching() {
        let text = "id,name\n1,a\n2,b\n3,c\n";
        let mut s = CsvSource::with_header(text);
        let b1 = s.next_batch(2).unwrap().unwrap();
        assert_eq!(b1.len(), 2);
        let b2 = s.next_batch(2).unwrap().unwrap();
        assert_eq!(b2.len(), 1);
        assert!(s.next_batch(2).unwrap().is_none());
    }

    #[test]
    fn events_deterministic_and_bounded() {
        let collect = |seed| {
            let mut s = EventSource::new(25, seed);
            let mut all = Vec::new();
            while let Some(b) = s.next_batch(10).unwrap() {
                all.extend(b);
            }
            all
        };
        let a = collect(7);
        let b = collect(7);
        let c = collect(8);
        assert_eq!(a.len(), 25);
        assert_eq!(a, b, "same seed, same events");
        assert_ne!(a, c);
        // Shape: 5 fields, parsable timestamp.
        assert_eq!(a[0].len(), 5);
        idaa_common::value::parse_timestamp(&a[0][4]).unwrap();
        assert!(TOPICS.contains(&a[0][2].as_str()));
    }

    #[test]
    fn vec_source_roundtrip() {
        let mut s = VecSource::new(vec![vec!["x".into()], vec!["y".into()]]);
        assert_eq!(s.next_batch(1).unwrap().unwrap().len(), 1);
        assert_eq!(s.next_batch(5).unwrap().unwrap().len(), 1);
        assert!(s.next_batch(1).unwrap().is_none());
    }
}
