//! # idaa-loader
//!
//! The IDAA Loader: parallel bulk ingestion from external sources (CSV
//! files, synthetic social-media event feeds, arbitrary record adapters)
//! into regular DB2 tables *or* directly into accelerator(-only) tables —
//! the paper's second contribution, which "opens up a wide range of new
//! use cases" by letting off-mainframe applications feed the accelerator
//! without a DB2 round trip.

pub mod loader;
pub mod pipeline;
pub mod source;

pub use loader::{LoadTarget, Loader};
pub use pipeline::{parse_field, parse_record, LoadConfig, LoadReport, RejectPolicy};
pub use source::{CsvSource, EventSource, Record, RecordSource, VecSource, TOPICS};
