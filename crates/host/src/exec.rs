//! Row-at-a-time (Volcano-style, materialized per operator) execution of
//! logical plans for the host engine.
//!
//! The executor is deliberately a *row* engine: every operator touches full
//! rows, expressions are interpreted per row, and scans walk every slot of
//! every page. That cost model is the baseline the accelerator's columnar
//! engine is compared against throughout the experiments.

use idaa_common::{ColumnDef, ObjectName, Result, Row, Rows, Schema, Value};
use idaa_sql::ast::{BinaryOp, Expr, JoinKind};
use idaa_sql::eval::{bind, eval, eval_predicate, AggState, BoundExpr, FlatResolver};
use idaa_sql::plan::{Plan, PlanCol, PlanProfile};
use std::collections::HashMap;

/// Supplies base-table rows to the executor. The engine implements this on
/// top of heap storage, locks and indexes; tests can implement it directly.
pub trait RowSource {
    /// All live rows of `table`.
    fn scan_table(&self, table: &ObjectName) -> Result<Vec<Row>>;

    /// Rows whose `column` equals `value`, when an index makes that cheap.
    /// `Ok(None)` means "no usable index — fall back to a scan".
    fn index_lookup(
        &self,
        table: &ObjectName,
        column: &str,
        value: &Value,
    ) -> Result<Option<Vec<Row>>>;

    /// Rows whose `column` lies in the *inclusive* `[low, high]` range (open
    /// ends when `None`), when an index can serve it. The caller re-applies
    /// the full predicate, so returning a superset (e.g. for strict bounds)
    /// is correct. `Ok(None)` means "no usable index".
    fn index_range(
        &self,
        _table: &ObjectName,
        _column: &str,
        _low: Option<&Value>,
        _high: Option<&Value>,
    ) -> Result<Option<Vec<Row>>> {
        Ok(None)
    }
}

/// Execute `plan` against `src`, producing a materialized result.
pub fn execute_plan(plan: &Plan, src: &dyn RowSource) -> Result<Rows> {
    let rows = run(plan, src, None)?;
    Ok(Rows::new(schema_of(plan), rows))
}

/// Like [`execute_plan`], recording each node's output cardinality into
/// `profile` (for `EXPLAIN ANALYZE` / tracing).
pub fn execute_plan_profiled(
    plan: &Plan,
    src: &dyn RowSource,
    profile: &PlanProfile,
) -> Result<Rows> {
    let rows = run(plan, src, Some(profile))?;
    Ok(Rows::new(schema_of(plan), rows))
}

fn schema_of(plan: &Plan) -> Schema {
    Schema::new_unchecked(
        plan.cols()
            .into_iter()
            .map(|c| ColumnDef::new(c.name, c.data_type))
            .collect(),
    )
}

fn resolver_of(cols: &[PlanCol]) -> FlatResolver {
    FlatResolver::new(cols.iter().map(|c| (c.qualifier.clone(), c.name.clone())).collect())
}

/// Dispatch one node and, when profiling, record its output cardinality on
/// the way out.
fn run(plan: &Plan, src: &dyn RowSource, prof: Option<&PlanProfile>) -> Result<Vec<Row>> {
    let rows = run_inner(plan, src, prof)?;
    if let Some(prof) = prof {
        prof.record(plan, rows.len() as u64);
    }
    Ok(rows)
}

fn run_inner(plan: &Plan, src: &dyn RowSource, prof: Option<&PlanProfile>) -> Result<Vec<Row>> {
    match plan {
        Plan::Scan { table, cols, .. } => {
            if cols.is_empty() && table.name == "SYSDUMMY1" {
                // FROM-less SELECT evaluates over one empty row.
                return Ok(vec![vec![]]);
            }
            src.scan_table(table)
        }
        Plan::Filter { input, predicate } => run_filter(input, predicate, src, prof),
        Plan::Project { input, exprs, .. } => {
            let in_cols = input.cols();
            let resolver = resolver_of(&in_cols);
            let bound: Vec<BoundExpr> = exprs
                .iter()
                .map(|(e, _)| bind(e, &resolver))
                .collect::<Result<_>>()?;
            let rows = run(input, src, prof)?;
            rows.into_iter()
                .map(|row| bound.iter().map(|b| eval(b, &row)).collect())
                .collect()
        }
        Plan::Join { left, right, kind, on } => run_join(left, right, *kind, on, src, prof),
        Plan::Aggregate { input, group_exprs, aggs, .. } => {
            run_aggregate(input, group_exprs, aggs, src, prof)
        }
        Plan::Sort { input, keys } => {
            let mut rows = run(input, src, prof)?;
            rows.sort_by(|a, b| {
                for (i, desc) in keys {
                    let o = a[*i].cmp_total(&b[*i]);
                    let o = if *desc { o.reverse() } else { o };
                    if o != std::cmp::Ordering::Equal {
                        return o;
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(rows)
        }
        Plan::KeepCols { input, n } => {
            let mut rows = run(input, src, prof)?;
            for row in &mut rows {
                row.truncate(*n);
            }
            Ok(rows)
        }
        Plan::Distinct { input } => {
            let rows = run(input, src, prof)?;
            let mut seen: HashMap<Vec<Value>, ()> = HashMap::with_capacity(rows.len());
            let mut out = Vec::new();
            for row in rows {
                if seen.insert(row.clone(), ()).is_none() {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::Limit { input, n } => {
            let mut rows = run(input, src, prof)?;
            rows.truncate(*n as usize);
            Ok(rows)
        }
        Plan::Union { left, right, all } => {
            let mut rows = run(left, src, prof)?;
            rows.extend(run(right, src, prof)?);
            if !*all {
                let mut seen: HashMap<Vec<Value>, ()> = HashMap::with_capacity(rows.len());
                rows.retain(|r| seen.insert(r.clone(), ()).is_none());
            }
            Ok(rows)
        }
    }
}

/// Split a predicate into its AND-ed conjuncts.
pub fn conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Binary { left, op: BinaryOp::And, right } => {
            let mut out = conjuncts(left);
            out.extend(conjuncts(right));
            out
        }
        other => vec![other],
    }
}

/// A range bound extracted from a conjunct: `column` bounded below/above.
struct RangeBound<'a> {
    column: &'a str,
    low: Option<&'a Value>,
    high: Option<&'a Value>,
}

/// If `conj` bounds a single column (`col < lit`, `lit <= col`,
/// `col BETWEEN a AND b`), return the inclusive-superset bound.
fn range_literal<'a>(conj: &'a Expr, cols: &[PlanCol]) -> Option<RangeBound<'a>> {
    let col_of = |e: &'a Expr| -> Option<&'a str> {
        let Expr::Column { qualifier, name } = e else { return None };
        cols.iter()
            .any(|c| {
                c.name == *name
                    && qualifier
                        .as_ref()
                        .map(|q| c.qualifier.as_deref() == Some(q.as_str()))
                        .unwrap_or(true)
            })
            .then_some(name.as_str())
    };
    let lit_of = |e: &'a Expr| -> Option<&'a Value> {
        match e {
            Expr::Literal(v) if !v.is_null() => Some(v),
            _ => None,
        }
    };
    match conj {
        Expr::Between { expr, low, high, negated: false } => {
            let column = col_of(expr)?;
            Some(RangeBound { column, low: lit_of(low), high: lit_of(high) })
        }
        Expr::Binary { left, op, right } => {
            use BinaryOp::*;
            // col OP lit
            if let (Some(column), Some(v)) = (col_of(left), lit_of(right)) {
                return match op {
                    Lt | LtEq => Some(RangeBound { column, low: None, high: Some(v) }),
                    Gt | GtEq => Some(RangeBound { column, low: Some(v), high: None }),
                    _ => None,
                };
            }
            // lit OP col (flip)
            if let (Some(v), Some(column)) = (lit_of(left), col_of(right)) {
                return match op {
                    Lt | LtEq => Some(RangeBound { column, low: Some(v), high: None }),
                    Gt | GtEq => Some(RangeBound { column, low: None, high: Some(v) }),
                    _ => None,
                };
            }
            None
        }
        _ => None,
    }
}

/// If `conj` is `col = literal` (either side) over `cols`, return the
/// column name and value — the index-eligible shape.
fn eq_literal<'a>(conj: &'a Expr, cols: &[PlanCol]) -> Option<(&'a str, &'a Value)> {
    let Expr::Binary { left, op: BinaryOp::Eq, right } = conj else {
        return None;
    };
    let as_col = |e: &'a Expr| -> Option<&'a str> {
        let Expr::Column { qualifier, name } = e else { return None };
        cols.iter()
            .any(|c| {
                c.name == *name
                    && qualifier
                        .as_ref()
                        .map(|q| c.qualifier.as_deref() == Some(q.as_str()))
                        .unwrap_or(true)
            })
            .then_some(name.as_str())
    };
    let as_lit = |e: &'a Expr| -> Option<&'a Value> {
        match e {
            Expr::Literal(v) if !v.is_null() => Some(v),
            _ => None,
        }
    };
    match (as_col(left), as_lit(right)) {
        (Some(c), Some(v)) => Some((c, v)),
        _ => match (as_lit(left), as_col(right)) {
            (Some(v), Some(c)) => Some((c, v)),
            _ => None,
        },
    }
}

fn run_filter(
    input: &Plan,
    predicate: &Expr,
    src: &dyn RowSource,
    prof: Option<&PlanProfile>,
) -> Result<Vec<Row>> {
    let cols = input.cols();
    let resolver = resolver_of(&cols);
    let bound = bind(predicate, &resolver)?;
    // Index access path: Filter directly over a Scan with an equality
    // conjunct the source can serve from an index.
    if let Plan::Scan { table, cols: scan_cols, .. } = input {
        let residual_filter = |rows: Vec<Row>| -> Result<Vec<Row>> {
            rows.into_iter()
                .filter_map(|row| match eval_predicate(&bound, &row) {
                    Ok(true) => Some(Ok(row)),
                    Ok(false) => None,
                    Err(e) => Some(Err(e)),
                })
                .collect()
        };
        // Equality lookups first (most selective)…
        for conj in conjuncts(predicate) {
            if let Some((col, val)) = eq_literal(conj, scan_cols) {
                if let Some(rows) = src.index_lookup(table, col, val)? {
                    // Residual: the full predicate still applies (cheap on
                    // the few index hits).
                    return residual_filter(rows);
                }
            }
        }
        // …then range access: merge every bound on the same column.
        let mut merged: Vec<RangeBound> = Vec::new();
        for conj in conjuncts(predicate) {
            if let Some(rb) = range_literal(conj, scan_cols) {
                match merged.iter_mut().find(|m| m.column == rb.column) {
                    Some(m) => {
                        if rb.low.is_some() {
                            m.low = rb.low;
                        }
                        if rb.high.is_some() {
                            m.high = rb.high;
                        }
                    }
                    None => merged.push(rb),
                }
            }
        }
        for rb in &merged {
            if let Some(rows) = src.index_range(table, rb.column, rb.low, rb.high)? {
                return residual_filter(rows);
            }
        }
    }
    let rows = run(input, src, prof)?;
    rows.into_iter()
        .filter_map(|row| match eval_predicate(&bound, &row) {
            Ok(true) => Some(Ok(row)),
            Ok(false) => None,
            Err(e) => Some(Err(e)),
        })
        .collect()
}

fn run_join(
    left: &Plan,
    right: &Plan,
    kind: JoinKind,
    on: &Expr,
    src: &dyn RowSource,
    prof: Option<&PlanProfile>,
) -> Result<Vec<Row>> {
    let lcols = left.cols();
    let rcols = right.cols();
    let lres = resolver_of(&lcols);
    let rres = resolver_of(&rcols);
    let combined = lres.concat(&rres);
    let bound_on = bind(on, &combined)?;

    let lrows = run(left, src, prof)?;
    let rrows = run(right, src, prof)?;

    // Extract equi-key pairs: conjuncts of the form <left-only expr> =
    // <right-only expr>.
    let all_conjuncts = conjuncts(on);
    let total_conjuncts = all_conjuncts.len();
    let mut lkeys: Vec<BoundExpr> = Vec::new();
    let mut rkeys: Vec<BoundExpr> = Vec::new();
    for conj in all_conjuncts {
        if let Expr::Binary { left: a, op: BinaryOp::Eq, right: b } = conj {
            if let (Ok(la), Ok(rb)) = (bind(a, &lres), bind(b, &rres)) {
                lkeys.push(la);
                rkeys.push(rb);
                continue;
            }
            if let (Ok(lb), Ok(ra)) = (bind(b, &lres), bind(a, &rres)) {
                lkeys.push(lb);
                rkeys.push(ra);
            }
        }
    }
    // When every ON conjunct became an equi-key pair, hash-key equality
    // already decides the whole predicate — skip the per-candidate re-check
    // (the accelerator applies the same rule, keeping answers aligned).
    let on_covered = lkeys.len() == total_conjuncts;

    let rwidth = rcols.len();
    let mut out = Vec::new();
    if !lkeys.is_empty() {
        // Hash join: build on the right side.
        let mut table: HashMap<Vec<Value>, Vec<&Row>> = HashMap::with_capacity(rrows.len());
        for rrow in &rrows {
            let key: Vec<Value> = rkeys.iter().map(|k| eval(k, rrow)).collect::<Result<_>>()?;
            // SQL join keys never match on NULL.
            if key.iter().any(Value::is_null) {
                continue;
            }
            table.entry(key).or_default().push(rrow);
        }
        for lrow in &lrows {
            let key: Result<Vec<Value>> = lkeys.iter().map(|k| eval(k, lrow)).collect();
            let key = key?;
            let mut matched = false;
            if !key.iter().any(Value::is_null) {
                if let Some(candidates) = table.get(&key) {
                    for rrow in candidates {
                        let mut joined = lrow.clone();
                        joined.extend(rrow.iter().cloned());
                        if on_covered || eval_predicate(&bound_on, &joined)? {
                            matched = true;
                            out.push(joined);
                        }
                    }
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut joined = lrow.clone();
                joined.extend(std::iter::repeat_n(Value::Null, rwidth));
                out.push(joined);
            }
        }
    } else {
        // Nested-loop join for non-equi conditions.
        for lrow in &lrows {
            let mut matched = false;
            for rrow in &rrows {
                let mut joined = lrow.clone();
                joined.extend(rrow.iter().cloned());
                if eval_predicate(&bound_on, &joined)? {
                    matched = true;
                    out.push(joined);
                }
            }
            if !matched && kind == JoinKind::Left {
                let mut joined = lrow.clone();
                joined.extend(std::iter::repeat_n(Value::Null, rwidth));
                out.push(joined);
            }
        }
    }
    Ok(out)
}

fn run_aggregate(
    input: &Plan,
    group_exprs: &[Expr],
    aggs: &[idaa_sql::plan::AggCall],
    src: &dyn RowSource,
    prof: Option<&PlanProfile>,
) -> Result<Vec<Row>> {
    let cols = input.cols();
    let resolver = resolver_of(&cols);
    let bound_keys: Vec<BoundExpr> = group_exprs
        .iter()
        .map(|e| bind(e, &resolver))
        .collect::<Result<_>>()?;
    let bound_args: Vec<Option<BoundExpr>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| bind(e, &resolver)).transpose())
        .collect::<Result<_>>()?;

    let rows = run(input, src, prof)?;
    // Insertion-ordered grouping for deterministic output.
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut groups: Vec<(Vec<Value>, Vec<AggState>)> = Vec::new();
    for row in &rows {
        let key: Vec<Value> = bound_keys.iter().map(|k| eval(k, row)).collect::<Result<_>>()?;
        let gi = match index.get(&key) {
            Some(&i) => i,
            None => {
                let states = aggs
                    .iter()
                    .map(|a| AggState::new(a.kind, a.distinct))
                    .collect::<Vec<_>>();
                groups.push((key.clone(), states));
                index.insert(key, groups.len() - 1);
                groups.len() - 1
            }
        };
        for (state, arg) in groups[gi].1.iter_mut().zip(&bound_args) {
            let v = match arg {
                Some(b) => eval(b, row)?,
                None => Value::Null, // COUNT(*) counts the row regardless
            };
            state.update(&v)?;
        }
    }
    // Global aggregation over an empty input still yields one group.
    if groups.is_empty() && group_exprs.is_empty() {
        let states: Vec<AggState> =
            aggs.iter().map(|a| AggState::new(a.kind, a.distinct)).collect();
        groups.push((vec![], states));
    }
    groups
        .into_iter()
        .map(|(mut key, states)| {
            for s in states {
                key.push(s.finish()?);
            }
            Ok(key)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use idaa_common::{DataType, Error};
    use idaa_sql::parse_statement;
    use idaa_sql::plan::{plan_query, SchemaProvider};
    use idaa_sql::Statement;

    struct Mem {
        tables: HashMap<String, (Schema, Vec<Row>)>,
    }

    impl Mem {
        fn demo() -> Mem {
            let mut tables = HashMap::new();
            tables.insert(
                "EMP".to_string(),
                (
                    Schema::new(vec![
                        ColumnDef::new("ID", DataType::Integer),
                        ColumnDef::new("DEPT", DataType::Varchar(8)),
                        ColumnDef::new("PAY", DataType::Integer),
                    ])
                    .unwrap(),
                    vec![
                        vec![Value::Int(1), Value::Varchar("ENG".into()), Value::Int(100)],
                        vec![Value::Int(2), Value::Varchar("ENG".into()), Value::Int(200)],
                        vec![Value::Int(3), Value::Varchar("OPS".into()), Value::Int(150)],
                        vec![Value::Int(4), Value::Varchar("OPS".into()), Value::Null],
                    ],
                ),
            );
            tables.insert(
                "DEPT".to_string(),
                (
                    Schema::new(vec![
                        ColumnDef::new("NAME", DataType::Varchar(8)),
                        ColumnDef::new("SITE", DataType::Varchar(8)),
                    ])
                    .unwrap(),
                    vec![
                        vec![Value::Varchar("ENG".into()), Value::Varchar("BB".into())],
                        vec![Value::Varchar("FIN".into()), Value::Varchar("NY".into())],
                    ],
                ),
            );
            Mem { tables }
        }
    }

    impl SchemaProvider for Mem {
        fn table_schema(&self, name: &ObjectName) -> Result<Schema> {
            self.tables
                .get(&name.name)
                .map(|(s, _)| s.clone())
                .ok_or_else(|| Error::UndefinedObject(name.to_string()))
        }
    }

    impl RowSource for Mem {
        fn scan_table(&self, table: &ObjectName) -> Result<Vec<Row>> {
            self.tables
                .get(&table.name)
                .map(|(_, r)| r.clone())
                .ok_or_else(|| Error::UndefinedObject(table.to_string()))
        }

        fn index_lookup(
            &self,
            _table: &ObjectName,
            _column: &str,
            _value: &Value,
        ) -> Result<Option<Vec<Row>>> {
            Ok(None)
        }
    }

    fn q(sql: &str) -> Rows {
        let mem = Mem::demo();
        let Statement::Query(query) = parse_statement(sql).unwrap() else { panic!() };
        let plan = plan_query(&query, &mem).unwrap();
        execute_plan(&plan, &mem).unwrap()
    }

    #[test]
    fn scan_project_filter() {
        let r = q("SELECT id FROM emp WHERE pay > 120");
        assert_eq!(r.len(), 2);
        let ids: Vec<i64> = r.rows.iter().map(|x| x[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn null_pay_filtered_out() {
        let r = q("SELECT id FROM emp WHERE pay < 1000");
        assert_eq!(r.len(), 3, "NULL pay must not satisfy the predicate");
    }

    #[test]
    fn computed_projection() {
        let r = q("SELECT id * 10 AS x FROM emp WHERE id = 1");
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(10));
        assert_eq!(r.schema.columns()[0].name, "X");
    }

    #[test]
    fn order_and_limit() {
        let r = q("SELECT id FROM emp ORDER BY pay DESC LIMIT 2");
        // NULL sorts high... DESC reverses: NULL first.
        assert_eq!(r.rows[0][0], Value::Int(4));
        assert_eq!(r.rows[1][0], Value::Int(2));
    }

    #[test]
    fn group_by_aggregates() {
        let r = q("SELECT dept, COUNT(*), SUM(pay), AVG(pay) FROM emp GROUP BY dept ORDER BY dept");
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0], Value::Varchar("ENG".into()));
        assert_eq!(r.rows[0][1], Value::BigInt(2));
        assert_eq!(r.rows[0][2], Value::BigInt(300));
        assert_eq!(r.rows[0][3], Value::Double(150.0));
        // OPS: one NULL pay -> SUM=150, COUNT(*)=2
        assert_eq!(r.rows[1][1], Value::BigInt(2));
        assert_eq!(r.rows[1][2], Value::BigInt(150));
    }

    #[test]
    fn global_aggregate_on_empty_filter() {
        let r = q("SELECT COUNT(*), SUM(pay) FROM emp WHERE id > 100");
        assert_eq!(r.rows[0][0], Value::BigInt(0));
        assert!(r.rows[0][1].is_null());
    }

    #[test]
    fn having_filters_groups() {
        let r = q("SELECT dept FROM emp GROUP BY dept HAVING SUM(pay) > 200");
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows[0][0], Value::Varchar("ENG".into()));
    }

    #[test]
    fn inner_join_hash_path() {
        let r = q("SELECT e.id, d.site FROM emp e INNER JOIN dept d ON e.dept = d.name ORDER BY e.id");
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][1], Value::Varchar("BB".into()));
    }

    #[test]
    fn left_join_emits_nulls() {
        let r = q("SELECT e.id, d.site FROM emp e LEFT JOIN dept d ON e.dept = d.name ORDER BY e.id");
        assert_eq!(r.len(), 4);
        assert!(r.rows[2][1].is_null(), "OPS has no dept row");
    }

    #[test]
    fn non_equi_join_nested_loop() {
        let r = q("SELECT e.id FROM emp e INNER JOIN dept d ON e.pay > 100 AND d.site = 'BB'");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn distinct_rows() {
        let r = q("SELECT DISTINCT dept FROM emp ORDER BY dept");
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn count_distinct() {
        let r = q("SELECT COUNT(DISTINCT dept) FROM emp");
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(2));
    }

    #[test]
    fn subquery_pipeline() {
        let r = q("SELECT x + 1 AS y FROM (SELECT pay AS x FROM emp WHERE dept = 'ENG') s ORDER BY y");
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0][0], Value::BigInt(101));
    }

    #[test]
    fn fromless_select() {
        let r = q("SELECT 1 + 1");
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(2));
    }

    #[test]
    fn case_in_projection() {
        let r = q("SELECT id, CASE WHEN pay IS NULL THEN 'unknown' ELSE 'known' END FROM emp ORDER BY id");
        assert_eq!(r.rows[3][1], Value::Varchar("unknown".into()));
    }
}
