//! Privilege catalog and authorization checks.
//!
//! The paper's governance requirement: *all* authorization decisions are
//! made by DB2, never by the accelerator. The federation layer and the
//! analytics framework both call into this module before delegating any
//! work — experiment E11 measures that path.

use idaa_common::{Error, ObjectName, Result};
use idaa_sql::Privilege;
use std::collections::{HashMap, HashSet};

/// Grants per (grantee, object).
#[derive(Debug, Default)]
pub struct PrivilegeCatalog {
    grants: HashMap<(String, ObjectName), HashSet<Privilege>>,
    /// Object owners hold every privilege implicitly.
    owners: HashMap<ObjectName, String>,
    /// SYSADM-like authorization ids.
    admins: HashSet<String>,
}

impl PrivilegeCatalog {
    /// Catalog with one administrator.
    pub fn with_admin(admin: &str) -> PrivilegeCatalog {
        let mut p = PrivilegeCatalog::default();
        p.admins.insert(admin.to_uppercase());
        p
    }

    /// Register an additional administrator.
    pub fn add_admin(&mut self, user: &str) {
        self.admins.insert(user.to_uppercase());
    }

    /// Record object ownership (creator gets full control).
    pub fn set_owner(&mut self, object: ObjectName, owner: &str) {
        self.owners.insert(object, owner.to_uppercase());
    }

    /// Forget an object (DROP TABLE).
    pub fn drop_object(&mut self, object: &ObjectName) {
        self.owners.remove(object);
        self.grants.retain(|(_, o), _| o != object);
    }

    /// `GRANT privileges ON object TO grantee` — only admins, the owner, or
    /// someone holding the privilege may grant (simplified WITH GRANT
    /// OPTION: any holder may re-grant).
    pub fn grant(
        &mut self,
        grantor: &str,
        grantee: &str,
        object: &ObjectName,
        privileges: &[Privilege],
    ) -> Result<()> {
        for p in privileges {
            if !self.is_admin(grantor)
                && self.owners.get(object).map(String::as_str) != Some(&grantor.to_uppercase())
                && !self.holds(grantor, object, *p)
            {
                return Err(Error::Privilege(format!(
                    "{grantor} cannot grant {p} on {object}"
                )));
            }
        }
        let entry = self
            .grants
            .entry((grantee.to_uppercase(), object.clone()))
            .or_default();
        entry.extend(privileges.iter().copied());
        Ok(())
    }

    /// `REVOKE privileges ON object FROM grantee`.
    pub fn revoke(
        &mut self,
        revoker: &str,
        grantee: &str,
        object: &ObjectName,
        privileges: &[Privilege],
    ) -> Result<()> {
        if !self.is_admin(revoker)
            && self.owners.get(object).map(String::as_str) != Some(&revoker.to_uppercase())
        {
            return Err(Error::Privilege(format!("{revoker} cannot revoke on {object}")));
        }
        if let Some(set) = self.grants.get_mut(&(grantee.to_uppercase(), object.clone())) {
            for p in privileges {
                if *p == Privilege::All {
                    set.clear();
                } else {
                    set.remove(p);
                }
            }
        }
        Ok(())
    }

    fn is_admin(&self, user: &str) -> bool {
        self.admins.contains(&user.to_uppercase())
    }

    fn holds(&self, user: &str, object: &ObjectName, privilege: Privilege) -> bool {
        self.grants
            .get(&(user.to_uppercase(), object.clone()))
            .map(|set| set.contains(&privilege) || set.contains(&Privilege::All))
            .unwrap_or(false)
    }

    /// Authorization check: admin, owner, or explicit grant.
    pub fn check(&self, user: &str, object: &ObjectName, privilege: Privilege) -> Result<()> {
        if self.is_admin(user)
            || self.owners.get(object).map(String::as_str) == Some(&user.to_uppercase())
            || self.holds(user, object, privilege)
        {
            Ok(())
        } else {
            Err(Error::Privilege(format!(
                "user {user} lacks {privilege} privilege on {object}"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(n: &str) -> ObjectName {
        ObjectName::bare(n)
    }

    #[test]
    fn admin_has_everything() {
        let p = PrivilegeCatalog::with_admin("SYSADM");
        p.check("SYSADM", &obj("T"), Privilege::Select).unwrap();
        p.check("sysadm", &obj("T"), Privilege::Delete).unwrap();
    }

    #[test]
    fn owner_has_everything_on_own_objects() {
        let mut p = PrivilegeCatalog::with_admin("SYSADM");
        p.set_owner(obj("T"), "ALICE");
        p.check("ALICE", &obj("T"), Privilege::Update).unwrap();
        assert!(p.check("ALICE", &obj("OTHER"), Privilege::Select).is_err());
    }

    #[test]
    fn grant_and_check() {
        let mut p = PrivilegeCatalog::with_admin("SYSADM");
        p.set_owner(obj("T"), "ALICE");
        assert!(p.check("BOB", &obj("T"), Privilege::Select).is_err());
        p.grant("ALICE", "BOB", &obj("T"), &[Privilege::Select]).unwrap();
        p.check("BOB", &obj("T"), Privilege::Select).unwrap();
        assert!(p.check("BOB", &obj("T"), Privilege::Insert).is_err());
    }

    #[test]
    fn all_privilege_covers_everything() {
        let mut p = PrivilegeCatalog::with_admin("SYSADM");
        p.grant("SYSADM", "BOB", &obj("T"), &[Privilege::All]).unwrap();
        p.check("BOB", &obj("T"), Privilege::Delete).unwrap();
        p.check("BOB", &obj("T"), Privilege::Execute).unwrap();
    }

    #[test]
    fn unauthorized_grant_rejected() {
        let mut p = PrivilegeCatalog::with_admin("SYSADM");
        p.set_owner(obj("T"), "ALICE");
        let r = p.grant("MALLORY", "MALLORY", &obj("T"), &[Privilege::Select]);
        assert!(matches!(r, Err(Error::Privilege(_))));
    }

    #[test]
    fn holder_may_regrant() {
        let mut p = PrivilegeCatalog::with_admin("SYSADM");
        p.set_owner(obj("T"), "ALICE");
        p.grant("ALICE", "BOB", &obj("T"), &[Privilege::Select]).unwrap();
        p.grant("BOB", "CAROL", &obj("T"), &[Privilege::Select]).unwrap();
        p.check("CAROL", &obj("T"), Privilege::Select).unwrap();
    }

    #[test]
    fn revoke_removes_access() {
        let mut p = PrivilegeCatalog::with_admin("SYSADM");
        p.set_owner(obj("T"), "ALICE");
        p.grant("ALICE", "BOB", &obj("T"), &[Privilege::Select, Privilege::Insert]).unwrap();
        p.revoke("ALICE", "BOB", &obj("T"), &[Privilege::Select]).unwrap();
        assert!(p.check("BOB", &obj("T"), Privilege::Select).is_err());
        p.check("BOB", &obj("T"), Privilege::Insert).unwrap();
        p.revoke("ALICE", "BOB", &obj("T"), &[Privilege::All]).unwrap();
        assert!(p.check("BOB", &obj("T"), Privilege::Insert).is_err());
        // Non-owner cannot revoke.
        assert!(p.revoke("BOB", "ALICE", &obj("T"), &[Privilege::All]).is_err());
    }

    #[test]
    fn drop_object_clears_grants() {
        let mut p = PrivilegeCatalog::with_admin("SYSADM");
        p.set_owner(obj("T"), "ALICE");
        p.grant("ALICE", "BOB", &obj("T"), &[Privilege::Select]).unwrap();
        p.drop_object(&obj("T"));
        assert!(p.check("ALICE", &obj("T"), Privilege::Select).is_err());
        assert!(p.check("BOB", &obj("T"), Privilege::Select).is_err());
    }
}
