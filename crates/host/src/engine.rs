//! The host engine facade: DB2-for-z/OS stand-in.
//!
//! Glues catalog, heap storage, indexes, the lock manager, transactions,
//! change capture and the row executor into one object with a
//! statement-level API. The federation layer (`idaa-core`) sits on top and
//! decides which statements ever reach this engine versus the accelerator.

use crate::catalog::{AccelStatus, Catalog, TableId, TableKind, TableMeta};
use crate::exec::{execute_plan, execute_plan_profiled, RowSource};
use crate::index::BTreeIndex;
use crate::lock::{LockManager, LockMode};
use crate::privilege::PrivilegeCatalog;
use crate::storage::{HeapTable, Rid};
use crate::txn::{ChangeOp, ChangeRecord, TxnId, TxnManager, UndoRecord};
use idaa_common::{Error, ObjectName, Result, Row, Rows, Schema, Value};
use idaa_sql::ast::{Expr, Query};
use idaa_sql::eval::{bind, eval, eval_predicate, FlatResolver};
use idaa_sql::plan::{plan_query, Plan, PlanProfile, SchemaProvider};
use idaa_sql::Privilege;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Storage attached to one regular table.
struct TableStore {
    heap: HeapTable,
    indexes: RwLock<Vec<Arc<BTreeIndex>>>,
}

/// Simple operation counters (exposed to the bench harness).
#[derive(Debug, Default)]
pub struct HostStats {
    pub rows_scanned: AtomicU64,
    pub rows_inserted: AtomicU64,
    pub rows_deleted: AtomicU64,
    pub rows_updated: AtomicU64,
    pub index_lookups: AtomicU64,
    pub index_range_scans: AtomicU64,
    pub statements: AtomicU64,
}

/// The DB2-style host engine.
pub struct HostEngine {
    catalog: RwLock<Catalog>,
    stores: RwLock<HashMap<TableId, Arc<TableStore>>>,
    pub txns: TxnManager,
    pub locks: LockManager,
    pub privileges: RwLock<PrivilegeCatalog>,
    pub stats: HostStats,
    default_schema: String,
}

/// The authorization id that administers the system.
pub const SYSADM: &str = "SYSADM";

impl Default for HostEngine {
    fn default() -> Self {
        Self::new("APP")
    }
}

impl HostEngine {
    /// Engine with the given default schema and a SYSADM administrator.
    pub fn new(default_schema: &str) -> HostEngine {
        HostEngine {
            catalog: RwLock::new(Catalog::default()),
            stores: RwLock::new(HashMap::new()),
            txns: TxnManager::default(),
            locks: LockManager::default(),
            privileges: RwLock::new(PrivilegeCatalog::with_admin(SYSADM)),
            stats: HostStats::default(),
            default_schema: default_schema.to_string(),
        }
    }

    /// Resolve a possibly-unqualified name in the default schema.
    pub fn resolve(&self, name: &ObjectName) -> ObjectName {
        name.resolve(&self.default_schema)
    }

    // -- transactions --------------------------------------------------------

    /// Begin a transaction.
    pub fn begin(&self) -> TxnId {
        self.txns.begin()
    }

    /// Commit: publish CDC records and release all locks.
    pub fn commit(&self, txn: TxnId) -> Vec<ChangeRecord> {
        let changes = self.txns.commit(txn);
        self.locks.release_all(txn);
        changes
    }

    /// Roll back: apply the undo log in reverse, then release locks.
    pub fn rollback(&self, txn: TxnId) -> Result<()> {
        let undo = self.txns.rollback(txn);
        for rec in undo {
            match rec {
                UndoRecord::Insert { table, rid, row } => {
                    let store = self.store(&table)?;
                    store.heap.delete(rid)?;
                    for idx in store.indexes.read().iter() {
                        idx.remove(&row, rid);
                    }
                }
                UndoRecord::Delete { table, rid, row } => {
                    let store = self.store(&table)?;
                    store.heap.restore(rid, row.clone())?;
                    for idx in store.indexes.read().iter() {
                        idx.insert(&row, rid);
                    }
                }
                UndoRecord::Update { table, rid, old, new } => {
                    let store = self.store(&table)?;
                    store.heap.update(rid, old.clone())?;
                    for idx in store.indexes.read().iter() {
                        idx.remove(&new, rid);
                        idx.insert(&old, rid);
                    }
                }
            }
        }
        self.locks.release_all(txn);
        Ok(())
    }

    /// End-of-statement processing under cursor stability: drop S locks.
    pub fn end_statement(&self, txn: TxnId) {
        self.locks.release_shared(txn);
    }

    // -- DDL ------------------------------------------------------------------

    /// `CREATE TABLE`. For `kind == AcceleratorOnly` only the catalog proxy
    /// is created — data placement is the federation layer's job.
    pub fn create_table(
        &self,
        user: &str,
        name: &ObjectName,
        schema: Schema,
        kind: TableKind,
        distribute_by: Vec<String>,
    ) -> Result<TableId> {
        let name = self.resolve(name);
        let id = self.catalog.write().create_table(
            name.clone(),
            schema.clone(),
            kind,
            distribute_by,
            user,
        )?;
        if kind == TableKind::Regular {
            self.stores.write().insert(
                id,
                Arc::new(TableStore { heap: HeapTable::new(&schema), indexes: RwLock::new(vec![]) }),
            );
        }
        self.privileges.write().set_owner(name, user);
        Ok(id)
    }

    /// `DROP TABLE` (requires ownership or admin).
    pub fn drop_table(&self, user: &str, name: &ObjectName) -> Result<TableMeta> {
        let name = self.resolve(name);
        // DROP requires control: model as needing every privilege.
        self.privileges.read().check(user, &name, Privilege::All)?;
        let meta = self.catalog.write().drop_table(&name)?;
        self.stores.write().remove(&meta.id);
        self.privileges.write().drop_object(&name);
        Ok(meta)
    }

    /// `CREATE INDEX` (backfills from existing rows).
    pub fn create_index(
        &self,
        user: &str,
        index_name: &ObjectName,
        table: &ObjectName,
        columns: Vec<String>,
    ) -> Result<()> {
        let table = self.resolve(table);
        self.privileges.read().check(user, &table, Privilege::All)?;
        self.catalog.write().create_index(index_name.clone(), &table, columns.clone())?;
        let meta = self.table_meta(&table)?;
        let ordinals: Vec<usize> = columns
            .iter()
            .map(|c| meta.schema.index_of(c))
            .collect::<Result<_>>()?;
        let idx = Arc::new(BTreeIndex::new(index_name.to_string(), ordinals));
        let store = self.store(&table)?;
        store.heap.for_each(|rid, row| idx.insert(row, rid));
        store.indexes.write().push(idx);
        Ok(())
    }

    // -- metadata access ------------------------------------------------------

    /// Catalog entry for `name`.
    pub fn table_meta(&self, name: &ObjectName) -> Result<TableMeta> {
        let name = self.resolve(name);
        self.catalog.read().table(&name).cloned()
    }

    /// Update the acceleration status of a regular table.
    pub fn set_accel_status(&self, name: &ObjectName, status: AccelStatus) -> Result<()> {
        let name = self.resolve(name);
        self.catalog.write().table_mut(&name)?.accel_status = status;
        Ok(())
    }

    /// Names of all tables in the catalog.
    pub fn table_names(&self) -> Vec<ObjectName> {
        self.catalog.read().all_tables().map(|t| t.name.clone()).collect()
    }

    fn store(&self, name: &ObjectName) -> Result<Arc<TableStore>> {
        let name = self.resolve(name);
        let meta = self.catalog.read().table(&name)?.clone();
        if meta.kind == TableKind::AcceleratorOnly {
            return Err(Error::InvalidAcceleratorUse(format!(
                "table {name} is accelerator-only; the host holds no data for it"
            )));
        }
        self.stores
            .read()
            .get(&meta.id)
            .cloned()
            .ok_or_else(|| Error::internal(format!("missing store for {name}")))
    }

    // -- DML -------------------------------------------------------------------

    /// Insert fully-materialized rows (after `check_row` coercion) into a
    /// regular table. Returns the number of rows inserted.
    pub fn insert_rows(
        &self,
        user: &str,
        txn: TxnId,
        table: &ObjectName,
        rows: Vec<Row>,
    ) -> Result<usize> {
        let table = self.resolve(table);
        self.privileges.read().check(user, &table, Privilege::Insert)?;
        let meta = self.table_meta(&table)?;
        self.locks.lock(txn, &table, LockMode::Exclusive)?;
        let store = self.store(&table)?;
        let mut n = 0;
        for raw in rows {
            let row = meta.schema.check_row(&raw)?;
            let rid = store.heap.insert(row.clone());
            for idx in store.indexes.read().iter() {
                idx.insert(&row, rid);
            }
            self.txns.record(
                txn,
                UndoRecord::Insert { table: table.clone(), rid, row: row.clone() },
                Some((table.clone(), ChangeOp::Insert(row))),
            );
            n += 1;
        }
        self.stats.rows_inserted.fetch_add(n as u64, Ordering::Relaxed);
        self.stats.statements.fetch_add(1, Ordering::Relaxed);
        Ok(n)
    }

    /// `DELETE FROM table [WHERE filter]`; returns rows deleted.
    pub fn delete_where(
        &self,
        user: &str,
        txn: TxnId,
        table: &ObjectName,
        filter: Option<&Expr>,
    ) -> Result<usize> {
        let table = self.resolve(table);
        self.privileges.read().check(user, &table, Privilege::Delete)?;
        let meta = self.table_meta(&table)?;
        self.locks.lock(txn, &table, LockMode::Exclusive)?;
        let store = self.store(&table)?;
        let victims = self.matching_rids(&store, &meta, filter)?;
        for (rid, row) in &victims {
            store.heap.delete(*rid)?;
            for idx in store.indexes.read().iter() {
                idx.remove(row, *rid);
            }
            self.txns.record(
                txn,
                UndoRecord::Delete { table: table.clone(), rid: *rid, row: row.clone() },
                Some((table.clone(), ChangeOp::Delete(row.clone()))),
            );
        }
        self.stats.rows_deleted.fetch_add(victims.len() as u64, Ordering::Relaxed);
        self.stats.statements.fetch_add(1, Ordering::Relaxed);
        Ok(victims.len())
    }

    /// `UPDATE table SET assignments [WHERE filter]`; returns rows updated.
    pub fn update_where(
        &self,
        user: &str,
        txn: TxnId,
        table: &ObjectName,
        assignments: &[(String, Expr)],
        filter: Option<&Expr>,
    ) -> Result<usize> {
        let table = self.resolve(table);
        self.privileges.read().check(user, &table, Privilege::Update)?;
        let meta = self.table_meta(&table)?;
        self.locks.lock(txn, &table, LockMode::Exclusive)?;
        let store = self.store(&table)?;
        let resolver = FlatResolver::from_schema(Some(&table.name), &meta.schema);
        let bound: Vec<(usize, idaa_sql::eval::BoundExpr)> = assignments
            .iter()
            .map(|(col, e)| Ok((meta.schema.index_of(col)?, bind(e, &resolver)?)))
            .collect::<Result<_>>()?;
        let victims = self.matching_rids(&store, &meta, filter)?;
        for (rid, old) in &victims {
            let mut new = old.clone();
            for (ordinal, expr) in &bound {
                new[*ordinal] = eval(expr, old)?;
            }
            let new = meta.schema.check_row(&new)?;
            store.heap.update(*rid, new.clone())?;
            for idx in store.indexes.read().iter() {
                idx.remove(old, *rid);
                idx.insert(&new, *rid);
            }
            self.txns.record(
                txn,
                UndoRecord::Update {
                    table: table.clone(),
                    rid: *rid,
                    old: old.clone(),
                    new: new.clone(),
                },
                Some((table.clone(), ChangeOp::Update { old: old.clone(), new })),
            );
        }
        self.stats.rows_updated.fetch_add(victims.len() as u64, Ordering::Relaxed);
        self.stats.statements.fetch_add(1, Ordering::Relaxed);
        Ok(victims.len())
    }

    fn matching_rids(
        &self,
        store: &TableStore,
        meta: &TableMeta,
        filter: Option<&Expr>,
    ) -> Result<Vec<(Rid, Row)>> {
        let all = store.heap.scan();
        self.stats.rows_scanned.fetch_add(all.len() as u64, Ordering::Relaxed);
        match filter {
            None => Ok(all),
            Some(f) => {
                let resolver = FlatResolver::from_schema(Some(&meta.name.name), &meta.schema);
                let bound = bind(f, &resolver)?;
                all.into_iter()
                    .filter_map(|(rid, row)| match eval_predicate(&bound, &row) {
                        Ok(true) => Some(Ok((rid, row))),
                        Ok(false) => None,
                        Err(e) => Some(Err(e)),
                    })
                    .collect()
            }
        }
    }

    // -- queries ---------------------------------------------------------------

    /// Execute a `SELECT` on the host: authorization, S locks (cursor
    /// stability — released at statement end), plan, run.
    pub fn query(&self, user: &str, txn: TxnId, query: &Query) -> Result<Rows> {
        let plan = plan_query(query, self)?;
        self.check_and_lock_for_query(user, txn, &plan)?;
        let result = execute_plan(&plan, &EngineSource { engine: self });
        self.end_statement(txn);
        self.stats.statements.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Like [`HostEngine::query`], also returning the executed plan plus a
    /// per-operator row-count profile (for `EXPLAIN ANALYZE` / tracing).
    /// The plan comes back boxed: the profile is keyed by node address, so
    /// the tree must not move while the profile is being read.
    pub fn query_profiled(
        &self,
        user: &str,
        txn: TxnId,
        query: &Query,
    ) -> Result<(Rows, Box<Plan>, PlanProfile)> {
        let plan = Box::new(plan_query(query, self)?);
        self.check_and_lock_for_query(user, txn, &plan)?;
        let profile = PlanProfile::default();
        let result = execute_plan_profiled(&plan, &EngineSource { engine: self }, &profile);
        self.end_statement(txn);
        self.stats.statements.fetch_add(1, Ordering::Relaxed);
        Ok((result?, plan, profile))
    }

    /// Shared privilege-check + S-lock preamble for `SELECT` execution.
    fn check_and_lock_for_query(&self, user: &str, txn: TxnId, plan: &Plan) -> Result<()> {
        let tables: Vec<ObjectName> =
            plan.tables().iter().map(|t| self.resolve(t)).collect();
        {
            let privs = self.privileges.read();
            for t in &tables {
                if t.name == "SYSDUMMY1" {
                    continue;
                }
                privs.check(user, t, Privilege::Select)?;
            }
        }
        for t in &tables {
            if t.name == "SYSDUMMY1" {
                continue;
            }
            self.locks.lock(txn, t, LockMode::Shared)?;
        }
        Ok(())
    }

    /// Live row count of a regular table (0 for AOT proxies) — the
    /// router's cost-heuristic input, analogous to catalog statistics.
    pub fn scan_count(&self, name: &ObjectName) -> usize {
        self.store(name).map(|s| s.heap.len()).unwrap_or(0)
    }

    /// Raw scan used by the federation layer (initial accelerator load).
    pub fn scan_all(&self, table: &ObjectName) -> Result<Vec<Row>> {
        let store = self.store(table)?;
        let rows: Vec<Row> = store.heap.scan().into_iter().map(|(_, r)| r).collect();
        self.stats.rows_scanned.fetch_add(rows.len() as u64, Ordering::Relaxed);
        Ok(rows)
    }
}

impl SchemaProvider for HostEngine {
    fn table_schema(&self, name: &ObjectName) -> Result<Schema> {
        if name.schema.is_none() && name.name == "SYSDUMMY1" {
            return Ok(Schema::default());
        }
        Ok(self.table_meta(name)?.schema)
    }
}

/// Adapter exposing engine storage to the executor.
struct EngineSource<'a> {
    engine: &'a HostEngine,
}

impl RowSource for EngineSource<'_> {
    fn scan_table(&self, table: &ObjectName) -> Result<Vec<Row>> {
        self.engine.scan_all(table)
    }

    fn index_lookup(
        &self,
        table: &ObjectName,
        column: &str,
        value: &Value,
    ) -> Result<Option<Vec<Row>>> {
        let store = self.engine.store(table)?;
        let meta = self.engine.table_meta(table)?;
        let ordinal = meta.schema.index_of(column)?;
        let indexes = store.indexes.read();
        let Some(idx) = indexes.iter().find(|i| i.key_columns.first() == Some(&ordinal)) else {
            return Ok(None);
        };
        // Single-column prefix match only: multi-column indexes still serve
        // equality on their leading column, with the residual re-checked by
        // the caller — but only if the lookup key is the full key.
        if idx.key_columns.len() != 1 {
            return Ok(None);
        }
        self.engine.stats.index_lookups.fetch_add(1, Ordering::Relaxed);
        let rows = idx
            .lookup(std::slice::from_ref(value))
            .into_iter()
            .filter_map(|rid| store.heap.get(rid))
            .collect();
        Ok(Some(rows))
    }

    fn index_range(
        &self,
        table: &ObjectName,
        column: &str,
        low: Option<&Value>,
        high: Option<&Value>,
    ) -> Result<Option<Vec<Row>>> {
        if low.is_none() && high.is_none() {
            return Ok(None);
        }
        let store = self.engine.store(table)?;
        let meta = self.engine.table_meta(table)?;
        let ordinal = meta.schema.index_of(column)?;
        let indexes = store.indexes.read();
        let Some(idx) = indexes
            .iter()
            .find(|i| i.key_columns.len() == 1 && i.key_columns[0] == ordinal)
        else {
            return Ok(None);
        };
        self.engine.stats.index_range_scans.fetch_add(1, Ordering::Relaxed);
        let rows = idx
            .range(low, high)
            .into_iter()
            .filter_map(|rid| store.heap.get(rid))
            .collect();
        Ok(Some(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idaa_common::{ColumnDef, DataType};
    use idaa_sql::{parse_statement, Statement};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("ID", DataType::Integer),
            ColumnDef::new("NAME", DataType::Varchar(16)),
            ColumnDef::new("PAY", DataType::Integer),
        ])
        .unwrap()
    }

    fn setup() -> HostEngine {
        let e = HostEngine::default();
        e.create_table(SYSADM, &ObjectName::bare("EMP"), schema(), TableKind::Regular, vec![])
            .unwrap();
        e
    }

    fn query(e: &HostEngine, user: &str, txn: TxnId, sql: &str) -> Result<Rows> {
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
        e.query(user, txn, &q)
    }

    fn row(id: i32, name: &str, pay: i32) -> Row {
        vec![Value::Int(id), Value::Varchar(name.into()), Value::Int(pay)]
    }

    #[test]
    fn insert_query_roundtrip() {
        let e = setup();
        let t = e.begin();
        e.insert_rows(SYSADM, t, &ObjectName::bare("EMP"), vec![row(1, "ann", 10)]).unwrap();
        e.commit(t);
        let t2 = e.begin();
        let r = query(&e, SYSADM, t2, "SELECT name FROM emp WHERE id = 1").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Varchar("ann".into()));
    }

    #[test]
    fn rollback_undoes_everything() {
        let e = setup();
        let t = e.begin();
        e.insert_rows(SYSADM, t, &ObjectName::bare("EMP"), vec![row(1, "a", 1), row(2, "b", 2)])
            .unwrap();
        e.commit(t);
        let t2 = e.begin();
        e.insert_rows(SYSADM, t2, &ObjectName::bare("EMP"), vec![row(3, "c", 3)]).unwrap();
        e.update_where(
            SYSADM,
            t2,
            &ObjectName::bare("EMP"),
            &[("PAY".into(), Expr::int(99))],
            Some(&Expr::col("ID").eq(Expr::int(1))),
        )
        .unwrap();
        e.delete_where(SYSADM, t2, &ObjectName::bare("EMP"), Some(&Expr::col("ID").eq(Expr::int(2))))
            .unwrap();
        e.rollback(t2).unwrap();
        let t3 = e.begin();
        let r = query(&e, SYSADM, t3, "SELECT id, pay FROM emp ORDER BY id").unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.rows[0], vec![Value::Int(1), Value::Int(1)]);
        assert_eq!(r.rows[1], vec![Value::Int(2), Value::Int(2)]);
    }

    #[test]
    fn commit_publishes_cdc() {
        let e = setup();
        let t = e.begin();
        e.insert_rows(SYSADM, t, &ObjectName::bare("EMP"), vec![row(1, "a", 1)]).unwrap();
        let changes = e.commit(t);
        assert_eq!(changes.len(), 1);
        assert!(matches!(changes[0].op, ChangeOp::Insert(_)));
        assert_eq!(e.txns.changes_since(0).len(), 1);
    }

    #[test]
    fn not_null_enforced() {
        let e = setup();
        let t = e.begin();
        let r = e.insert_rows(
            SYSADM,
            t,
            &ObjectName::bare("EMP"),
            vec![vec![Value::Null, Value::Null, Value::Null]],
        );
        assert!(matches!(r, Err(Error::Constraint(_))));
    }

    #[test]
    fn privileges_enforced_on_dml_and_query() {
        let e = setup();
        let t = e.begin();
        assert!(matches!(
            e.insert_rows("BOB", t, &ObjectName::bare("EMP"), vec![row(1, "x", 1)]),
            Err(Error::Privilege(_))
        ));
        assert!(matches!(
            query(&e, "BOB", t, "SELECT * FROM emp"),
            Err(Error::Privilege(_))
        ));
        e.privileges
            .write()
            .grant(SYSADM, "BOB", &ObjectName::qualified("APP", "EMP"), &[Privilege::Select])
            .unwrap();
        query(&e, "BOB", t, "SELECT * FROM emp").unwrap();
    }

    #[test]
    fn index_speeds_point_lookup_and_stays_consistent() {
        let e = setup();
        let t = e.begin();
        let rows: Vec<Row> = (0..500).map(|i| row(i, "n", i * 2)).collect();
        e.insert_rows(SYSADM, t, &ObjectName::bare("EMP"), rows).unwrap();
        e.commit(t);
        e.create_index(SYSADM, &ObjectName::bare("EMP_ID"), &ObjectName::bare("EMP"), vec!["ID".into()])
            .unwrap();
        let t2 = e.begin();
        let before = e.stats.index_lookups.load(Ordering::Relaxed);
        let r = query(&e, SYSADM, t2, "SELECT pay FROM emp WHERE id = 123").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::Int(246));
        assert_eq!(e.stats.index_lookups.load(Ordering::Relaxed), before + 1);
        // Update moves the row in the index.
        e.update_where(
            SYSADM,
            t2,
            &ObjectName::bare("EMP"),
            &[("ID".into(), Expr::int(9999))],
            Some(&Expr::col("ID").eq(Expr::int(123))),
        )
        .unwrap();
        let r = query(&e, SYSADM, t2, "SELECT pay FROM emp WHERE id = 9999").unwrap();
        assert_eq!(r.len(), 1);
        let r = query(&e, SYSADM, t2, "SELECT pay FROM emp WHERE id = 123").unwrap();
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn index_range_scan_serves_between_and_comparisons() {
        let e = setup();
        let t = e.begin();
        let rows: Vec<Row> = (0..1000).map(|i| row(i, "n", i)).collect();
        e.insert_rows(SYSADM, t, &ObjectName::bare("EMP"), rows).unwrap();
        e.commit(t);
        e.create_index(SYSADM, &ObjectName::bare("EMP_ID"), &ObjectName::bare("EMP"), vec!["ID".into()])
            .unwrap();
        let t2 = e.begin();
        let before = e.stats.index_range_scans.load(Ordering::Relaxed);
        let r = query(&e, SYSADM, t2, "SELECT COUNT(*) FROM emp WHERE id BETWEEN 100 AND 199").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(100));
        assert_eq!(e.stats.index_range_scans.load(Ordering::Relaxed), before + 1);
        // Strict bounds return the exact answer (superset + residual).
        let r = query(&e, SYSADM, t2, "SELECT COUNT(*) FROM emp WHERE id > 990 AND id < 995").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(4));
        assert_eq!(e.stats.index_range_scans.load(Ordering::Relaxed), before + 2);
        // Unindexed column still answers via scan.
        let r = query(&e, SYSADM, t2, "SELECT COUNT(*) FROM emp WHERE pay < 10").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(10));
        assert_eq!(e.stats.index_range_scans.load(Ordering::Relaxed), before + 2);
    }

    #[test]
    fn write_blocks_concurrent_reader_until_commit() {
        let e = Arc::new(HostEngine::new("APP"));
        e.create_table(SYSADM, &ObjectName::bare("EMP"), schema(), TableKind::Regular, vec![])
            .unwrap();
        let t1 = e.begin();
        e.insert_rows(SYSADM, t1, &ObjectName::bare("EMP"), vec![row(1, "a", 1)]).unwrap();
        let e2 = Arc::clone(&e);
        let reader = std::thread::spawn(move || {
            let t2 = e2.begin();
            let r = query(&e2, SYSADM, t2, "SELECT COUNT(*) FROM emp");
            e2.commit(t2);
            r
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        e.commit(t1);
        let r = reader.join().unwrap().unwrap();
        // Reader waited for the X lock; sees the committed row.
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(1));
    }

    #[test]
    fn aot_proxy_has_no_host_storage() {
        let e = setup();
        e.create_table(
            SYSADM,
            &ObjectName::bare("STAGE"),
            schema(),
            TableKind::AcceleratorOnly,
            vec![],
        )
        .unwrap();
        let t = e.begin();
        let r = e.insert_rows(SYSADM, t, &ObjectName::bare("STAGE"), vec![row(1, "x", 1)]);
        assert!(matches!(r, Err(Error::InvalidAcceleratorUse(_))));
        // But the schema is visible through the catalog proxy.
        assert_eq!(e.table_meta(&ObjectName::bare("STAGE")).unwrap().schema.len(), 3);
    }

    #[test]
    fn drop_table_requires_control() {
        let e = setup();
        assert!(matches!(
            e.drop_table("BOB", &ObjectName::bare("EMP")),
            Err(Error::Privilege(_))
        ));
        e.drop_table(SYSADM, &ObjectName::bare("EMP")).unwrap();
        assert!(e.table_meta(&ObjectName::bare("EMP")).is_err());
    }

    #[test]
    fn update_with_expression_assignment() {
        let e = setup();
        let t = e.begin();
        e.insert_rows(SYSADM, t, &ObjectName::bare("EMP"), vec![row(1, "a", 10), row(2, "b", 20)])
            .unwrap();
        let n = e
            .update_where(
                SYSADM,
                t,
                &ObjectName::bare("EMP"),
                &[(
                    "PAY".into(),
                    Expr::Binary {
                        left: Box::new(Expr::col("PAY")),
                        op: idaa_sql::ast::BinaryOp::Mul,
                        right: Box::new(Expr::int(2)),
                    },
                )],
                None,
            )
            .unwrap();
        assert_eq!(n, 2);
        let r = query(&e, SYSADM, t, "SELECT SUM(pay) FROM emp").unwrap();
        assert_eq!(r.scalar().unwrap(), &Value::BigInt(60));
    }
}
