//! Transactions: undo logging for rollback, and change capture (CDC) that
//! feeds the accelerator's incremental-update replication.

use crate::storage::Rid;
use idaa_common::{ObjectName, Row};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Transaction identifier.
pub type TxnId = u64;

/// Log sequence number of a committed change.
pub type Lsn = u64;

/// Undo record for one DML action, applied in reverse order on rollback.
#[derive(Debug, Clone)]
pub enum UndoRecord {
    /// Undo an insert: delete the row again.
    Insert { table: ObjectName, rid: Rid, row: Row },
    /// Undo a delete: restore the old row at its RID.
    Delete { table: ObjectName, rid: Rid, row: Row },
    /// Undo an update: put the old image back.
    Update { table: ObjectName, rid: Rid, old: Row, new: Row },
}

/// A committed, replicable change (the unit the CDC applier ships to the
/// accelerator).
#[derive(Debug, Clone, PartialEq)]
pub struct ChangeRecord {
    pub lsn: Lsn,
    pub table: ObjectName,
    pub op: ChangeOp,
}

/// The change operation, carrying full row images (DB2's log-based capture
/// ships full images to IDAA too).
#[derive(Debug, Clone, PartialEq)]
pub enum ChangeOp {
    Insert(Row),
    Delete(Row),
    Update { old: Row, new: Row },
}

/// State of one live transaction on the host.
#[derive(Debug, Default)]
pub struct TxnState {
    /// Undo log in execution order.
    pub undo: Vec<UndoRecord>,
    /// Pending (uncommitted) change records awaiting commit.
    pub pending_changes: Vec<(ObjectName, ChangeOp)>,
    /// Whether the paired accelerator transaction (if any) has been opened —
    /// managed by the federation layer.
    pub accel_enlisted: bool,
}

/// Transaction manager: id assignment, per-transaction state, and the
/// committed change log.
#[derive(Debug, Default)]
pub struct TxnManager {
    next_id: AtomicU64,
    next_lsn: AtomicU64,
    active: Mutex<HashMap<TxnId, TxnState>>,
    committed_log: Mutex<Vec<ChangeRecord>>,
}

impl TxnManager {
    /// Start a transaction.
    pub fn begin(&self) -> TxnId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.active.lock().insert(id, TxnState::default());
        id
    }

    /// True if `txn` is active.
    pub fn is_active(&self, txn: TxnId) -> bool {
        self.active.lock().contains_key(&txn)
    }

    /// Append an undo record and optionally a pending change for `txn`.
    pub fn record(&self, txn: TxnId, undo: UndoRecord, change: Option<(ObjectName, ChangeOp)>) {
        let mut active = self.active.lock();
        if let Some(state) = active.get_mut(&txn) {
            state.undo.push(undo);
            if let Some(c) = change {
                state.pending_changes.push(c);
            }
        }
    }

    /// Mark that the accelerator participates in this transaction.
    pub fn enlist_accelerator(&self, txn: TxnId) {
        if let Some(state) = self.active.lock().get_mut(&txn) {
            state.accel_enlisted = true;
        }
    }

    /// Whether the accelerator participates.
    pub fn accelerator_enlisted(&self, txn: TxnId) -> bool {
        self.active.lock().get(&txn).map(|s| s.accel_enlisted).unwrap_or(false)
    }

    /// Commit: moves pending changes into the committed log (assigning
    /// LSNs) and drops the undo log. Returns the LSN range assigned.
    pub fn commit(&self, txn: TxnId) -> Vec<ChangeRecord> {
        let state = match self.active.lock().remove(&txn) {
            Some(s) => s,
            None => return Vec::new(),
        };
        let mut log = self.committed_log.lock();
        let mut out = Vec::with_capacity(state.pending_changes.len());
        for (table, op) in state.pending_changes {
            let lsn = self.next_lsn.fetch_add(1, Ordering::Relaxed) + 1;
            let rec = ChangeRecord { lsn, table, op };
            log.push(rec.clone());
            out.push(rec);
        }
        out
    }

    /// Abort: remove the transaction and hand back its undo log (newest
    /// first) for the engine to apply. Pending changes are discarded.
    pub fn rollback(&self, txn: TxnId) -> Vec<UndoRecord> {
        match self.active.lock().remove(&txn) {
            Some(mut s) => {
                s.undo.reverse();
                s.undo
            }
            None => Vec::new(),
        }
    }

    /// Committed changes with `lsn > after`, in LSN order — the replication
    /// applier's read interface.
    pub fn changes_since(&self, after: Lsn) -> Vec<ChangeRecord> {
        self.committed_log
            .lock()
            .iter()
            .filter(|c| c.lsn > after)
            .cloned()
            .collect()
    }

    /// Highest LSN assigned so far.
    pub fn current_lsn(&self) -> Lsn {
        self.next_lsn.load(Ordering::Relaxed)
    }

    /// Drop committed log entries with `lsn <= up_to` (log truncation once
    /// the applier confirmed them).
    pub fn truncate_log(&self, up_to: Lsn) {
        self.committed_log.lock().retain(|c| c.lsn > up_to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idaa_common::Value;

    fn row(i: i32) -> Row {
        vec![Value::Int(i)]
    }

    fn t(n: &str) -> ObjectName {
        ObjectName::bare(n)
    }

    #[test]
    fn ids_are_unique_and_monotonic() {
        let tm = TxnManager::default();
        let a = tm.begin();
        let b = tm.begin();
        assert!(b > a);
        assert!(tm.is_active(a) && tm.is_active(b));
    }

    #[test]
    fn commit_publishes_changes_in_order() {
        let tm = TxnManager::default();
        let x = tm.begin();
        tm.record(
            x,
            UndoRecord::Insert { table: t("T"), rid: Rid::new(0, 0), row: row(1) },
            Some((t("T"), ChangeOp::Insert(row(1)))),
        );
        tm.record(
            x,
            UndoRecord::Insert { table: t("T"), rid: Rid::new(0, 1), row: row(2) },
            Some((t("T"), ChangeOp::Insert(row(2)))),
        );
        let committed = tm.commit(x);
        assert_eq!(committed.len(), 2);
        assert!(committed[0].lsn < committed[1].lsn);
        assert_eq!(tm.changes_since(0).len(), 2);
        assert_eq!(tm.changes_since(committed[0].lsn).len(), 1);
        assert!(!tm.is_active(x));
    }

    #[test]
    fn rollback_discards_changes_and_returns_undo_reversed() {
        let tm = TxnManager::default();
        let x = tm.begin();
        tm.record(
            x,
            UndoRecord::Insert { table: t("T"), rid: Rid::new(0, 0), row: row(1) },
            Some((t("T"), ChangeOp::Insert(row(1)))),
        );
        tm.record(
            x,
            UndoRecord::Delete { table: t("T"), rid: Rid::new(0, 1), row: row(2) },
            Some((t("T"), ChangeOp::Delete(row(2)))),
        );
        let undo = tm.rollback(x);
        assert_eq!(undo.len(), 2);
        assert!(matches!(undo[0], UndoRecord::Delete { .. }), "undo comes newest-first");
        assert!(tm.changes_since(0).is_empty(), "rolled-back changes never reach the log");
    }

    #[test]
    fn log_truncation() {
        let tm = TxnManager::default();
        let x = tm.begin();
        tm.record(
            x,
            UndoRecord::Insert { table: t("T"), rid: Rid::new(0, 0), row: row(1) },
            Some((t("T"), ChangeOp::Insert(row(1)))),
        );
        let committed = tm.commit(x);
        tm.truncate_log(committed[0].lsn);
        assert!(tm.changes_since(0).is_empty());
        assert_eq!(tm.current_lsn(), committed[0].lsn);
    }

    #[test]
    fn accelerator_enlistment_flag() {
        let tm = TxnManager::default();
        let x = tm.begin();
        assert!(!tm.accelerator_enlisted(x));
        tm.enlist_accelerator(x);
        assert!(tm.accelerator_enlisted(x));
        tm.commit(x);
        assert!(!tm.accelerator_enlisted(x));
    }

    #[test]
    fn interleaved_transactions_serialize_lsns() {
        let tm = TxnManager::default();
        let a = tm.begin();
        let b = tm.begin();
        tm.record(
            b,
            UndoRecord::Insert { table: t("T"), rid: Rid::new(0, 0), row: row(1) },
            Some((t("T"), ChangeOp::Insert(row(1)))),
        );
        tm.record(
            a,
            UndoRecord::Insert { table: t("T"), rid: Rid::new(0, 1), row: row(2) },
            Some((t("T"), ChangeOp::Insert(row(2)))),
        );
        let cb = tm.commit(b);
        let ca = tm.commit(a);
        assert!(cb[0].lsn < ca[0].lsn, "commit order decides replication order");
    }
}
