//! In-memory B-tree indexes for the host engine.
//!
//! Indexes give the host its OLTP edge: point `SELECT`s on indexed keys are
//! O(log n) here versus a full (even if parallel) scan on the accelerator —
//! experiment E2 measures exactly this asymmetry.

use crate::storage::Rid;
use idaa_common::{Row, Value};
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Composite index key ordered by SQL total order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexKey(pub Vec<Value>);

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for (a, b) in self.0.iter().zip(&other.0) {
            let o = a.cmp_total(b);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        self.0.len().cmp(&other.0.len())
    }
}

/// A secondary index over one or more columns of a heap table.
#[derive(Debug)]
pub struct BTreeIndex {
    /// Name (for the catalog).
    pub name: String,
    /// Column ordinals forming the key, in order.
    pub key_columns: Vec<usize>,
    entries: RwLock<BTreeMap<IndexKey, Vec<Rid>>>,
}

impl BTreeIndex {
    /// Empty index over `key_columns` of the owning table.
    pub fn new(name: impl Into<String>, key_columns: Vec<usize>) -> BTreeIndex {
        BTreeIndex { name: name.into(), key_columns, entries: RwLock::new(BTreeMap::new()) }
    }

    /// Extract this index's key from a full row.
    pub fn key_of(&self, row: &Row) -> IndexKey {
        IndexKey(self.key_columns.iter().map(|&i| row[i].clone()).collect())
    }

    /// Register a row.
    pub fn insert(&self, row: &Row, rid: Rid) {
        self.entries.write().entry(self.key_of(row)).or_default().push(rid);
    }

    /// Deregister a row.
    pub fn remove(&self, row: &Row, rid: Rid) {
        let key = self.key_of(row);
        let mut entries = self.entries.write();
        if let Some(rids) = entries.get_mut(&key) {
            rids.retain(|r| *r != rid);
            if rids.is_empty() {
                entries.remove(&key);
            }
        }
    }

    /// RIDs matching an exact key.
    pub fn lookup(&self, key: &[Value]) -> Vec<Rid> {
        self.entries
            .read()
            .get(&IndexKey(key.to_vec()))
            .cloned()
            .unwrap_or_default()
    }

    /// RIDs in an inclusive key range over the *first* key column (used for
    /// BETWEEN/`<`/`>` on single-column indexes).
    pub fn range(&self, low: Option<&Value>, high: Option<&Value>) -> Vec<Rid> {
        let entries = self.entries.read();
        entries
            .iter()
            .filter(|(k, _)| {
                let first = &k.0[0];
                let above = low
                    .map(|l| first.cmp_total(l) != std::cmp::Ordering::Less)
                    .unwrap_or(true);
                let below = high
                    .map(|h| first.cmp_total(h) != std::cmp::Ordering::Greater)
                    .unwrap_or(true);
                above && below
            })
            .flat_map(|(_, rids)| rids.iter().copied())
            .collect()
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.entries.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(a: i32, b: &str) -> Row {
        vec![Value::Int(a), Value::Varchar(b.into())]
    }

    #[test]
    fn insert_lookup_remove() {
        let idx = BTreeIndex::new("I1", vec![0]);
        let r1 = Rid::new(0, 0);
        let r2 = Rid::new(0, 1);
        idx.insert(&row(5, "a"), r1);
        idx.insert(&row(5, "b"), r2);
        idx.insert(&row(7, "c"), Rid::new(0, 2));
        assert_eq!(idx.lookup(&[Value::Int(5)]), vec![r1, r2]);
        idx.remove(&row(5, "a"), r1);
        assert_eq!(idx.lookup(&[Value::Int(5)]), vec![r2]);
        idx.remove(&row(5, "b"), r2);
        assert!(idx.lookup(&[Value::Int(5)]).is_empty());
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn composite_keys() {
        let idx = BTreeIndex::new("I2", vec![0, 1]);
        idx.insert(&row(1, "x"), Rid::new(0, 0));
        idx.insert(&row(1, "y"), Rid::new(0, 1));
        assert_eq!(idx.lookup(&[Value::Int(1), Value::Varchar("x".into())]).len(), 1);
        assert!(idx.lookup(&[Value::Int(1), Value::Varchar("z".into())]).is_empty());
    }

    #[test]
    fn lookup_across_numeric_widths() {
        // Keys are stored as the table's column type; probes may arrive as
        // BIGINT literals. cmp_total equality makes these match.
        let idx = BTreeIndex::new("I3", vec![0]);
        idx.insert(&row(5, "a"), Rid::new(0, 0));
        assert_eq!(idx.lookup(&[Value::BigInt(5)]).len(), 1);
    }

    #[test]
    fn range_scan() {
        let idx = BTreeIndex::new("I4", vec![0]);
        for i in 0..10 {
            idx.insert(&row(i, "r"), Rid::new(0, i as u16));
        }
        let rids = idx.range(Some(&Value::Int(3)), Some(&Value::Int(5)));
        assert_eq!(rids.len(), 3);
        let open = idx.range(Some(&Value::Int(8)), None);
        assert_eq!(open.len(), 2);
    }
}
