//! # idaa-host
//!
//! The DB2-for-z/OS stand-in: a row-store engine with slotted-page heaps,
//! B-tree indexes, a table-level lock manager implementing cursor-stability
//! isolation, undo-logged transactions with commit-time change capture
//! (CDC), a catalog that also records accelerator bookkeeping (nickname
//! proxies for accelerator-only tables, acceleration status), a privilege
//! catalog for the paper's governance requirement, and a Volcano-style row
//! executor.
//!
//! Everything the paper assumes about "DB2" is modeled here; everything
//! about "the accelerator" lives in `idaa-accel`; the federation between
//! them — the paper's actual contribution — is `idaa-core`.

pub mod catalog;
pub mod engine;
pub mod exec;
pub mod index;
pub mod lock;
pub mod privilege;
pub mod storage;
pub mod txn;

pub use catalog::{AccelStatus, TableId, TableKind, TableMeta};
pub use engine::{HostEngine, SYSADM};
pub use lock::{LockManager, LockMode};
pub use storage::Rid;
pub use txn::{ChangeOp, ChangeRecord, Lsn, TxnId, TxnManager};
