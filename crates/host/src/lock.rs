//! Table-level lock manager with shared/exclusive modes and timeouts.
//!
//! Models DB2's *cursor stability* (CS) isolation at table granularity:
//! readers take S locks for the duration of a statement and release them at
//! statement end; writers take X locks held to commit. Lock waits time out
//! (SQLCODE -913 analogue) instead of deadlocking forever.

use idaa_common::{Error, ObjectName, Result};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Lock modes (table granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    Shared,
    Exclusive,
}

/// Transaction identifier (assigned by the host's transaction manager).
pub type TxnId = u64;

#[derive(Debug, Default)]
struct LockState {
    /// Current holders and their strongest mode.
    holders: HashMap<TxnId, LockMode>,
}

impl LockState {
    fn compatible(&self, txn: TxnId, mode: LockMode) -> bool {
        match mode {
            LockMode::Shared => self
                .holders
                .iter()
                .all(|(t, m)| *t == txn || *m == LockMode::Shared),
            LockMode::Exclusive => self.holders.keys().all(|t| *t == txn),
        }
    }
}

/// The lock manager.
pub struct LockManager {
    tables: Mutex<HashMap<ObjectName, LockState>>,
    changed: Condvar,
    timeout: Duration,
}

impl Default for LockManager {
    fn default() -> Self {
        LockManager::new(Duration::from_millis(2000))
    }
}

impl LockManager {
    /// Lock manager with the given wait timeout.
    pub fn new(timeout: Duration) -> LockManager {
        LockManager { tables: Mutex::new(HashMap::new()), changed: Condvar::new(), timeout }
    }

    /// Acquire `mode` on `table` for `txn`, waiting up to the configured
    /// timeout. Re-acquisition and S→X upgrade (when sole holder) succeed
    /// immediately.
    pub fn lock(&self, txn: TxnId, table: &ObjectName, mode: LockMode) -> Result<()> {
        let deadline = Instant::now() + self.timeout;
        let mut tables = self.tables.lock();
        loop {
            let state = tables.entry(table.clone()).or_default();
            if state.compatible(txn, mode) {
                let entry = state.holders.entry(txn).or_insert(mode);
                if mode == LockMode::Exclusive {
                    *entry = LockMode::Exclusive;
                }
                return Ok(());
            }
            let waited = self.changed.wait_until(&mut tables, deadline);
            if waited.timed_out() {
                return Err(Error::LockTimeout(format!(
                    "timeout waiting for {mode:?} lock on {table} (txn {txn})"
                )));
            }
        }
    }

    /// Release every lock `txn` holds (commit/rollback).
    pub fn release_all(&self, txn: TxnId) {
        let mut tables = self.tables.lock();
        tables.retain(|_, state| {
            state.holders.remove(&txn);
            !state.holders.is_empty()
        });
        self.changed.notify_all();
    }

    /// Release only the *shared* locks `txn` holds — cursor stability at
    /// statement end. Exclusive locks persist to commit.
    pub fn release_shared(&self, txn: TxnId) {
        let mut tables = self.tables.lock();
        tables.retain(|_, state| {
            if state.holders.get(&txn) == Some(&LockMode::Shared) {
                state.holders.remove(&txn);
            }
            !state.holders.is_empty()
        });
        self.changed.notify_all();
    }

    /// Mode currently held by `txn` on `table`.
    pub fn held(&self, txn: TxnId, table: &ObjectName) -> Option<LockMode> {
        self.tables.lock().get(table).and_then(|s| s.holders.get(&txn)).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn t(name: &str) -> ObjectName {
        ObjectName::bare(name)
    }

    #[test]
    fn shared_locks_coexist() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.lock(1, &t("A"), LockMode::Shared).unwrap();
        lm.lock(2, &t("A"), LockMode::Shared).unwrap();
        assert_eq!(lm.held(1, &t("A")), Some(LockMode::Shared));
        assert_eq!(lm.held(2, &t("A")), Some(LockMode::Shared));
    }

    #[test]
    fn exclusive_blocks_and_times_out() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.lock(1, &t("A"), LockMode::Exclusive).unwrap();
        let err = lm.lock(2, &t("A"), LockMode::Shared).unwrap_err();
        assert!(matches!(err, Error::LockTimeout(_)));
    }

    #[test]
    fn reacquire_and_upgrade() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.lock(1, &t("A"), LockMode::Shared).unwrap();
        lm.lock(1, &t("A"), LockMode::Shared).unwrap();
        lm.lock(1, &t("A"), LockMode::Exclusive).unwrap();
        assert_eq!(lm.held(1, &t("A")), Some(LockMode::Exclusive));
    }

    #[test]
    fn upgrade_blocked_by_other_reader() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.lock(1, &t("A"), LockMode::Shared).unwrap();
        lm.lock(2, &t("A"), LockMode::Shared).unwrap();
        assert!(lm.lock(1, &t("A"), LockMode::Exclusive).is_err());
    }

    #[test]
    fn release_shared_keeps_exclusive() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.lock(1, &t("A"), LockMode::Shared).unwrap();
        lm.lock(1, &t("B"), LockMode::Exclusive).unwrap();
        lm.release_shared(1);
        assert_eq!(lm.held(1, &t("A")), None);
        assert_eq!(lm.held(1, &t("B")), Some(LockMode::Exclusive));
    }

    #[test]
    fn release_all_unblocks_waiter() {
        let lm = Arc::new(LockManager::new(Duration::from_millis(2000)));
        lm.lock(1, &t("A"), LockMode::Exclusive).unwrap();
        let lm2 = Arc::clone(&lm);
        let waiter = std::thread::spawn(move || lm2.lock(2, &t("A"), LockMode::Exclusive));
        std::thread::sleep(Duration::from_millis(30));
        lm.release_all(1);
        waiter.join().unwrap().unwrap();
        assert_eq!(lm.held(2, &t("A")), Some(LockMode::Exclusive));
    }

    #[test]
    fn locks_are_per_table() {
        let lm = LockManager::new(Duration::from_millis(50));
        lm.lock(1, &t("A"), LockMode::Exclusive).unwrap();
        lm.lock(2, &t("B"), LockMode::Exclusive).unwrap();
    }
}
