//! Slotted-page heap storage for the row-store host engine.
//!
//! The layout mirrors what matters about DB2's table spaces for the
//! experiments: rows live in fixed-size pages reached through a
//! (page, slot) RID, a full scan walks every page and inspects every slot,
//! and point access through a RID is O(1). The per-row indirection is what
//! makes host scans measurably slower than the accelerator's columnar
//! scans — the asymmetry the paper's offload decision relies on.

use idaa_common::{Error, Result, Row, Schema};
use parking_lot::RwLock;

/// Bytes per heap page (DB2 default 4K pages).
pub const PAGE_SIZE: usize = 4096;
/// Per-row bookkeeping overhead in a slotted page.
const SLOT_OVERHEAD: usize = 6;

/// Row identifier: page number and slot within the page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    pub page: u32,
    pub slot: u16,
}

impl Rid {
    pub fn new(page: u32, slot: u16) -> Rid {
        Rid { page, slot }
    }
}

/// One slotted page: a fixed number of row slots.
#[derive(Debug)]
struct Page {
    slots: Vec<Option<Row>>,
    live: usize,
}

impl Page {
    fn new(capacity: usize) -> Page {
        Page { slots: Vec::with_capacity(capacity), live: 0 }
    }
}

/// A heap table: pages of slotted rows behind a single table latch.
///
/// The latch protects physical consistency only; *transactional* isolation
/// is the lock manager's job.
#[derive(Debug)]
pub struct HeapTable {
    inner: RwLock<HeapInner>,
    slots_per_page: usize,
}

#[derive(Debug)]
struct HeapInner {
    pages: Vec<Page>,
    /// Pages with at least one free slot (kept sorted-ish, best effort).
    free_pages: Vec<u32>,
    live_rows: usize,
}

impl HeapTable {
    /// Create an empty heap sized for rows of `schema`.
    pub fn new(schema: &Schema) -> HeapTable {
        let row_width = schema.estimated_row_width().max(8) + SLOT_OVERHEAD;
        let slots_per_page = (PAGE_SIZE / row_width).clamp(1, u16::MAX as usize);
        HeapTable {
            inner: RwLock::new(HeapInner { pages: Vec::new(), free_pages: Vec::new(), live_rows: 0 }),
            slots_per_page,
        }
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.inner.read().live_rows
    }

    /// True when no live rows exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of allocated pages (drives the host's scan cost).
    pub fn page_count(&self) -> usize {
        self.inner.read().pages.len()
    }

    /// Insert a row, returning its RID.
    pub fn insert(&self, row: Row) -> Rid {
        let mut inner = self.inner.write();
        // Reuse a page with free space when available.
        while let Some(&page_no) = inner.free_pages.last() {
            let spp = self.slots_per_page;
            let page = &mut inner.pages[page_no as usize];
            if let Some(slot) = page.slots.iter().position(Option::is_none) {
                page.slots[slot] = Some(row);
                page.live += 1;
                inner.live_rows += 1;
                return Rid::new(page_no, slot as u16);
            }
            if page.slots.len() < spp {
                page.slots.push(Some(row));
                page.live += 1;
                let slot = (page.slots.len() - 1) as u16;
                inner.live_rows += 1;
                return Rid::new(page_no, slot);
            }
            inner.free_pages.pop();
        }
        // Allocate a new page.
        let mut page = Page::new(self.slots_per_page);
        page.slots.push(Some(row));
        page.live = 1;
        inner.pages.push(page);
        inner.live_rows += 1;
        let page_no = (inner.pages.len() - 1) as u32;
        inner.free_pages.push(page_no);
        Rid::new(page_no, 0)
    }

    /// Fetch a row by RID.
    pub fn get(&self, rid: Rid) -> Option<Row> {
        let inner = self.inner.read();
        inner
            .pages
            .get(rid.page as usize)
            .and_then(|p| p.slots.get(rid.slot as usize))
            .and_then(|s| s.clone())
    }

    /// Delete the row at `rid`, returning the old row.
    pub fn delete(&self, rid: Rid) -> Result<Row> {
        let mut inner = self.inner.write();
        let page = inner
            .pages
            .get_mut(rid.page as usize)
            .ok_or_else(|| Error::internal(format!("delete: bad page {rid:?}")))?;
        let slot = page
            .slots
            .get_mut(rid.slot as usize)
            .ok_or_else(|| Error::internal(format!("delete: bad slot {rid:?}")))?;
        let old = slot
            .take()
            .ok_or_else(|| Error::internal(format!("delete: empty slot {rid:?}")))?;
        page.live -= 1;
        inner.live_rows -= 1;
        if !inner.free_pages.contains(&rid.page) {
            inner.free_pages.push(rid.page);
        }
        Ok(old)
    }

    /// Replace the row at `rid`, returning the old row.
    pub fn update(&self, rid: Rid, new: Row) -> Result<Row> {
        let mut inner = self.inner.write();
        let slot = inner
            .pages
            .get_mut(rid.page as usize)
            .and_then(|p| p.slots.get_mut(rid.slot as usize))
            .ok_or_else(|| Error::internal(format!("update: bad rid {rid:?}")))?;
        match slot.replace(new) {
            Some(old) => Ok(old),
            None => {
                *slot = None;
                Err(Error::internal(format!("update: empty slot {rid:?}")))
            }
        }
    }

    /// Re-insert a previously deleted row at its old RID (rollback path).
    pub fn restore(&self, rid: Rid, row: Row) -> Result<()> {
        let mut inner = self.inner.write();
        let page = inner
            .pages
            .get_mut(rid.page as usize)
            .ok_or_else(|| Error::internal(format!("restore: bad page {rid:?}")))?;
        let slot = page
            .slots
            .get_mut(rid.slot as usize)
            .ok_or_else(|| Error::internal(format!("restore: bad slot {rid:?}")))?;
        if slot.is_some() {
            return Err(Error::internal(format!("restore: slot {rid:?} occupied")));
        }
        *slot = Some(row);
        page.live += 1;
        inner.live_rows += 1;
        Ok(())
    }

    /// Materialize all live rows with their RIDs (a full table scan: walks
    /// every page and every slot, like the real thing).
    pub fn scan(&self) -> Vec<(Rid, Row)> {
        let inner = self.inner.read();
        let mut out = Vec::with_capacity(inner.live_rows);
        for (pno, page) in inner.pages.iter().enumerate() {
            for (sno, slot) in page.slots.iter().enumerate() {
                if let Some(row) = slot {
                    out.push((Rid::new(pno as u32, sno as u16), row.clone()));
                }
            }
        }
        out
    }

    /// Visit all live rows without materializing (used by scans that can
    /// filter on the fly).
    pub fn for_each<F: FnMut(Rid, &Row)>(&self, mut f: F) {
        let inner = self.inner.read();
        for (pno, page) in inner.pages.iter().enumerate() {
            for (sno, slot) in page.slots.iter().enumerate() {
                if let Some(row) = slot {
                    f(Rid::new(pno as u32, sno as u16), row);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idaa_common::{ColumnDef, DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("id", DataType::Integer),
            ColumnDef::new("v", DataType::Varchar(16)),
        ])
        .unwrap()
    }

    fn row(i: i32) -> Row {
        vec![Value::Int(i), Value::Varchar(format!("row{i}"))]
    }

    #[test]
    fn insert_get_roundtrip() {
        let t = HeapTable::new(&schema());
        let rid = t.insert(row(1));
        assert_eq!(t.get(rid).unwrap()[0], Value::Int(1));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn rows_span_pages() {
        let t = HeapTable::new(&schema());
        for i in 0..1000 {
            t.insert(row(i));
        }
        assert_eq!(t.len(), 1000);
        assert!(t.page_count() > 1, "1000 rows should not fit one 4K page");
        assert_eq!(t.scan().len(), 1000);
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let t = HeapTable::new(&schema());
        let r1 = t.insert(row(1));
        let _r2 = t.insert(row(2));
        let old = t.delete(r1).unwrap();
        assert_eq!(old[0], Value::Int(1));
        assert_eq!(t.len(), 1);
        assert!(t.get(r1).is_none());
        let r3 = t.insert(row(3));
        assert_eq!(r3, r1, "freed slot should be reused");
    }

    #[test]
    fn double_delete_errors() {
        let t = HeapTable::new(&schema());
        let rid = t.insert(row(1));
        t.delete(rid).unwrap();
        assert!(t.delete(rid).is_err());
    }

    #[test]
    fn update_returns_old() {
        let t = HeapTable::new(&schema());
        let rid = t.insert(row(1));
        let old = t.update(rid, row(9)).unwrap();
        assert_eq!(old[0], Value::Int(1));
        assert_eq!(t.get(rid).unwrap()[0], Value::Int(9));
    }

    #[test]
    fn restore_rehydrates_rid() {
        let t = HeapTable::new(&schema());
        let rid = t.insert(row(7));
        let old = t.delete(rid).unwrap();
        t.restore(rid, old).unwrap();
        assert_eq!(t.get(rid).unwrap()[0], Value::Int(7));
        assert!(t.restore(rid, row(8)).is_err(), "occupied slot must not be restored over");
    }

    #[test]
    fn scan_skips_deleted() {
        let t = HeapTable::new(&schema());
        let rids: Vec<Rid> = (0..10).map(|i| t.insert(row(i))).collect();
        for rid in rids.iter().step_by(2) {
            t.delete(*rid).unwrap();
        }
        let scanned = t.scan();
        assert_eq!(scanned.len(), 5);
        assert!(scanned.iter().all(|(_, r)| r[0].as_i64().unwrap() % 2 == 1));
    }

    #[test]
    fn wide_rows_fewer_slots_per_page() {
        let wide = Schema::new(vec![ColumnDef::new("v", DataType::Varchar(2000))]).unwrap();
        let t = HeapTable::new(&wide);
        t.insert(vec![Value::Varchar("x".into())]);
        t.insert(vec![Value::Varchar("y".into())]);
        t.insert(vec![Value::Varchar("z".into())]);
        assert!(t.page_count() >= 2);
    }
}
