//! The DB2 catalog: table metadata, index metadata, and the accelerator
//! bookkeeping the paper's federation layer needs (nickname proxies for
//! accelerator-only tables and acceleration status of regular tables —
//! DB2's `SYSACCEL.SYSACCELERATEDTABLES` analogue).

use idaa_common::{Error, ObjectName, Result, Schema};
use std::collections::BTreeMap;

/// Stable table identifier.
pub type TableId = u64;

/// What kind of object a catalog entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableKind {
    /// Ordinary DB2 table with heap storage on the host.
    Regular,
    /// Accelerator-only table: the host keeps *only this proxy entry*
    /// ("nickname"); all data lives on the accelerator.
    AcceleratorOnly,
}

/// Replication status of a regular table with respect to the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccelStatus {
    /// Not defined on the accelerator.
    #[default]
    NotAccelerated,
    /// Defined (`ACCEL_ADD_TABLES`) but not yet loaded.
    Added,
    /// Snapshot loaded; incremental replication keeps it fresh; queries may
    /// be routed to the accelerator.
    Loaded,
}

/// Index metadata (the index structure itself lives with the storage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexMeta {
    pub name: ObjectName,
    pub key_columns: Vec<String>,
}

/// One catalog entry.
#[derive(Debug, Clone)]
pub struct TableMeta {
    pub id: TableId,
    pub name: ObjectName,
    pub schema: Schema,
    pub kind: TableKind,
    pub accel_status: AccelStatus,
    /// Distribution key recorded for accelerator tables.
    pub distribute_by: Vec<String>,
    pub indexes: Vec<IndexMeta>,
    /// Authorization id that created the table (implicit full privileges).
    pub owner: String,
}

/// The catalog proper.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<ObjectName, TableMeta>,
    next_id: TableId,
}

impl Catalog {
    /// Register a new table; errors on duplicates (SQLCODE -601 analogue).
    pub fn create_table(
        &mut self,
        name: ObjectName,
        schema: Schema,
        kind: TableKind,
        distribute_by: Vec<String>,
        owner: &str,
    ) -> Result<TableId> {
        if self.tables.contains_key(&name) {
            return Err(Error::AlreadyExists(format!("table {name} already exists")));
        }
        // Validate the distribution key names exist.
        for c in &distribute_by {
            schema.index_of(c)?;
        }
        self.next_id += 1;
        let id = self.next_id;
        self.tables.insert(
            name.clone(),
            TableMeta {
                id,
                name,
                schema,
                kind,
                accel_status: AccelStatus::NotAccelerated,
                distribute_by,
                indexes: Vec::new(),
                owner: owner.to_string(),
            },
        );
        Ok(id)
    }

    /// Remove a table entry, returning its metadata.
    pub fn drop_table(&mut self, name: &ObjectName) -> Result<TableMeta> {
        self.tables
            .remove(name)
            .ok_or_else(|| Error::UndefinedObject(format!("table {name} is not defined")))
    }

    /// Look up a table.
    pub fn table(&self, name: &ObjectName) -> Result<&TableMeta> {
        self.tables
            .get(name)
            .ok_or_else(|| Error::UndefinedObject(format!("table {name} is not defined")))
    }

    /// Mutable lookup.
    pub fn table_mut(&mut self, name: &ObjectName) -> Result<&mut TableMeta> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| Error::UndefinedObject(format!("table {name} is not defined")))
    }

    /// True if the table exists.
    pub fn exists(&self, name: &ObjectName) -> bool {
        self.tables.contains_key(name)
    }

    /// Register an index on an existing table.
    pub fn create_index(
        &mut self,
        index_name: ObjectName,
        table: &ObjectName,
        key_columns: Vec<String>,
    ) -> Result<()> {
        if self.tables.values().any(|t| t.indexes.iter().any(|i| i.name == index_name)) {
            return Err(Error::AlreadyExists(format!("index {index_name} already exists")));
        }
        let meta = self.table_mut(table)?;
        if meta.kind == TableKind::AcceleratorOnly {
            return Err(Error::InvalidAcceleratorUse(format!(
                "indexes cannot be created on accelerator-only table {table}"
            )));
        }
        for c in &key_columns {
            meta.schema.index_of(c)?;
        }
        meta.indexes.push(IndexMeta { name: index_name, key_columns });
        Ok(())
    }

    /// All table entries (deterministic order).
    pub fn all_tables(&self) -> impl Iterator<Item = &TableMeta> {
        self.tables.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idaa_common::{ColumnDef, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::new("A", DataType::Integer),
            ColumnDef::new("B", DataType::Varchar(8)),
        ])
        .unwrap()
    }

    #[test]
    fn create_lookup_drop() {
        let mut c = Catalog::default();
        let name = ObjectName::qualified("APP", "T1");
        let id = c
            .create_table(name.clone(), schema(), TableKind::Regular, vec![], "ALICE")
            .unwrap();
        assert_eq!(c.table(&name).unwrap().id, id);
        assert_eq!(c.table(&name).unwrap().owner, "ALICE");
        let meta = c.drop_table(&name).unwrap();
        assert_eq!(meta.id, id);
        assert!(matches!(c.table(&name), Err(Error::UndefinedObject(_))));
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = Catalog::default();
        let name = ObjectName::bare("T");
        c.create_table(name.clone(), schema(), TableKind::Regular, vec![], "A").unwrap();
        assert!(matches!(
            c.create_table(name, schema(), TableKind::Regular, vec![], "A"),
            Err(Error::AlreadyExists(_))
        ));
    }

    #[test]
    fn distribution_key_validated() {
        let mut c = Catalog::default();
        let r = c.create_table(
            ObjectName::bare("T"),
            schema(),
            TableKind::AcceleratorOnly,
            vec!["NOPE".into()],
            "A",
        );
        assert!(matches!(r, Err(Error::UndefinedColumn(_))));
    }

    #[test]
    fn index_creation_rules() {
        let mut c = Catalog::default();
        let t = ObjectName::bare("T");
        let aot = ObjectName::bare("AOT");
        c.create_table(t.clone(), schema(), TableKind::Regular, vec![], "A").unwrap();
        c.create_table(aot.clone(), schema(), TableKind::AcceleratorOnly, vec![], "A").unwrap();
        c.create_index(ObjectName::bare("I1"), &t, vec!["A".into()]).unwrap();
        // Duplicate index name.
        assert!(c.create_index(ObjectName::bare("I1"), &t, vec!["B".into()]).is_err());
        // Unknown column.
        assert!(c.create_index(ObjectName::bare("I2"), &t, vec!["Z".into()]).is_err());
        // AOTs cannot have host indexes.
        assert!(matches!(
            c.create_index(ObjectName::bare("I3"), &aot, vec!["A".into()]),
            Err(Error::InvalidAcceleratorUse(_))
        ));
    }

    #[test]
    fn accel_status_transitions() {
        let mut c = Catalog::default();
        let t = ObjectName::bare("T");
        c.create_table(t.clone(), schema(), TableKind::Regular, vec![], "A").unwrap();
        assert_eq!(c.table(&t).unwrap().accel_status, AccelStatus::NotAccelerated);
        c.table_mut(&t).unwrap().accel_status = AccelStatus::Added;
        c.table_mut(&t).unwrap().accel_status = AccelStatus::Loaded;
        assert_eq!(c.table(&t).unwrap().accel_status, AccelStatus::Loaded);
    }
}
