//! Criterion microbench for experiment E10: accelerator internals — zone
//! maps and slice parallelism on a selective scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idaa_accel::{AccelConfig, AccelEngine};
use idaa_common::{ColumnDef, DataType, ObjectName, Schema, Value};
use idaa_sql::{parse_statement, Statement};

const ROWS: usize = 500_000;
const QUERY: &str = "SELECT COUNT(*), SUM(v) FROM big WHERE k < 1000";

fn build(slices: usize, zone_maps: bool) -> AccelEngine {
    let engine = AccelEngine::new("APP", AccelConfig { slices, zone_maps, parallel: true, parallelism: 0 });
    let schema = Schema::new(vec![
        ColumnDef::new("K", DataType::Integer),
        ColumnDef::new("V", DataType::Integer),
    ])
    .unwrap();
    engine.create_table(&ObjectName::bare("BIG"), schema, &[]).unwrap();
    let rows: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| vec![Value::Int(i as i32), Value::Int((i % 997) as i32)])
        .collect();
    engine.load_committed(&ObjectName::bare("BIG"), rows).unwrap();
    engine
}

fn bench_accel(c: &mut Criterion) {
    let Statement::Query(q) = parse_statement(QUERY).unwrap() else { unreachable!() };
    let mut group = c.benchmark_group("selective_scan_500k");
    group.sample_size(10);
    for (slices, zones) in [(1, false), (1, true), (4, true), (8, true)] {
        let engine = build(slices, zones);
        group.bench_with_input(
            BenchmarkId::new(format!("zones_{zones}"), slices),
            &slices,
            |b, _| b.iter(|| engine.query(0, &q).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_accel);
criterion_main!(benches);
