//! Criterion microbench for experiment E18: the vectorized batch-kernel
//! pipeline vs the row-at-a-time interpreter on a fused
//! scan-filter-aggregate, across three table sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idaa_accel::{AccelConfig, AccelEngine, ExecMode};
use idaa_common::{ColumnDef, DataType, ObjectName, Schema, Value};
use idaa_sql::{parse_statement, Query, Statement};

fn build(rows: usize) -> (AccelEngine, Query) {
    let engine = AccelEngine::new(
        "APP",
        AccelConfig { slices: 4, zone_maps: true, parallel: false, parallelism: 0 },
    );
    let schema = Schema::new(vec![
        ColumnDef::new("K", DataType::BigInt),
        ColumnDef::new("V", DataType::BigInt),
        ColumnDef::new("G", DataType::Varchar(4)),
    ])
    .unwrap();
    engine.create_table(&ObjectName::bare("BIG"), schema, &[]).unwrap();
    let data: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            vec![
                Value::BigInt(i as i64),
                Value::BigInt((i % 997) as i64),
                Value::Varchar(["eu", "us", "ap", "la"][i % 4].into()),
            ]
        })
        .collect();
    engine.load_committed(&ObjectName::bare("BIG"), data).unwrap();
    // Middle 90% of the key range plus a non-equality conjunct: selective
    // enough to exercise every kernel, wide enough that zone-map pruning
    // cannot carry the win on its own.
    let sql = format!(
        "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM big \
         WHERE k BETWEEN {} AND {} AND v <> 13 GROUP BY g ORDER BY g",
        rows / 20,
        rows - rows / 20
    );
    let Statement::Query(q) = parse_statement(&sql).unwrap() else { unreachable!() };
    (engine, *q)
}

fn bench_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_filter_agg");
    group.sample_size(10);
    for rows in [50_000usize, 200_000, 800_000] {
        let (engine, q) = build(rows);
        for (label, mode) in
            [("interpreted", ExecMode::Interpreted), ("vectorized", ExecMode::Vectorized)]
        {
            group.bench_with_input(BenchmarkId::new(label, rows), &rows, |b, _| {
                b.iter(|| engine.query_with_mode(0, &q, mode).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
