//! Criterion microbench for experiment E3: a 3-stage transformation
//! pipeline in materialize-in-DB2 vs accelerator-only mode.

use criterion::{criterion_group, criterion_main, Criterion};
use idaa_analytics::pipeline::{Pipeline, PipelineMode};
use idaa_bench::{accelerate, seed_sales, system};
use idaa_core::IdaaConfig;

fn pipeline() -> Pipeline {
    Pipeline::new()
        .stage("P1", "SELECT id, amount, qty FROM sales WHERE qty > 1")
        .stage("P2", "SELECT id, amount * 1.1E0 AS AMOUNT, qty FROM p1")
        .stage("P3", "SELECT qty, COUNT(*) AS N, SUM(amount) AS TOTAL FROM p2 GROUP BY qty")
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_3_stages_20k_rows");
    group.sample_size(10);
    for mode in [PipelineMode::MaterializeInDb2, PipelineMode::AcceleratorOnly] {
        group.bench_function(format!("{mode:?}"), |b| {
            b.iter_with_setup(
                || {
                    let (idaa, mut s) = system(IdaaConfig::default());
                    seed_sales(&idaa, &mut s, 20_000);
                    accelerate(&idaa, &mut s, "SALES");
                    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
                    (idaa, s)
                },
                |(idaa, mut s)| {
                    pipeline().run(&idaa, &mut s, mode).unwrap();
                },
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
