//! Criterion microbench for the wire codec: encode / decode / verify
//! throughput over a mixed-type batch shaped like the SALES workload
//! (sequential ids, low-cardinality strings, doubles, dates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use idaa_common::{wire, ColumnDef, DataType, Row, Schema, Value};

const ROWS: usize = 20_000;

fn sales_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("ID", DataType::Integer),
        ColumnDef::new("REGION", DataType::Varchar(8)),
        ColumnDef::new("PRODUCT", DataType::Varchar(8)),
        ColumnDef::new("AMOUNT", DataType::Double),
        ColumnDef::new("QTY", DataType::Integer),
        ColumnDef::new("SOLD_ON", DataType::Date),
    ])
    .unwrap()
}

fn sales_rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            vec![
                Value::Int(i as i32),
                Value::Varchar(["EU", "US", "APAC", "LATAM"][i % 4].into()),
                Value::Varchar(format!("P{:03}", i % 200)),
                Value::Double((i * 13 % 1000) as f64 + 0.5),
                Value::Int((i % 9) as i32 + 1),
                Value::Date(16_436 + (i % 300) as i32),
            ]
        })
        .collect()
}

fn bench_wire(c: &mut Criterion) {
    let schema = sales_schema();
    let rows = sales_rows(ROWS);
    let logical = wire::logical_size(&rows) as u64;
    let frames = wire::encode_frames(&schema, &rows);
    let wire_bytes: u64 = frames.iter().map(|f| f.len() as u64).sum();
    println!(
        "wire codec: {ROWS} rows, logical {logical} B -> {} frames, {wire_bytes} B \
         ({:.2}x)",
        frames.len(),
        logical as f64 / wire_bytes as f64
    );

    let mut group = c.benchmark_group("wire");
    group.sample_size(20);
    group.throughput(Throughput::Elements(ROWS as u64));
    group.bench_function(BenchmarkId::new("encode", ROWS), |b| {
        b.iter(|| wire::encode_frames(&schema, &rows))
    });
    group.bench_function(BenchmarkId::new("decode", ROWS), |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|f| wire::decode_rows(f, &schema).unwrap().len())
                .sum::<usize>()
        })
    });
    group.bench_function(BenchmarkId::new("verify", ROWS), |b| {
        b.iter(|| frames.iter().all(|f| wire::verify(f)))
    });
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
