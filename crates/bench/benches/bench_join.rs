//! Criterion microbench for experiment E13: partitioned parallel hash
//! join, parallel sort, and fused top-K on the accelerator, swept over the
//! worker count — plus the E20 vectorized-vs-interpreted join pair.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idaa_accel::{AccelConfig, AccelEngine, ExecMode};
use idaa_common::{ColumnDef, DataType, ObjectName, Schema, Value};
use idaa_sql::{parse_statement, Statement};

const ROWS: usize = 100_000;
const JOIN: &str = "SELECT COUNT(*), SUM(f.v) FROM f INNER JOIN d ON f.id = d.id \
                    WHERE d.grp < 50";
const SORT: &str = "SELECT id, v FROM f WHERE v < 100 ORDER BY v, id";
const TOPK: &str = "SELECT id, v FROM f ORDER BY v DESC, id LIMIT 100";

fn build(parallelism: usize) -> AccelEngine {
    let engine = AccelEngine::new(
        "APP",
        AccelConfig { slices: 8, zone_maps: true, parallel: true, parallelism },
    );
    let two_ints = |a: &str, b: &str| {
        Schema::new(vec![
            ColumnDef::new(a, DataType::Integer),
            ColumnDef::new(b, DataType::Integer),
        ])
        .unwrap()
    };
    engine.create_table(&ObjectName::bare("F"), two_ints("ID", "V"), &[]).unwrap();
    engine.create_table(&ObjectName::bare("D"), two_ints("ID", "GRP"), &[]).unwrap();
    let fact: Vec<Vec<Value>> = (0..ROWS)
        .map(|i| {
            vec![Value::Int((i * 2_654_435_761 % ROWS) as i32), Value::Int((i % 1000) as i32)]
        })
        .collect();
    let dim: Vec<Vec<Value>> =
        (0..ROWS).map(|i| vec![Value::Int(i as i32), Value::Int((i % 100) as i32)]).collect();
    engine.load_committed(&ObjectName::bare("F"), fact).unwrap();
    engine.load_committed(&ObjectName::bare("D"), dim).unwrap();
    engine
}

fn bench_join(c: &mut Criterion) {
    for (name, sql) in [("hash_join_100kx100k", JOIN), ("sort_100k", SORT), ("topk_100k", TOPK)] {
        let Statement::Query(q) = parse_statement(sql).unwrap() else { unreachable!() };
        let mut group = c.benchmark_group(name);
        group.sample_size(10);
        for workers in [1usize, 2, 4, 8] {
            let engine = build(workers);
            group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, _| {
                b.iter(|| engine.query(0, &q).unwrap())
            });
        }
        group.finish();
    }
}

/// E20 pair: the same join executed through the vectorized pipeline (typed
/// keys, Bloom-guarded probe, derived probe filter, late materialization)
/// and through the row-at-a-time interpreter it must agree with.
fn bench_join_modes(c: &mut Criterion) {
    let Statement::Query(q) = parse_statement(JOIN).unwrap() else { unreachable!() };
    let engine = build(4);
    let mut group = c.benchmark_group("hash_join_exec_mode");
    group.sample_size(10);
    for (label, mode) in [("vectorized", ExecMode::Vectorized), ("interpreted", ExecMode::Interpreted)]
    {
        group.bench_with_input(BenchmarkId::new("mode", label), &mode, |b, mode| {
            b.iter(|| engine.query_with_mode(0, &q, *mode).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_join, bench_join_modes);
criterion_main!(benches);
