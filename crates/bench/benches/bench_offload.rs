//! Criterion microbench for experiment E1: the same OLAP query on the host
//! row store vs the accelerator's columnar engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use idaa_bench::{accelerate, seed_sales, system};
use idaa_core::IdaaConfig;

const QUERY: &str = "SELECT region, COUNT(*), SUM(amount), AVG(qty) FROM sales \
                     WHERE qty > 2 AND amount < 800 GROUP BY region";

fn bench_offload(c: &mut Criterion) {
    let mut group = c.benchmark_group("offload");
    group.sample_size(10);
    for rows in [20_000usize, 100_000] {
        let (idaa, mut s) = system(IdaaConfig::default());
        seed_sales(&idaa, &mut s, rows);
        accelerate(&idaa, &mut s, "SALES");

        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = NONE").unwrap();
        group.bench_with_input(BenchmarkId::new("host", rows), &rows, |b, _| {
            b.iter(|| idaa.query(&mut s, QUERY).unwrap())
        });
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        group.bench_with_input(BenchmarkId::new("accelerator", rows), &rows, |b, _| {
            b.iter(|| idaa.query(&mut s, QUERY).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_offload);
criterion_main!(benches);
