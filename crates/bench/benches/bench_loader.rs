//! Criterion microbench for experiment E5: loader throughput per path and
//! parser parallelism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use idaa_bench::{accelerate, system};
use idaa_common::ObjectName;
use idaa_core::IdaaConfig;
use idaa_host::SYSADM;
use idaa_loader::{EventSource, LoadTarget, Loader};

const ROWS: usize = 20_000;
const DDL: &str = "(EVENT_ID INT, CUST_ID INT, TOPIC VARCHAR(10), SENTIMENT DOUBLE, \
                   POSTED_AT TIMESTAMP)";

fn bench_loader(c: &mut Criterion) {
    let mut group = c.benchmark_group("loader");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ROWS as u64));
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("direct_to_aot", workers),
            &workers,
            |b, &workers| {
                b.iter_with_setup(
                    || {
                        let (idaa, mut s) = system(IdaaConfig::default());
                        idaa.execute(&mut s, &format!("CREATE TABLE FEED {DDL} IN ACCELERATOR"))
                            .unwrap();
                        let mut loader = Loader::new(SYSADM);
                        loader.config.parallelism = workers;
                        (idaa, loader)
                    },
                    |(idaa, loader)| {
                        loader
                            .load(
                                &idaa,
                                Box::new(EventSource::new(ROWS, 7)),
                                &ObjectName::bare("FEED"),
                                LoadTarget::AcceleratorDirect,
                            )
                            .unwrap()
                    },
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("via_db2_replicated", workers),
            &workers,
            |b, &workers| {
                b.iter_with_setup(
                    || {
                        let (idaa, mut s) = system(IdaaConfig::default());
                        idaa.execute(&mut s, &format!("CREATE TABLE FEED {DDL}")).unwrap();
                        accelerate(&idaa, &mut s, "FEED");
                        let mut loader = Loader::new(SYSADM);
                        loader.config.parallelism = workers;
                        (idaa, loader)
                    },
                    |(idaa, loader)| {
                        loader
                            .load(
                                &idaa,
                                Box::new(EventSource::new(ROWS, 7)),
                                &ObjectName::bare("FEED"),
                                LoadTarget::Db2,
                            )
                            .unwrap()
                    },
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_loader);
criterion_main!(benches);
