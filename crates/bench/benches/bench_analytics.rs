//! Criterion microbench for experiments E7/E8: in-database analytics vs
//! the extract-to-client baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use idaa_analytics::kmeans::{kmeans, KMeansConfig};
use idaa_bench::system;
use idaa_common::ObjectName;
use idaa_core::IdaaConfig;
use idaa_host::SYSADM;

const ROWS: usize = 20_000;

fn setup() -> (idaa_core::Idaa, idaa_core::Session) {
    let (idaa, mut s) = system(IdaaConfig::default());
    idaa_analytics::deploy_all(&idaa, SYSADM).unwrap();
    idaa.execute(&mut s, "CREATE TABLE PTS (ID INT, F0 DOUBLE, F1 DOUBLE, F2 DOUBLE) IN ACCELERATOR")
        .unwrap();
    let mut vals = Vec::new();
    for i in 0..ROWS {
        let c = (i % 3) as f64 * 10.0;
        vals.push(format!(
            "({i}, {:.2}E0, {:.2}E0, {:.2}E0)",
            c + (i % 97) as f64 / 100.0,
            c + (i % 89) as f64 / 100.0,
            c + (i % 83) as f64 / 100.0
        ));
        if vals.len() == 1000 {
            idaa.execute(&mut s, &format!("INSERT INTO PTS VALUES {}", vals.join(", ")))
                .unwrap();
            vals.clear();
        }
    }
    (idaa, s)
}

fn bench_analytics(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmeans_20k_x3");
    group.sample_size(10);
    let (idaa, mut s) = setup();
    group.bench_function("in_database_call", |b| {
        b.iter(|| {
            idaa.query(&mut s, "CALL ANALYTICS.KMEANS('PTS', 'F0,F1,F2', 3, 15, 'KM_OUT')")
                .unwrap()
        })
    });
    group.bench_function("extract_to_client", |b| {
        b.iter(|| {
            let (matrix, _) = idaa_analytics::io::extract_matrix_to_client(
                &idaa,
                SYSADM,
                &ObjectName::bare("PTS"),
                &["F0".to_string(), "F1".to_string(), "F2".to_string()],
            )
            .unwrap();
            kmeans(&matrix, &KMeansConfig { k: 3, max_iter: 15, ..Default::default() }).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analytics);
criterion_main!(benches);
