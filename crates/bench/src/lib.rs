//! Shared workload builders and measurement helpers for the experiment
//! harness (`exp` binary) and the Criterion microbenches.
//!
//! The EDBT 2016 poster contains no quantitative evaluation, so the
//! experiment suite (E1–E21, defined in `DESIGN.md` and recorded in
//! `EXPERIMENTS.md`) operationalizes each claim in the paper's text. Every
//! experiment reports wall-clock compute time *and* the deterministic link
//! metrics (bytes, messages, simulated wire time) — the latter being the
//! quantity the paper's AOT extension exists to minimize.

use idaa_core::{Idaa, IdaaConfig, Session};
use idaa_host::SYSADM;
use idaa_netsim::LinkMetrics;
use std::time::{Duration, Instant};

pub mod experiments;

/// Build a system with an admin session.
pub fn system(config: IdaaConfig) -> (Idaa, Session) {
    let idaa = Idaa::new(config);
    let session = idaa.session(SYSADM);
    (idaa, session)
}

/// Create and fill the canonical SALES fact table:
/// `(ID, REGION, PRODUCT, AMOUNT, QTY, SOLD_ON)` with `rows` rows.
pub fn seed_sales(idaa: &Idaa, s: &mut Session, rows: usize) {
    idaa.execute(
        s,
        "CREATE TABLE SALES (ID INT NOT NULL, REGION VARCHAR(8), PRODUCT VARCHAR(8), \
         AMOUNT DOUBLE, QTY INT, SOLD_ON DATE)",
    )
    .expect("create SALES");
    let mut vals = Vec::with_capacity(1000);
    for i in 0..rows {
        vals.push(format!(
            "({i}, '{}', 'P{:03}', {}.5E0, {}, DATE '2015-0{}-0{}')",
            ["EU", "US", "APAC", "LATAM"][i % 4],
            i % 200,
            (i * 13) % 1000,
            (i % 9) + 1,
            (i % 9) + 1,
            (i % 8) + 1
        ));
        if vals.len() == 1000 {
            idaa.execute(s, &format!("INSERT INTO SALES VALUES {}", vals.join(", ")))
                .expect("insert");
            vals.clear();
        }
    }
    if !vals.is_empty() {
        idaa.execute(s, &format!("INSERT INTO SALES VALUES {}", vals.join(", ")))
            .expect("insert");
    }
}

/// Accelerate a table (ADD + LOAD).
pub fn accelerate(idaa: &Idaa, s: &mut Session, table: &str) {
    idaa.execute(s, &format!("CALL ACCEL_ADD_TABLES('{table}')")).expect("add");
    idaa.execute(s, &format!("CALL ACCEL_LOAD_TABLES('{table}')")).expect("load");
}

/// Measure wall time and link delta of `f`. Traffic is the fleet-wide
/// total ([`Idaa::fleet_link_metrics`], i.e. [`LinkMetrics::merged`] over
/// every node's link) — never a hand-summed estimate — which reduces to
/// the single link's metrics for a one-node fleet.
pub fn measure<T>(idaa: &Idaa, f: impl FnOnce() -> T) -> (T, Duration, LinkMetrics) {
    let before = idaa.fleet_link_metrics();
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed(), idaa.fleet_link_metrics().since(&before))
}

/// Milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1000.0)
}

/// Human-readable byte count.
pub fn fmt_bytes(b: u64) -> String {
    if b >= 10_000_000 {
        format!("{:.1} MB", b as f64 / 1e6)
    } else if b >= 10_000 {
        format!("{:.1} KB", b as f64 / 1e3)
    } else {
        format!("{b} B")
    }
}

/// Fixed-width table printer for experiment output.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|h| h.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let line = |out: &mut String| {
            for w in &widths {
                out.push('+');
                out.push_str(&"-".repeat(w + 2));
            }
            out.push_str("+\n");
        };
        let mut out = String::new();
        line(&mut out);
        out.push('|');
        for (h, w) in self.headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:>w$} |"));
        }
        out.push('\n');
        line(&mut out);
        for r in &self.rows {
            out.push('|');
            for (c, w) in r.iter().zip(&widths) {
                out.push_str(&format!(" {c:>w$} |"));
            }
            out.push('\n');
        }
        line(&mut out);
        print!("{out}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_and_measure() {
        let (idaa, mut s) = system(IdaaConfig::default());
        seed_sales(&idaa, &mut s, 1500);
        let (rows, _elapsed, link) = measure(&idaa, || {
            idaa.query(&mut s, "SELECT COUNT(*) FROM sales").unwrap()
        });
        assert_eq!(rows.scalar().unwrap().render(), "1500");
        assert_eq!(link.total_bytes(), 0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(40_000), "40.0 KB");
        assert_eq!(fmt_bytes(25_000_000), "25.0 MB");
        assert_eq!(ms(Duration::from_micros(1500)), "1.50");
    }
}
