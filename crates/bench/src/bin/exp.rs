//! Experiment runner: regenerates every table of the evaluation.
//!
//! Usage:
//! ```text
//! cargo run --release -p idaa-bench --bin exp -- e3      # one experiment
//! cargo run --release -p idaa-bench --bin exp -- all     # the whole suite
//! ```
//! The experiment ids and what they measure are indexed in DESIGN.md;
//! recorded outputs live in EXPERIMENTS.md.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: exp <e1..e22|all> [more ids...]");
        eprintln!("  E1  OLAP offload crossover        E9  replication batch ablation");
        eprintln!("  E2  OLTP point access             E10 accelerator ablation");
        eprintln!("  E3  pipeline stages (headline)    E11 governance overhead");
        eprintln!("  E4  INSERT..SELECT targets        E12 end-to-end churn scenario");
        eprintln!("  E5  loader paths                  E13 parallel join/sort scaling");
        eprintln!("  E6  txn correctness probes        E14 outage failover + recovery");
        eprintln!("  E7  in-DB analytics vs client     E15 wire codec compression");
        eprintln!("  E8  in-DB scoring vs client       E16 crash-restart recovery");
        eprintln!("  E17 tracing overhead + attribution");
        eprintln!("  E18 vectorized batch kernels vs interpreter");
        eprintln!("  E19 fleet failover: replica factor vs latency + catch-up");
        eprintln!("  E20 vectorized joins + plan cache + fleet Bloom gathers");
        eprintln!("  E21 storage faults: scrub intervals + repair-path byte costs");
        std::process::exit(2);
    }
    for id in &args {
        if !idaa_bench::experiments::run(id) {
            eprintln!("unknown experiment id: {id}");
            std::process::exit(2);
        }
        println!();
    }
}
