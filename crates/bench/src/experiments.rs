//! The experiment suite E1–E22 (see DESIGN.md for the index and
//! EXPERIMENTS.md for recorded results). Each function regenerates one
//! table of the evaluation.

use crate::{accelerate, fmt_bytes, measure, ms, seed_sales, system, Table};
use idaa_analytics::kmeans::{kmeans, KMeansConfig};
use idaa_analytics::pipeline::{Pipeline, PipelineMode};
use idaa_core::{Idaa, IdaaConfig, Session};
use idaa_host::SYSADM;
use idaa_loader::{EventSource, LoadTarget, Loader};
use idaa_sql::Privilege;
use std::time::Instant;

/// Run one experiment by id (`e1`…`e22`) or `all`.
pub fn run(id: &str) -> bool {
    match id.to_ascii_lowercase().as_str() {
        "e1" => e1_offload_crossover(),
        "e2" => e2_oltp_point_access(),
        "e3" => e3_pipeline_stages(),
        "e4" => e4_insert_select_target(),
        "e5" => e5_loader_paths(),
        "e6" => e6_transaction_correctness(),
        "e7" => e7_in_database_analytics(),
        "e8" => e8_in_database_scoring(),
        "e9" => e9_replication_batch(),
        "e10" => e10_accelerator_ablation(),
        "e11" => e11_governance_overhead(),
        "e12" => e12_end_to_end_scenario(),
        "e13" => e13_parallel_operators(),
        "e14" => e14_outage_recovery(),
        "e15" => e15_wire_codec(),
        "e16" => e16_crash_recovery(),
        "e17" => e17_trace_overhead(),
        "e18" => e18_vectorized_kernels(),
        "e19" => e19_fleet_failover(),
        "e20" => e20_join_kernels_and_pushdown(),
        "e21" => e21_storage_faults(),
        "e22" => e22_workload_scheduler(),
        "all" => {
            for e in [
                e1_offload_crossover,
                e2_oltp_point_access,
                e3_pipeline_stages,
                e4_insert_select_target,
                e5_loader_paths,
                e6_transaction_correctness,
                e7_in_database_analytics,
                e8_in_database_scoring,
                e9_replication_batch,
                e10_accelerator_ablation,
                e11_governance_overhead,
                e12_end_to_end_scenario,
                e13_parallel_operators,
                e14_outage_recovery,
                e15_wire_codec,
                e16_crash_recovery,
                e17_trace_overhead,
                e18_vectorized_kernels,
                e19_fleet_failover,
                e20_join_kernels_and_pushdown,
                e21_storage_faults,
                e22_workload_scheduler,
            ] {
                e();
                println!();
            }
        }
        _ => return false,
    }
    true
}

fn banner(id: &str, title: &str) {
    println!("=== {id}: {title} ===");
}

/// E1 — OLAP offload: scan/aggregate latency, DB2 row store vs accelerator,
/// as table size grows. Claim: "extremely fast execution of complex,
/// analytical queries" on the accelerator.
pub fn e1_offload_crossover() {
    banner("E1", "OLAP query offload (host row store vs accelerator), size sweep");
    let query = "SELECT region, COUNT(*), SUM(amount), AVG(qty) FROM sales \
                 WHERE qty > 2 AND amount < 800 GROUP BY region";
    let mut table = Table::new(&[
        "rows", "host_ms", "accel_ms", "speedup", "accel+wire_ms",
    ]);
    for rows in [10_000usize, 50_000, 200_000, 500_000] {
        let (idaa, mut s) = system(IdaaConfig::default());
        seed_sales(&idaa, &mut s, rows);
        accelerate(&idaa, &mut s, "SALES");
        // Warm both paths once.
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = NONE").unwrap();
        idaa.query(&mut s, query).unwrap();
        let (_, host_t, _) = measure(&idaa, || idaa.query(&mut s, query).unwrap());
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        idaa.query(&mut s, query).unwrap();
        let (_, accel_t, link) = measure(&idaa, || idaa.query(&mut s, query).unwrap());
        table.row(&[
            rows.to_string(),
            ms(host_t),
            ms(accel_t),
            format!("{:.1}x", host_t.as_secs_f64() / accel_t.as_secs_f64()),
            ms(accel_t + link.wire_time),
        ]);
    }
    table.print();
}

/// E2 — OLTP point access stays on the host: indexed point SELECTs,
/// host-with-index vs forced accelerator execution.
pub fn e2_oltp_point_access() {
    banner("E2", "OLTP point lookups (indexed host vs accelerator scan)");
    const ROWS: usize = 200_000;
    const PROBES: usize = 200;
    let (idaa, mut s) = system(IdaaConfig::default());
    seed_sales(&idaa, &mut s, ROWS);
    idaa.execute(&mut s, "CREATE INDEX SALES_ID ON SALES (ID)").unwrap();
    accelerate(&idaa, &mut s, "SALES");
    let probe = |idaa: &Idaa, s: &mut Session| {
        for i in 0..PROBES {
            let id = (i * 997) % ROWS;
            idaa.query(s, &format!("SELECT product FROM sales WHERE id = {id}")).unwrap();
        }
    };
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = NONE").unwrap();
    let (_, host_t, _) = measure(&idaa, || probe(&idaa, &mut s));
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    let (_, accel_t, link) = measure(&idaa, || probe(&idaa, &mut s));
    // Routing check: ENABLE keeps the point lookups local.
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ENABLE").unwrap();
    let out = idaa.execute(&mut s, "SELECT product FROM sales WHERE id = 7").unwrap();
    let mut table = Table::new(&["path", "total_ms", "us/query", "wire_ms"]);
    table.row(&[
        "host (indexed)".into(),
        ms(host_t),
        format!("{:.1}", host_t.as_secs_f64() * 1e6 / PROBES as f64),
        "0.00".into(),
    ]);
    table.row(&[
        "accelerator".into(),
        ms(accel_t),
        format!("{:.1}", accel_t.as_secs_f64() * 1e6 / PROBES as f64),
        ms(link.wire_time),
    ]);
    table.print();
    println!("ENABLE-mode routing for a point lookup: {:?} (expected Host)", out.route);
}

/// E3 — the headline: multi-staged transformation pipeline, materialized in
/// DB2 (pre-AOT) vs accelerator-only tables, stage-count sweep.
pub fn e3_pipeline_stages() {
    banner("E3", "multi-stage pipeline: materialize-in-DB2 vs accelerator-only tables");
    const ROWS: usize = 50_000;
    let mut table = Table::new(&[
        "stages", "mode", "elapsed_ms", "bytes_moved", "msgs", "wire_ms",
    ]);
    for k in [1usize, 2, 4, 8] {
        for mode in [PipelineMode::MaterializeInDb2, PipelineMode::AcceleratorOnly] {
            let (idaa, mut s) = system(IdaaConfig::default());
            seed_sales(&idaa, &mut s, ROWS);
            accelerate(&idaa, &mut s, "SALES");
            idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
            let mut p = Pipeline::new();
            let mut prev = "SALES".to_string();
            for i in 0..k {
                let out = format!("STG{i}");
                // Row-preserving transformation chain.
                let select = if i == 0 {
                    format!("SELECT id, amount, qty FROM {prev} WHERE qty >= 0")
                } else {
                    format!("SELECT id, amount * 1.01E0 AS AMOUNT, qty FROM {prev}")
                };
                p = p.stage(&out, &select);
                prev = out;
            }
            idaa.link().reset();
            let report = p.run(&idaa, &mut s, mode).unwrap();
            table.row(&[
                k.to_string(),
                format!("{mode:?}"),
                ms(report.elapsed),
                fmt_bytes(report.link.total_bytes()),
                report.link.total_messages().to_string(),
                ms(report.link.wire_time),
            ]);
        }
    }
    table.print();
}

/// E4 — `INSERT INTO … SELECT` target comparison: AOT target (pushdown,
/// no data movement) vs regular DB2 target (result materialization).
pub fn e4_insert_select_target() {
    banner("E4", "INSERT FROM SELECT: accelerator-only target vs DB2 target");
    let mut table = Table::new(&[
        "rows", "target", "elapsed_ms", "bytes_moved", "wire_ms",
    ]);
    for rows in [10_000usize, 100_000, 300_000] {
        for aot in [false, true] {
            let (idaa, mut s) = system(IdaaConfig::default());
            seed_sales(&idaa, &mut s, rows);
            accelerate(&idaa, &mut s, "SALES");
            idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
            let ddl = "(ID INT, AMOUNT DOUBLE, QTY INT)";
            let target = if aot { "AOT target" } else { "DB2 target" };
            idaa.execute(
                &mut s,
                &format!(
                    "CREATE TABLE OUT1 {ddl}{}",
                    if aot { " IN ACCELERATOR" } else { "" }
                ),
            )
            .unwrap();
            idaa.link().reset();
            let (_, t, link) = measure(&idaa, || {
                idaa.execute(&mut s, "INSERT INTO OUT1 SELECT id, amount, qty FROM sales")
                    .unwrap()
            });
            table.row(&[
                rows.to_string(),
                target.into(),
                ms(t),
                fmt_bytes(link.total_bytes()),
                ms(link.wire_time),
            ]);
        }
    }
    table.print();
}

/// E5 — IDAA Loader paths: direct-to-accelerator vs through DB2 with
/// replication, with a parser-parallelism sweep.
pub fn e5_loader_paths() {
    banner("E5", "loader ingestion: direct-to-AOT vs via DB2 (+replication), worker sweep");
    const ROWS: usize = 100_000;
    let ddl = "(EVENT_ID INT, CUST_ID INT, TOPIC VARCHAR(10), SENTIMENT DOUBLE, \
               POSTED_AT TIMESTAMP)";
    let mut table = Table::new(&[
        "path", "workers", "rows/s", "elapsed_ms", "bytes_to_accel",
    ]);
    for workers in [1usize, 2, 4, 8] {
        for direct in [false, true] {
            let (idaa, mut s) = system(IdaaConfig::default());
            if direct {
                idaa.execute(&mut s, &format!("CREATE TABLE FEED {ddl} IN ACCELERATOR")).unwrap();
            } else {
                idaa.execute(&mut s, &format!("CREATE TABLE FEED {ddl}")).unwrap();
                accelerate(&idaa, &mut s, "FEED");
            }
            let mut loader = Loader::new(SYSADM);
            loader.config.parallelism = workers;
            idaa.link().reset();
            let (report, t, link) = measure(&idaa, || {
                loader
                    .load(
                        &idaa,
                        Box::new(EventSource::new(ROWS, 7)),
                        &idaa_common::ObjectName::bare("FEED"),
                        if direct { LoadTarget::AcceleratorDirect } else { LoadTarget::Db2 },
                    )
                    .unwrap()
            });
            assert_eq!(report.rows_loaded, ROWS);
            table.row(&[
                if direct { "direct-to-AOT" } else { "via DB2" }.into(),
                workers.to_string(),
                format!("{:.0}", ROWS as f64 / t.as_secs_f64()),
                ms(t),
                fmt_bytes(link.bytes_to_accel),
            ]);
        }
    }
    table.print();
}

/// E6 — transaction-correctness probes for AOTs (the paper's §2
/// correctness requirements), reported as a pass/fail table.
pub fn e6_transaction_correctness() {
    banner("E6", "AOT transaction-context correctness probes");
    let mut table = Table::new(&["probe", "result"]);
    let check = |name: &str, ok: bool, table: &mut Table| {
        table.row(&[name.into(), if ok { "PASS" } else { "FAIL" }.into()]);
    };

    // Own uncommitted changes visible.
    let (idaa, mut s) = system(IdaaConfig::default());
    idaa.execute(&mut s, "CREATE TABLE T (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "BEGIN").unwrap();
    idaa.execute(&mut s, "INSERT INTO T VALUES (1)").unwrap();
    let own = idaa.query(&mut s, "SELECT COUNT(*) FROM t").unwrap();
    check("own uncommitted inserts visible", own.scalar().unwrap().render() == "1", &mut table);

    // Not visible to a concurrent session (no dirty reads).
    let mut other = idaa.session(SYSADM);
    let theirs = idaa.query(&mut other, "SELECT COUNT(*) FROM t").unwrap();
    check("no dirty reads across sessions", theirs.scalar().unwrap().render() == "0", &mut table);
    idaa.execute(&mut s, "COMMIT").unwrap();

    // Snapshot stability inside a transaction.
    let mut reader = idaa.session(SYSADM);
    idaa.execute(&mut reader, "BEGIN").unwrap();
    idaa.execute(&mut reader, "INSERT INTO T VALUES (50)").unwrap(); // pin snapshot
    let before = idaa.query(&mut reader, "SELECT COUNT(*) FROM t").unwrap();
    idaa.execute(&mut s, "INSERT INTO T VALUES (2)").unwrap(); // concurrent commit
    let after = idaa.query(&mut reader, "SELECT COUNT(*) FROM t").unwrap();
    check(
        "snapshot stable under concurrent commit",
        before.scalar() == after.scalar(),
        &mut table,
    );
    idaa.execute(&mut reader, "ROLLBACK").unwrap();

    // Write-write conflict detection.
    let mut a = idaa.session(SYSADM);
    let mut b = idaa.session(SYSADM);
    idaa.execute(&mut a, "BEGIN").unwrap();
    idaa.execute(&mut b, "BEGIN").unwrap();
    idaa.execute(&mut a, "DELETE FROM T WHERE X = 1").unwrap();
    let conflict = idaa.execute(&mut b, "DELETE FROM T WHERE X = 1").is_err();
    check("first-updater-wins conflict detected", conflict, &mut table);
    idaa.execute(&mut a, "ROLLBACK").unwrap();
    idaa.execute(&mut b, "ROLLBACK").unwrap();

    // Cross-system atomic rollback.
    idaa.execute(&mut s, "CREATE TABLE H (X INT)").unwrap();
    idaa.execute(&mut s, "BEGIN").unwrap();
    idaa.execute(&mut s, "INSERT INTO H VALUES (1)").unwrap();
    idaa.execute(&mut s, "INSERT INTO T VALUES (9)").unwrap();
    idaa.execute(&mut s, "ROLLBACK").unwrap();
    let h = idaa.query(&mut s, "SELECT COUNT(*) FROM h").unwrap();
    let t = idaa.query(&mut s, "SELECT COUNT(*) FROM t WHERE x = 9").unwrap();
    check(
        "rollback atomic across host and accelerator",
        h.scalar().unwrap().render() == "0" && t.scalar().unwrap().render() == "0",
        &mut table,
    );

    // 2PC prepare failure leaves both sides clean.
    idaa.execute(&mut s, "BEGIN").unwrap();
    idaa.execute(&mut s, "INSERT INTO H VALUES (1)").unwrap();
    idaa.execute(&mut s, "INSERT INTO T VALUES (9)").unwrap();
    idaa.faults.registry.arm(idaa_netsim::sites::PREPARE_VOTE_NO, 1);
    let failed = idaa.execute(&mut s, "COMMIT").is_err();
    s.explicit_txn = false;
    let h = idaa.query(&mut s, "SELECT COUNT(*) FROM h").unwrap();
    let t = idaa.query(&mut s, "SELECT COUNT(*) FROM t WHERE x = 9").unwrap();
    check(
        "failed PREPARE rolls back all participants",
        failed && h.scalar().unwrap().render() == "0" && t.scalar().unwrap().render() == "0",
        &mut table,
    );
    table.print();
}

/// E7 — in-database analytics vs extract-to-client: k-means training.
pub fn e7_in_database_analytics() {
    banner("E7", "k-means: in-database (on accelerator) vs extract-to-client");
    let mut table = Table::new(&[
        "rows", "dims", "mode", "elapsed_ms", "bytes_moved", "wire_ms",
    ]);
    for rows in [10_000usize, 100_000, 300_000] {
        for dims in [4usize, 8] {
            let (idaa, mut s) = system(IdaaConfig::default());
            idaa_analytics::deploy_all(&idaa, SYSADM).unwrap();
            let cols: Vec<String> = (0..dims).map(|d| format!("F{d} DOUBLE")).collect();
            idaa.execute(
                &mut s,
                &format!("CREATE TABLE PTS (ID INT, {}) IN ACCELERATOR", cols.join(", ")),
            )
            .unwrap();
            let mut vals = Vec::new();
            for i in 0..rows {
                let fs: Vec<String> = (0..dims)
                    .map(|d| {
                        let center = if i % 3 == 0 { 0.0 } else if i % 3 == 1 { 10.0 } else { 20.0 };
                        format!("{:.2}E0", center + ((i * (d + 3)) % 100) as f64 / 100.0)
                    })
                    .collect();
                vals.push(format!("({i}, {})", fs.join(", ")));
                if vals.len() == 1000 {
                    idaa.execute(&mut s, &format!("INSERT INTO PTS VALUES {}", vals.join(", ")))
                        .unwrap();
                    vals.clear();
                }
            }
            let col_list: Vec<String> = (0..dims).map(|d| format!("F{d}")).collect();
            let col_arg = col_list.join(",");

            // In-database: CALL runs on the accelerator; no data movement.
            idaa.link().reset();
            let (_, t_indb, link_indb) = measure(&idaa, || {
                idaa.query(
                    &mut s,
                    &format!("CALL ANALYTICS.KMEANS('PTS', '{col_arg}', 3, 20, 'KM_OUT')"),
                )
                .unwrap()
            });
            table.row(&[
                rows.to_string(),
                dims.to_string(),
                "in-database".into(),
                ms(t_indb),
                fmt_bytes(link_indb.total_bytes()),
                ms(link_indb.wire_time),
            ]);

            // Client-side baseline: extract the matrix over the link, then
            // run the identical algorithm "at the client".
            idaa.link().reset();
            let (_, t_client, link_client) = measure(&idaa, || {
                let (matrix, _) = idaa_analytics::io::extract_matrix_to_client(
                    &idaa,
                    SYSADM,
                    &idaa_common::ObjectName::bare("PTS"),
                    &col_list,
                )
                .unwrap();
                kmeans(&matrix, &KMeansConfig { k: 3, max_iter: 20, ..Default::default() })
                    .unwrap()
            });
            table.row(&[
                rows.to_string(),
                dims.to_string(),
                "extract-to-client".into(),
                ms(t_client),
                fmt_bytes(link_client.total_bytes()),
                ms(link_client.wire_time),
            ]);
        }
    }
    table.print();
}

/// E8 — predictive scoring inside the accelerator vs at the client.
pub fn e8_in_database_scoring() {
    banner("E8", "naive-Bayes scoring: in-database vs extract-to-client");
    let mut table = Table::new(&[
        "score_rows", "mode", "elapsed_ms", "bytes_moved", "wire_ms",
    ]);
    for rows in [50_000usize, 200_000, 500_000] {
        let (idaa, mut s) = system(IdaaConfig::default());
        idaa_analytics::deploy_all(&idaa, SYSADM).unwrap();
        idaa.execute(
            &mut s,
            "CREATE TABLE OBS (ID INT, X DOUBLE, Y DOUBLE, LABEL VARCHAR(4)) IN ACCELERATOR",
        )
        .unwrap();
        let mut vals = Vec::new();
        for i in 0..rows {
            let hi = i % 2 == 1;
            let (cx, cy) = if hi { (8.0, 8.0) } else { (0.0, 0.0) };
            vals.push(format!(
                "({i}, {:.2}E0, {:.2}E0, '{}')",
                cx + ((i * 53) % 100) as f64 / 100.0,
                cy + ((i * 31) % 100) as f64 / 100.0,
                if hi { "HI" } else { "LO" }
            ));
            if vals.len() == 1000 {
                idaa.execute(&mut s, &format!("INSERT INTO OBS VALUES {}", vals.join(", ")))
                    .unwrap();
                vals.clear();
            }
        }
        idaa.query(&mut s, "CALL ANALYTICS.NAIVEBAYES_TRAIN('OBS', 'LABEL', 'X,Y', 'NBM')")
            .unwrap();

        idaa.link().reset();
        let (_, t_indb, link_indb) = measure(&idaa, || {
            idaa.query(
                &mut s,
                "CALL ANALYTICS.NAIVEBAYES_SCORE('OBS', 'ID', 'X,Y', 'NBM', 'SCORES')",
            )
            .unwrap()
        });
        table.row(&[
            rows.to_string(),
            "in-database".into(),
            ms(t_indb),
            fmt_bytes(link_indb.total_bytes()),
            ms(link_indb.wire_time),
        ]);

        idaa.link().reset();
        let (_, t_client, link_client) = measure(&idaa, || {
            let model = idaa_analytics::procedures::load_nb_model(
                &idaa,
                SYSADM,
                &idaa_common::ObjectName::bare("NBM"),
            )
            .unwrap();
            let (matrix, _) = idaa_analytics::io::extract_matrix_to_client(
                &idaa,
                SYSADM,
                &idaa_common::ObjectName::bare("OBS"),
                &["X".to_string(), "Y".to_string()],
            )
            .unwrap();
            matrix.iter().map(|p| model.predict(p).0.to_string()).collect::<Vec<_>>()
        });
        table.row(&[
            rows.to_string(),
            "extract-to-client".into(),
            ms(t_client),
            fmt_bytes(link_client.total_bytes()),
            ms(link_client.wire_time),
        ]);
    }
    table.print();
}

/// E9 — ablation: replication batch size vs messages/bytes/latency.
pub fn e9_replication_batch() {
    banner("E9", "replication batch-size ablation (20k single-row commits)");
    const CHANGES: usize = 20_000;
    let mut table = Table::new(&[
        "batch", "apply_ms", "msgs", "bytes", "wire_ms",
    ]);
    for batch in [1usize, 32, 1024, 32_768] {
        let (idaa, mut s) = system(IdaaConfig {
            replication_batch: batch,
            auto_replicate: false,
            ..Default::default()
        });
        idaa.execute(&mut s, "CREATE TABLE T (K INT, V INT)").unwrap();
        accelerate(&idaa, &mut s, "T");
        let mut vals = Vec::new();
        for i in 0..CHANGES {
            vals.push(format!("({i}, {})", i % 100));
            if vals.len() == 1000 {
                idaa.execute(&mut s, &format!("INSERT INTO T VALUES {}", vals.join(", ")))
                    .unwrap();
                vals.clear();
            }
        }
        idaa.link().reset();
        let (applied, t, link) = measure(&idaa, || idaa.replicate_now().unwrap());
        assert_eq!(applied, CHANGES);
        table.row(&[
            batch.to_string(),
            ms(t),
            link.total_messages().to_string(),
            fmt_bytes(link.total_bytes()),
            ms(link.wire_time),
        ]);
    }
    table.print();
}

/// E10 — accelerator internals ablation: zone maps, slice parallelism,
/// groom after churn.
pub fn e10_accelerator_ablation() {
    banner("E10", "accelerator ablation: zone maps, data slices, groom");
    const ROWS: usize = 1_000_000;
    let selective = "SELECT COUNT(*), SUM(v) FROM big WHERE k < 1000";

    let build = |slices: usize, zone_maps: bool| -> (Idaa, Session) {
        let cfg = IdaaConfig {
            accel: idaa_accel::AccelConfig { slices, zone_maps, parallel: true, parallelism: 0 },
            ..Default::default()
        };
        let (idaa, mut s) = system(cfg);
        idaa.execute(&mut s, "CREATE TABLE BIG (K INT, V INT) IN ACCELERATOR DISTRIBUTE BY HASH(K)")
            .unwrap();
        // Load sorted data directly (zone maps love clustering).
        let rows: Vec<idaa_common::Row> = (0..ROWS)
            .map(|i| vec![idaa_common::Value::Int(i as i32), idaa_common::Value::Int((i % 997) as i32)])
            .collect();
        idaa.accel().load_committed(&idaa_common::ObjectName::bare("BIG"), rows).unwrap();
        (idaa, s)
    };

    let mut table = Table::new(&["slices", "zone_maps", "query_ms", "blocks_pruned"]);
    for slices in [1usize, 2, 4, 8] {
        for zones in [true, false] {
            let (idaa, mut s) = build(slices, zones);
            idaa.query(&mut s, selective).unwrap(); // warm
            let pruned0 = idaa.accel().stats.blocks_pruned.load(std::sync::atomic::Ordering::Relaxed);
            let (_, t, _) = measure(&idaa, || idaa.query(&mut s, selective).unwrap());
            let pruned = idaa.accel().stats.blocks_pruned.load(std::sync::atomic::Ordering::Relaxed)
                - pruned0;
            table.row(&[
                slices.to_string(),
                zones.to_string(),
                ms(t),
                pruned.to_string(),
            ]);
        }
    }
    table.print();

    // Groom effect after churn.
    let (idaa, mut s) = build(4, true);
    idaa.execute(&mut s, "DELETE FROM BIG WHERE V < 500").unwrap();
    let full = "SELECT COUNT(*) FROM big";
    let (_, before, _) = measure(&idaa, || idaa.query(&mut s, full).unwrap());
    let groomed = idaa.accel().groom_all();
    let (_, after, _) = measure(&idaa, || idaa.query(&mut s, full).unwrap());
    let mut t2 = Table::new(&["phase", "scan_ms", "versions_groomed"]);
    t2.row(&["after 50% delete".into(), ms(before), "0".into()]);
    t2.row(&["after GROOM".into(), ms(after), groomed.to_string()]);
    t2.print();
}

/// E11 — governance path overhead: DB2-side privilege checks on the
/// delegation path.
pub fn e11_governance_overhead() {
    banner("E11", "governance: DB2 privilege-check overhead on delegated work");
    let (idaa, mut s) = system(IdaaConfig::default());
    idaa_analytics::deploy_all(&idaa, SYSADM).unwrap();
    seed_sales(&idaa, &mut s, 20_000);
    accelerate(&idaa, &mut s, "SALES");
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    idaa.execute(&mut s, "GRANT SELECT ON SALES TO ANALYST").unwrap();
    idaa.execute(&mut s, "GRANT EXECUTE ON ANALYTICS.DESCRIBE TO ANALYST").unwrap();

    // Raw privilege-check latency.
    const CHECKS: usize = 100_000;
    let table_name = idaa_common::ObjectName::qualified("APP", "SALES");
    let t0 = Instant::now();
    for _ in 0..CHECKS {
        idaa.host()
            .privileges
            .read()
            .check("ANALYST", &table_name, Privilege::Select)
            .unwrap();
    }
    let per_check = t0.elapsed().as_secs_f64() * 1e9 / CHECKS as f64;

    // Authorized vs rejected CALL latency.
    let mut analyst = idaa.session("ANALYST");
    let (_, t_ok, _) = measure(&idaa, || {
        idaa.query(&mut analyst, "CALL ANALYTICS.DESCRIBE('SALES', 'SALES_STATS')").unwrap()
    });
    let mut intruder = idaa.session("INTRUDER");
    let t1 = Instant::now();
    const REJECTS: usize = 1000;
    for _ in 0..REJECTS {
        let _ = idaa
            .query(&mut intruder, "CALL ANALYTICS.DESCRIBE('SALES', 'X')")
            .unwrap_err();
    }
    let per_reject = t1.elapsed().as_secs_f64() * 1e6 / REJECTS as f64;

    // Query-path overhead: offloaded query as admin (owner fast path) vs
    // as grantee (grant lookup).
    let q = "SELECT COUNT(*) FROM sales WHERE qty = 3";
    let (_, t_admin, _) = measure(&idaa, || idaa.query(&mut s, q).unwrap());
    idaa.execute(&mut analyst, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
    let (_, t_analyst, _) = measure(&idaa, || idaa.query(&mut analyst, q).unwrap());

    let mut table = Table::new(&["metric", "value"]);
    table.row(&["privilege check".into(), format!("{per_check:.0} ns")]);
    table.row(&["authorized CALL (DESCRIBE 20k rows)".into(), format!("{} ms", ms(t_ok))]);
    table.row(&["rejected CALL".into(), format!("{per_reject:.1} us")]);
    table.row(&["offloaded query as admin".into(), format!("{} ms", ms(t_admin))]);
    table.row(&["offloaded query as grantee".into(), format!("{} ms", ms(t_analyst))]);
    table.print();
}

/// E12 — the paper's end-to-end scenario: social-media-enriched churn
/// pipeline, legacy (no AOT, client-side mining) vs extended IDAA.
pub fn e12_end_to_end_scenario() {
    banner("E12", "end-to-end churn scenario: legacy vs extended IDAA");
    const CUSTOMERS: usize = 5_000;
    const EVENTS: usize = 50_000;

    let build = || -> (Idaa, Session) {
        let (idaa, mut s) = system(IdaaConfig::default());
        idaa_analytics::deploy_all(&idaa, SYSADM).unwrap();
        idaa.execute(
            &mut s,
            "CREATE TABLE CUSTOMERS (CUST_ID INT NOT NULL, TENURE_M INT, MONTHLY DOUBLE, \
             SUPPORT_CALLS INT, CHURNED VARCHAR(3))",
        )
        .unwrap();
        let mut vals = Vec::new();
        for i in 0..CUSTOMERS as i64 {
            let tenure = (i * 37 % 72) + 1;
            let calls = (i * 13) % 9;
            let churned = if tenure < 12 && calls > 4 { "YES" } else { "NO" };
            vals.push(format!("({i}, {tenure}, {}.0E0, {calls}, '{churned}')", 20 + i % 80));
            if vals.len() == 1000 {
                idaa.execute(&mut s, &format!("INSERT INTO CUSTOMERS VALUES {}", vals.join(", ")))
                    .unwrap();
                vals.clear();
            }
        }
        accelerate(&idaa, &mut s, "CUSTOMERS");
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        (idaa, s)
    };

    let feature_sql = "SELECT c.cust_id, CAST(c.tenure_m AS DOUBLE) AS TENURE_M, c.monthly, \
                CAST(c.support_calls AS DOUBLE) AS SUPPORT_CALLS, \
                COALESCE(CAST(a.neg_posts AS DOUBLE), 0.0E0) AS NEG_POSTS, c.churned \
         FROM customers c LEFT JOIN social_agg a ON c.cust_id = a.cust_id".to_string();
    let agg_sql = format!(
        "SELECT cust_id % {CUSTOMERS} AS CUST_ID, \
                CAST(SUM(CASE WHEN sentiment < 0 THEN 1 ELSE 0 END) AS INT) AS NEG_POSTS \
         FROM social GROUP BY cust_id % {CUSTOMERS}"
    );

    let mut table = Table::new(&["mode", "elapsed_ms", "bytes_moved", "msgs", "wire_ms"]);

    // --- Extended IDAA: direct load + AOT stages + in-database mining -----
    {
        let (idaa, mut s) = build();
        idaa.link().reset();
        let t0 = Instant::now();
        idaa.execute(
            &mut s,
            "CREATE TABLE SOCIAL (EVENT_ID INT, CUST_ID INT, TOPIC VARCHAR(10), \
             SENTIMENT DOUBLE, POSTED_AT TIMESTAMP) IN ACCELERATOR",
        )
        .unwrap();
        Loader::new(SYSADM)
            .load(
                &idaa,
                Box::new(EventSource::new(EVENTS, 5)),
                &idaa_common::ObjectName::bare("SOCIAL"),
                LoadTarget::AcceleratorDirect,
            )
            .unwrap();
        let p = Pipeline::new()
            .stage("SOCIAL_AGG", &agg_sql)
            .stage("FEATURES", &feature_sql);
        p.run(&idaa, &mut s, PipelineMode::AcceleratorOnly).unwrap();
        idaa.query(
            &mut s,
            "CALL ANALYTICS.DECTREE_TRAIN('FEATURES', 'CHURNED', \
             'TENURE_M,MONTHLY,SUPPORT_CALLS,NEG_POSTS', 'MODEL', 5)",
        )
        .unwrap();
        idaa.query(
            &mut s,
            "CALL ANALYTICS.DECTREE_SCORE('FEATURES', 'CUST_ID', \
             'TENURE_M,MONTHLY,SUPPORT_CALLS,NEG_POSTS', 'MODEL', 'SCORES')",
        )
        .unwrap();
        let link = idaa.link().metrics();
        table.row(&[
            "extended IDAA (AOT + in-DB)".into(),
            ms(t0.elapsed()),
            fmt_bytes(link.total_bytes()),
            link.total_messages().to_string(),
            ms(link.wire_time),
        ]);
    }

    // --- Legacy: load via DB2, materialize stages in DB2, mine client-side
    {
        let (idaa, mut s) = build();
        idaa.link().reset();
        let t0 = Instant::now();
        idaa.execute(
            &mut s,
            "CREATE TABLE SOCIAL (EVENT_ID INT, CUST_ID INT, TOPIC VARCHAR(10), \
             SENTIMENT DOUBLE, POSTED_AT TIMESTAMP)",
        )
        .unwrap();
        accelerate(&idaa, &mut s, "SOCIAL");
        Loader::new(SYSADM)
            .load(
                &idaa,
                Box::new(EventSource::new(EVENTS, 5)),
                &idaa_common::ObjectName::bare("SOCIAL"),
                LoadTarget::Db2,
            )
            .unwrap();
        let p = Pipeline::new()
            .stage("SOCIAL_AGG", &agg_sql)
            .stage("FEATURES", &feature_sql);
        p.run(&idaa, &mut s, PipelineMode::MaterializeInDb2).unwrap();
        // Client-side mining: extract features over the link, train and
        // score locally.
        let cols: Vec<String> =
            ["TENURE_M", "MONTHLY", "SUPPORT_CALLS", "NEG_POSTS"].iter().map(|c| c.to_string()).collect();
        let (schema, rows) = idaa_analytics::io::read_accel_table(
            &idaa,
            SYSADM,
            &idaa_common::ObjectName::bare("FEATURES"),
        )
        .unwrap();
        // The extract crosses the link as encoded wire frames (client-side
        // baseline pays full data-movement cost, but through the same codec).
        let rows = idaa.ship_rows(idaa_netsim::Direction::ToHost, &schema, &rows).unwrap();
        let (matrix, _) = idaa_analytics::io::numeric_matrix(&schema, &rows, &cols).unwrap();
        let labels = idaa_analytics::io::label_column(&schema, &rows, "CHURNED").unwrap();
        let model = idaa_analytics::dectree::train(
            &matrix,
            &labels,
            &idaa_analytics::dectree::TreeConfig { max_depth: 5, ..Default::default() },
        )
        .unwrap();
        let _scores: Vec<&str> = matrix.iter().map(|p| model.predict(p)).collect();
        let link = idaa.link().metrics();
        table.row(&[
            "legacy (materialize + client)".into(),
            ms(t0.elapsed()),
            fmt_bytes(link.total_bytes()),
            link.total_messages().to_string(),
            ms(link.wire_time),
        ]);
    }
    table.print();
}

/// E13 — slice-parallel post-scan operators: partitioned hash join,
/// parallel sort, and fused top-K, swept over the accelerator worker count.
/// The link columns are deterministic (AOT queries move only control
/// messages plus the result rows), so they must not vary with parallelism.
pub fn e13_parallel_operators() {
    banner("E13", "parallel join/sort/top-K scaling vs accelerator workers");
    const ROWS: usize = 100_000;

    let build = |parallelism: usize| -> (Idaa, Session) {
        let cfg = IdaaConfig {
            accel: idaa_accel::AccelConfig {
                slices: 8,
                zone_maps: true,
                parallel: true,
                parallelism,
            },
            ..Default::default()
        };
        let (idaa, mut s) = system(cfg);
        idaa.execute(
            &mut s,
            "CREATE TABLE F (ID INT, V INT) IN ACCELERATOR DISTRIBUTE BY HASH(ID)",
        )
        .unwrap();
        idaa.execute(
            &mut s,
            "CREATE TABLE D (ID INT, GRP INT) IN ACCELERATOR DISTRIBUTE BY HASH(ID)",
        )
        .unwrap();
        // Deterministic synthetic data — no RNG, so every sweep loads the
        // same bytes and the link metrics stay byte-stable.
        let fact: Vec<idaa_common::Row> = (0..ROWS)
            .map(|i| {
                vec![
                    idaa_common::Value::Int((i * 2_654_435_761 % ROWS) as i32),
                    idaa_common::Value::Int((i % 1000) as i32),
                ]
            })
            .collect();
        let dim: Vec<idaa_common::Row> = (0..ROWS)
            .map(|i| vec![idaa_common::Value::Int(i as i32), idaa_common::Value::Int((i % 100) as i32)])
            .collect();
        idaa.accel().load_committed(&idaa_common::ObjectName::bare("F"), fact).unwrap();
        idaa.accel().load_committed(&idaa_common::ObjectName::bare("D"), dim).unwrap();
        (idaa, s)
    };

    let join = "SELECT COUNT(*), SUM(f.v) FROM f INNER JOIN d ON f.id = d.id WHERE d.grp < 50";
    let sort = "SELECT id, v FROM f WHERE v < 100 ORDER BY v, id";
    let topk = "SELECT id, v FROM f ORDER BY v DESC, id LIMIT 100";

    let mut table = Table::new(&[
        "workers", "join_ms", "sort_ms", "topk_ms", "link_msgs", "link_bytes",
    ]);
    for parallelism in [1usize, 2, 4, 8] {
        let (idaa, mut s) = build(parallelism);
        for q in [join, sort, topk] {
            idaa.query(&mut s, q).unwrap(); // warm
        }
        let (_, join_t, l1) = measure(&idaa, || idaa.query(&mut s, join).unwrap());
        let (_, sort_t, l2) = measure(&idaa, || idaa.query(&mut s, sort).unwrap());
        let (_, topk_t, l3) = measure(&idaa, || idaa.query(&mut s, topk).unwrap());
        let msgs = l1.total_messages() + l2.total_messages() + l3.total_messages();
        let bytes = l1.total_bytes() + l2.total_bytes() + l3.total_bytes();
        table.row(&[
            parallelism.to_string(),
            ms(join_t),
            ms(sort_t),
            ms(topk_t),
            msgs.to_string(),
            fmt_bytes(bytes),
        ]);
    }
    table.print();
}

/// E14 — link outage and recovery: offload-eligible queries fail over to
/// DB2, AOT statements surface -30081, committed changes queue for
/// catch-up, and an operator recovery probe restores acceleration and
/// drains the backlog. Claim: federation survives accelerator outages
/// without losing or duplicating replicated data.
pub fn e14_outage_recovery() {
    banner("E14", "scheduled link outage: failover, queued replication, recovery");
    let (idaa, mut s) = system(IdaaConfig::default());
    seed_sales(&idaa, &mut s, 10_000);
    accelerate(&idaa, &mut s, "SALES");
    idaa.execute(&mut s, "CREATE TABLE EVENTS (X INT) IN ACCELERATOR").unwrap();
    idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();

    let mut table = Table::new(&[
        "phase", "query_route", "aot_errs", "backlog_rows", "link_msgs", "link_bytes",
        "failed_xfers", "phase_ms",
    ]);
    let mut next_id = 100_000usize;
    let mut phase = |name: &str,
                     s: &mut Session,
                     prep: &dyn Fn(&Idaa),
                     table: &mut Table| {
        let before = idaa.link().metrics();
        let t0 = Instant::now();
        prep(&idaa);
        let mut aot_errs = 0u64;
        let mut route = idaa_core::Route::Host;
        for i in 0..40 {
            let id = next_id;
            next_id += 1;
            idaa.execute(
                s,
                &format!("INSERT INTO SALES VALUES ({id}, 'EU', 'P001', 1.5E0, 1, DATE '2015-01-01')"),
            )
            .unwrap();
            if idaa.execute(s, &format!("INSERT INTO EVENTS VALUES ({i})")).is_err() {
                aot_errs += 1;
            }
            route = idaa.execute(s, "SELECT COUNT(*) FROM sales").unwrap().route;
        }
        let wall = t0.elapsed();
        let m = idaa.link().metrics().since(&before);
        table.row(&[
            name.into(),
            format!("{route:?}"),
            aot_errs.to_string(),
            idaa.replication_backlog().to_string(),
            m.total_messages().to_string(),
            fmt_bytes(m.total_bytes()),
            m.failures.to_string(),
            ms(wall),
        ]);
    };

    phase("healthy", &mut s, &|_| {}, &mut table);
    phase(
        "outage",
        &mut s,
        &|idaa: &Idaa| {
            let now = idaa.link().now();
            idaa.set_fault_plan(idaa_netsim::FaultPlan::outage(
                now,
                now + std::time::Duration::from_secs(30),
            ));
        },
        &mut table,
    );
    phase(
        "recovery",
        &mut s,
        &|idaa: &Idaa| {
            // The outage window passes on the virtual clock; an operator
            // probe restores the accelerator and drains the backlog.
            idaa.link().advance(std::time::Duration::from_secs(35));
            assert!(idaa.recover(), "recovery probe after the outage window");
        },
        &mut table,
    );
    table.print();
    println!(
        "note: outage-phase AOT statements fail with SQLCODE -30081; the recovery \
         probe replays queued commits and replication catches up before new work."
    );
}

/// E15 — wire codec: logical (pre-encoding) vs. encoded bytes and message
/// counts per workload. Dictionary/RLE/delta columns compress the
/// low-cardinality strings and sequential ids these workloads ship; framing
/// is deterministic, so every column except `*_ms` is byte-stable.
pub fn e15_wire_codec() {
    banner("E15", "wire codec: logical vs. encoded bytes per workload");
    let mut table = Table::new(&[
        "workload", "rows", "logical", "wire", "ratio", "msgs", "wire_ms",
    ]);
    let ratio = |m: &idaa_netsim::LinkMetrics| {
        if m.total_bytes() == 0 {
            "-".to_string()
        } else {
            format!("{:.2}x", m.total_logical_bytes() as f64 / m.total_bytes() as f64)
        }
    };
    const ROWS: usize = 20_000;

    // Bulk load: seeded event stream straight into an AOT — the loader's
    // chunked frame path.
    {
        let (idaa, _s) = system(IdaaConfig::default());
        let mut s = idaa.session(SYSADM);
        idaa.execute(
            &mut s,
            "CREATE TABLE EVENTS (EVENT_ID INT, USER_ID INT, TOPIC VARCHAR(10), \
             SENTIMENT DOUBLE, POSTED_AT TIMESTAMP) IN ACCELERATOR",
        )
        .unwrap();
        idaa.link().reset();
        let (_, _, m) = measure(&idaa, || {
            Loader::new(SYSADM)
                .load(
                    &idaa,
                    Box::new(EventSource::new(ROWS, 7)),
                    &idaa_common::ObjectName::bare("EVENTS"),
                    LoadTarget::AcceleratorDirect,
                )
                .unwrap()
        });
        table.row(&[
            "bulk load (direct)".into(),
            ROWS.to_string(),
            fmt_bytes(m.total_logical_bytes()),
            fmt_bytes(m.total_bytes()),
            ratio(&m),
            m.total_messages().to_string(),
            ms(m.wire_time),
        ]);
    }

    // INSERT … SELECT with a DB2 target: the accelerator's result set comes
    // back to the host as encoded frames.
    {
        let (idaa, mut s) = system(IdaaConfig::default());
        seed_sales(&idaa, &mut s, ROWS);
        accelerate(&idaa, &mut s, "SALES");
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        idaa.execute(&mut s, "CREATE TABLE OUT1 (ID INT, REGION VARCHAR(8), AMOUNT DOUBLE)")
            .unwrap();
        idaa.link().reset();
        let (_, _, m) = measure(&idaa, || {
            idaa.execute(&mut s, "INSERT INTO OUT1 SELECT id, region, amount FROM sales")
                .unwrap()
        });
        table.row(&[
            "INSERT..SELECT (accel->DB2)".into(),
            ROWS.to_string(),
            fmt_bytes(m.total_logical_bytes()),
            fmt_bytes(m.total_bytes()),
            ratio(&m),
            m.total_messages().to_string(),
            ms(m.wire_time),
        ]);
    }

    // Replication catch-up: a committed host backlog drains to the
    // accelerator as per-batch change frames. Auto-replication is off so
    // the backlog accumulates and one catch-up round ships it all.
    {
        let (idaa, mut s) = system(IdaaConfig { auto_replicate: false, ..Default::default() });
        seed_sales(&idaa, &mut s, ROWS);
        accelerate(&idaa, &mut s, "SALES");
        for i in 0..ROWS / 4 {
            let id = ROWS + i;
            if i % 500 == 0 {
                idaa.execute(
                    &mut s,
                    &format!(
                        "INSERT INTO SALES VALUES ({id}, 'EU', 'P001', 1.5E0, 1, DATE '2015-01-01')"
                    ),
                )
                .unwrap();
            } else {
                idaa.execute(
                    &mut s,
                    &format!(
                        "INSERT INTO SALES VALUES ({id}, 'US', 'P002', 2.5E0, 2, DATE '2015-02-02')"
                    ),
                )
                .unwrap();
            }
        }
        idaa.link().reset();
        let (_, _, m) = measure(&idaa, || idaa.replicate_now().unwrap());
        table.row(&[
            "replication catch-up".into(),
            (ROWS / 4).to_string(),
            fmt_bytes(m.total_logical_bytes()),
            fmt_bytes(m.total_bytes()),
            ratio(&m),
            m.total_messages().to_string(),
            ms(m.wire_time),
        ]);
    }

    // Analytics write-back: results are produced and stored on the
    // accelerator, so only fixed-size control frames cross (ratio 1.00x).
    {
        let (idaa, mut s) = system(IdaaConfig::default());
        idaa_analytics::deploy_all(&idaa, SYSADM).unwrap();
        idaa.execute(
            &mut s,
            "CREATE TABLE PTS (ID INT, F0 DOUBLE, F1 DOUBLE, F2 DOUBLE, F3 DOUBLE) IN ACCELERATOR",
        )
        .unwrap();
        let mut vals = Vec::new();
        for i in 0..5_000usize {
            let c = [(0.0), (10.0), (20.0)][i % 3];
            vals.push(format!(
                "({i}, {:.2}E0, {:.2}E0, {:.2}E0, {:.2}E0)",
                c + (i % 100) as f64 / 100.0,
                c + (i % 77) as f64 / 100.0,
                c + (i % 53) as f64 / 100.0,
                c + (i % 31) as f64 / 100.0
            ));
            if vals.len() == 1000 {
                idaa.execute(&mut s, &format!("INSERT INTO PTS VALUES {}", vals.join(", ")))
                    .unwrap();
                vals.clear();
            }
        }
        idaa.link().reset();
        let (_, _, m) = measure(&idaa, || {
            idaa.query(&mut s, "CALL ANALYTICS.KMEANS('PTS', 'F0,F1,F2,F3', 3, 10, 'KM_OUT')")
                .unwrap()
        });
        table.row(&[
            "analytics write-back".into(),
            "5000".into(),
            fmt_bytes(m.total_logical_bytes()),
            fmt_bytes(m.total_bytes()),
            ratio(&m),
            m.total_messages().to_string(),
            ms(m.wire_time),
        ]);
    }
    table.print();
}

/// E16 — crash–restart recovery: checkpoint cadence vs restart cost. The
/// same AOT workload runs under different checkpoint intervals, then the
/// accelerator crashes with one transaction still in flight and an
/// operator probe restarts it. Frequent checkpoints shrink the log tail a
/// restart replays (and the virtual recovery time) at the price of more
/// checkpoint bytes written; recovery consumes virtual time only, so every
/// column except `wall_ms` is byte-stable per run.
pub fn e16_crash_recovery() {
    banner("E16", "crash recovery: checkpoint interval vs replay cost");
    let mut table = Table::new(&[
        "ckpt_every", "ckpts", "ckpt_bytes", "tail_records", "tail_bytes",
        "recovery_virt_us", "aborted", "in_doubt", "wall_ms",
    ]);
    use std::time::Duration;
    for every_us in [500u64, 2_000, 10_000, 0] {
        let (label, every) = if every_us == 0 {
            ("off".to_string(), Duration::from_secs(3600))
        } else {
            (format!("{every_us}us"), Duration::from_micros(every_us))
        };
        let (idaa, mut s) =
            system(IdaaConfig { checkpoint_every: every, ..IdaaConfig::default() });
        idaa.execute(&mut s, "CREATE TABLE EVENTS (ID INT, V INT) IN ACCELERATOR").unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();

        let t0 = Instant::now();
        let mut ckpts = 0u64;
        let mut last_cp = idaa.accel().durable().last_checkpoint_at();
        for i in 0..400 {
            idaa.execute(&mut s, &format!("INSERT INTO EVENTS VALUES ({i}, 0)")).unwrap();
            if i % 10 == 9 {
                idaa.execute(&mut s, &format!("UPDATE EVENTS SET V = V + 1 WHERE ID <= {i}"))
                    .unwrap();
            }
            // A steady virtual-clock tick makes the checkpoint cadence the
            // interval's, not the wire time's.
            idaa.link().advance(Duration::from_micros(50));
            let cp = idaa.accel().durable().last_checkpoint_at();
            if cp != last_cp {
                ckpts += 1;
                last_cp = cp;
            }
        }
        // Crash with one transaction still unprepared: recovery must abort
        // it durably.
        idaa.execute(&mut s, "BEGIN").unwrap();
        idaa.execute(&mut s, "INSERT INTO EVENTS VALUES (9999, 9)").unwrap();
        idaa.accel().crash();
        let before = idaa.link().now();
        assert!(idaa.recover(), "recovery probe must succeed on a healthy link");
        let recovery_virt = idaa.link().now() - before;
        idaa.execute(&mut s, "ROLLBACK").unwrap();
        let wall = t0.elapsed();

        let stats = idaa.last_restart().expect("the crash forced a restart");
        let n = idaa.query(&mut s, "SELECT COUNT(*) FROM events").unwrap();
        assert_eq!(
            n.scalar().unwrap(),
            &idaa_common::Value::BigInt(400),
            "replay must rebuild exactly the committed rows"
        );
        table.row(&[
            label,
            ckpts.to_string(),
            fmt_bytes(stats.checkpoint_bytes),
            stats.log_records_replayed.to_string(),
            fmt_bytes(stats.log_bytes_replayed),
            recovery_virt.as_micros().to_string(),
            stats.aborted_in_flight.to_string(),
            stats.rematerialized_in_doubt.to_string(),
            ms(wall),
        ]);
    }
    table.print();
    println!(
        "note: recovery time = fixed restart latency + (checkpoint + log tail) bytes \
         at the configured replay bandwidth, all on the virtual clock."
    );
}

/// E17 — observability: what does full statement tracing cost, and what
/// does it buy? The same offloaded workload runs with the trace sink off
/// and on; the span counts and rendered-trace bytes are deterministic
/// (virtual-clock timestamps only), so every column except `wall_ms` is
/// byte-stable per seed. A second table shows the per-operator row
/// attribution EXPLAIN ANALYZE reads off the same spans.
pub fn e17_trace_overhead() {
    banner("E17", "statement tracing: overhead + per-operator attribution");
    fn span_count(n: &idaa_common::SpanNode) -> usize {
        1 + n.children.iter().map(span_count).sum::<usize>()
    }
    let query = "SELECT region, COUNT(*), SUM(amount) FROM sales \
                 WHERE qty > 2 GROUP BY region ORDER BY region";
    let mut table = Table::new(&["tracing", "stmts", "traces", "spans", "trace_bytes", "wall_ms"]);
    let mut attribution: Option<idaa_common::SpanNode> = None;
    for traced in [false, true] {
        let (idaa, mut setup) = system(IdaaConfig::default());
        seed_sales(&idaa, &mut setup, 20_000);
        accelerate(&idaa, &mut setup, "SALES");
        idaa.tracer().set_enabled(traced);
        idaa.tracer().clear();
        // Sessions capture the sink's enablement at creation, so open the
        // measured session *after* the toggle.
        let mut s = idaa.session(SYSADM);
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        let stmts = 50usize;
        let t0 = Instant::now();
        for _ in 0..stmts {
            idaa.query(&mut s, query).unwrap();
        }
        let wall = t0.elapsed();
        let traces = idaa.tracer().statements();
        let spans: usize = traces.iter().map(|t| span_count(&t.root)).sum();
        let bytes: usize = traces.iter().map(|t| t.root.render().len()).sum();
        table.row(&[
            if traced { "on" } else { "off" }.to_string(),
            stmts.to_string(),
            traces.len().to_string(),
            spans.to_string(),
            fmt_bytes(bytes as u64),
            ms(wall),
        ]);
        if traced {
            attribution = traces.last().map(|t| t.root.clone());
        }
    }
    table.print();
    let root = attribution.expect("traced run recorded statements");
    let mut ops = Table::new(&["operator", "rows_out"]);
    for op in root.find_all("op") {
        ops.row(&[
            op.attr("op").unwrap_or("?").to_string(),
            op.attr("rows").or(op.attr("fused").map(|_| "fused")).unwrap_or("?").to_string(),
        ]);
    }
    ops.print();
    println!(
        "note: spans are stamped with virtual-clock timestamps only, so both tables \
         are byte-stable per seed; the sink caps retained statements at 1024."
    );
}

/// E18 — vectorized batch kernels: the fused filter→aggregate pipeline
/// against the row-at-a-time interpreter on the same engine and data.
/// Claim: compiling predicate conjuncts to typed column kernels with
/// selection vectors removes the interpretive hot path without changing a
/// single answer — both modes return identical rows, and every deterministic
/// column below is mode-independent.
pub fn e18_vectorized_kernels() {
    banner("E18", "vectorized batch kernels: fused filter\u{2192}agg vs interpreter");
    use idaa_accel::{AccelConfig, AccelEngine, ExecMode};
    use idaa_common::{ColumnDef, DataType, ObjectName, Schema, Value};
    use idaa_sql::{parse_statement, Statement};
    let mut table = Table::new(&["rows", "reps", "interp_ms", "vector_ms", "speedup", "rows_out"]);
    for &n in &[100_000usize, 400_000, 1_600_000] {
        let engine = AccelEngine::new(
            "APP",
            AccelConfig { slices: 4, zone_maps: true, parallel: false, parallelism: 0 },
        );
        let schema = Schema::new(vec![
            ColumnDef::new("K", DataType::BigInt),
            ColumnDef::new("V", DataType::BigInt),
            ColumnDef::new("G", DataType::Varchar(4)),
        ])
        .unwrap();
        engine.create_table(&ObjectName::bare("BIG"), schema, &[]).unwrap();
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                vec![
                    Value::BigInt(i as i64),
                    Value::BigInt((i % 997) as i64),
                    Value::Varchar(["eu", "us", "ap", "la"][i % 4].into()),
                ]
            })
            .collect();
        engine.load_committed(&ObjectName::bare("BIG"), rows).unwrap();
        // Middle 90% of the key range + a non-equality conjunct: selective
        // enough to exercise the kernels, wide enough that zone maps cannot
        // carry the win on their own.
        let sql = format!(
            "SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM big \
             WHERE k BETWEEN {} AND {} AND v <> 13 GROUP BY g ORDER BY g",
            n / 20,
            n - n / 20
        );
        let Statement::Query(q) = parse_statement(&sql).unwrap() else { unreachable!() };
        let reps = 5u32;
        let mut walls = Vec::new();
        let mut out = Vec::new();
        for mode in [ExecMode::Interpreted, ExecMode::Vectorized] {
            let t0 = Instant::now();
            let mut rows = Vec::new();
            for _ in 0..reps {
                rows = engine.query_with_mode(0, &q, mode).unwrap().rows;
            }
            walls.push(t0.elapsed());
            out.push(rows);
        }
        assert_eq!(out[0], out[1], "modes must agree bit for bit");
        table.row(&[
            n.to_string(),
            reps.to_string(),
            ms(walls[0]),
            ms(walls[1]),
            format!("{:.1}x", walls[0].as_secs_f64() / walls[1].as_secs_f64()),
            out[1].len().to_string(),
        ]);
    }
    table.print();
    println!(
        "note: identical AggState accumulation order keeps both modes bit-identical; \
         only the *_ms and speedup columns vary between machines."
    );
}

/// E19 — fleet failover: the cost of losing a shard primary mid-scatter,
/// as the replication factor grows. A 3-node fleet serves a sharded AOT;
/// node 0 is crashed at the mid-scatter site and the same gather re-runs.
/// At replication factor 1 the only path back is waiting for the crashed
/// node's own restart (checkpoint + log replay) inside the statement; at
/// factor ≥ 2 the gather retargets a replica immediately and the restarted
/// node later rejoins via a metered catch-up copy before the rebalance
/// migrates its shards home. Everything but `wall_ms` runs on the virtual
/// clock and the seeded fault stream, so the table is byte-stable per run.
pub fn e19_fleet_failover() {
    banner("E19", "fleet failover: replica factor vs failover latency + catch-up bytes");
    use idaa_core::FleetConfig;
    use idaa_netsim::CrashPlan;
    use std::time::Duration;

    let mut table = Table::new(&[
        "replicas", "post_crash_stmt", "healthy_virt_us", "failover_virt_us", "failovers",
        "catch_up_bytes", "rebalances", "fleet_bytes", "wall_ms",
    ]);
    for replicas in [1usize, 2, 3] {
        let (idaa, mut s) = system(IdaaConfig {
            fleet: FleetConfig {
                accelerators: 3,
                shards: 6,
                replication_factor: replicas,
                ..FleetConfig::default()
            },
            ..IdaaConfig::default()
        });
        idaa.execute(
            &mut s,
            "CREATE TABLE CLICKS (ID INT NOT NULL, SITE VARCHAR(8), HITS INT) \
             IN ACCELERATOR DISTRIBUTE BY HASH(ID)",
        )
        .unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        let t0 = Instant::now();
        let vals: Vec<String> = (0..600)
            .map(|i| format!("({i}, 'S{}', {})", i % 5, i % 97))
            .collect();
        idaa.execute(&mut s, &format!("INSERT INTO CLICKS VALUES {}", vals.join(", ")))
            .unwrap();

        let gather = "SELECT SITE, COUNT(*), SUM(HITS) FROM CLICKS GROUP BY SITE ORDER BY SITE";
        // Healthy gather: the baseline virtual cost of the scatter.
        let before = idaa.link().now();
        let healthy = idaa.query(&mut s, gather).unwrap();
        let healthy_virt = idaa.link().now() - before;

        // Crash the primary of shards 0 and 3 mid-scatter and re-run. With a
        // sole replica the statement fails with -904 and the operator must
        // drive recovery before retrying; the retry's restart wait is part
        // of the failover latency.
        idaa.set_crash_plan_on(0, CrashPlan::at(idaa_netsim::sites::MID_SCATTER, 1).seeded(0xE19));
        let before = idaa.link().now();
        let (post_crash, failed_over) = match idaa.query(&mut s, gather) {
            Ok(rows) => ("ok".to_string(), rows),
            Err(e) => {
                assert_eq!(e.sqlcode(), -904, "sole-replica loss surfaces as -904");
                assert!(idaa.recover_node(0), "operator recovery must succeed");
                (format!("{}", e.sqlcode()), idaa.query(&mut s, gather).unwrap())
            }
        };
        let failover_virt = idaa.link().now() - before;
        assert_eq!(healthy.rows, failed_over.rows, "failover must not change the answer");

        // Let the crashed node rejoin and the rebalance migrate shards home.
        assert!(idaa.recover_node(0), "post-crash recovery must succeed");
        idaa.link().advance(Duration::from_millis(25));
        let settled = idaa.query(&mut s, gather).unwrap();
        assert_eq!(healthy.rows, settled.rows);
        let wall = t0.elapsed();

        table.row(&[
            replicas.to_string(),
            post_crash,
            healthy_virt.as_micros().to_string(),
            failover_virt.as_micros().to_string(),
            idaa.fleet_failovers().to_string(),
            fmt_bytes(idaa.fleet_catch_up_bytes()),
            idaa.fleet_rebalances().to_string(),
            fmt_bytes(idaa.fleet_link_metrics().total_bytes()),
            ms(wall),
        ]);
    }
    table.print();
    println!(
        "note: at factor 1 the post-crash statement fails (-904) and the operator retry \
         waits out the restart; at factor >= 2 the gather retargets a replica with no \
         application-visible error, and the failover latency instead absorbs the crashed \
         node's in-statement restart plus its metered catch-up copy."
    );
}

/// E20 — late-materialized vectorized joins and Bloom-guarded gathers.
/// Part 1 pairs the vectorized join pipeline (typed keys, Bloom-guarded
/// probe, derived probe filter pushed into the scan, late materialization)
/// against the row-at-a-time interpreter it must agree with bit for bit,
/// and reports the compiled-plan cache's hit/miss split across the
/// repetitions. Part 2 runs a sharded-probe ⋈ replicated-build join on a
/// fleet with the gather pushdown on and off: the answer is identical, only
/// the gather traffic changes.
pub fn e20_join_kernels_and_pushdown() {
    banner(
        "E20",
        "late-materialized vectorized joins: typed keys + probe filter vs interpreter, \
         plan cache, fleet Bloom gathers",
    );
    use idaa_accel::{AccelConfig, AccelEngine, ExecMode};
    use idaa_common::{ColumnDef, DataType, ObjectName, Schema, Value};
    use idaa_core::FleetConfig;
    use idaa_sql::{parse_statement, Statement};
    use std::sync::atomic::Ordering;

    let mut table = Table::new(&[
        "fact_rows", "dim_rows", "reps", "interp_ms", "vector_ms", "speedup", "cache", "rows_out",
    ]);
    for &n in &[100_000usize, 400_000, 1_600_000] {
        let engine = AccelEngine::new(
            "APP",
            AccelConfig { slices: 4, zone_maps: true, parallel: false, parallelism: 0 },
        );
        let fact_schema = Schema::new(vec![
            ColumnDef::new("K", DataType::BigInt),
            ColumnDef::new("V", DataType::BigInt),
            ColumnDef::new("G", DataType::Varchar(4)),
        ])
        .unwrap();
        let dim_schema = Schema::new(vec![
            ColumnDef::new("K", DataType::BigInt),
            ColumnDef::new("NAME", DataType::Varchar(4)),
        ])
        .unwrap();
        engine.create_table(&ObjectName::bare("FACT"), fact_schema, &[]).unwrap();
        engine.create_table(&ObjectName::bare("DIM"), dim_schema, &[]).unwrap();
        let fact: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                vec![
                    Value::BigInt((i * 2_654_435_761 % n) as i64),
                    Value::BigInt((i % 997) as i64),
                    Value::Varchar(["eu", "us", "ap", "la"][i % 4].into()),
                ]
            })
            .collect();
        // A sparse dimension: ~2000 of the n fact keys can join, so the
        // derived probe filter drops almost every probe row before
        // materialization; the interpreter must evaluate them all.
        let dims = 2000usize;
        let dim: Vec<Vec<Value>> = (0..dims)
            .map(|i| {
                vec![
                    Value::BigInt((i * (n / dims)) as i64),
                    Value::Varchar(["eu", "us", "ap", "la"][i % 4].into()),
                ]
            })
            .collect();
        engine.load_committed(&ObjectName::bare("FACT"), fact).unwrap();
        engine.load_committed(&ObjectName::bare("DIM"), dim).unwrap();
        let sql = "SELECT COUNT(*), SUM(f.v) FROM fact f INNER JOIN dim d ON f.k = d.k \
                   WHERE f.v <> 13";
        let Statement::Query(q) = parse_statement(sql).unwrap() else { unreachable!() };
        let reps = 5u32;
        let mut walls = Vec::new();
        let mut out = Vec::new();
        for mode in [ExecMode::Interpreted, ExecMode::Vectorized] {
            let t0 = Instant::now();
            let mut rows = Vec::new();
            for _ in 0..reps {
                rows = engine.query_with_mode(0, &q, mode).unwrap().rows;
            }
            walls.push(t0.elapsed());
            out.push(rows);
        }
        assert_eq!(out[0], out[1], "join modes must agree bit for bit");
        let hits = engine.stats.plan_cache_hits.load(Ordering::Relaxed);
        let misses = engine.stats.plan_cache_misses.load(Ordering::Relaxed);
        table.row(&[
            n.to_string(),
            dims.to_string(),
            reps.to_string(),
            ms(walls[0]),
            ms(walls[1]),
            format!("{:.1}x", walls[0].as_secs_f64() / walls[1].as_secs_f64()),
            format!("{hits}h/{misses}m"),
            out[1].len().to_string(),
        ]);
    }
    table.print();

    let mut fleet_table = Table::new(&[
        "pushdown", "probe_rows", "dim_rows", "rows_out", "stmt_to_accel", "gather_to_host",
    ]);
    let mut answers = Vec::new();
    for pushdown in [false, true] {
        let (idaa, mut s) = system(IdaaConfig {
            fleet: FleetConfig {
                accelerators: 3,
                shards: 4,
                replication_factor: 2,
                join_pushdown: pushdown,
                ..FleetConfig::default()
            },
            ..IdaaConfig::default()
        });
        idaa.execute(
            &mut s,
            "CREATE TABLE FJOIN (X INT NOT NULL, G VARCHAR(2)) IN ACCELERATOR \
             DISTRIBUTE BY HASH(X)",
        )
        .unwrap();
        let vals: Vec<String> =
            (0..4000).map(|i| format!("({i}, '{}')", ["a", "b"][i % 2])).collect();
        for chunk in vals.chunks(500) {
            idaa.execute(&mut s, &format!("INSERT INTO FJOIN VALUES {}", chunk.join(", ")))
                .unwrap();
        }
        idaa.execute(&mut s, "CREATE TABLE FDIM (X INT NOT NULL, NAME VARCHAR(4))").unwrap();
        let dims: Vec<String> = (0..40).map(|i| format!("({}, 'D{:02}')", i * 100, i)).collect();
        idaa.execute(&mut s, &format!("INSERT INTO FDIM VALUES {}", dims.join(", "))).unwrap();
        accelerate(&idaa, &mut s, "FDIM");
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        let join = "SELECT f.x, d.name FROM fjoin f INNER JOIN fdim d ON f.x = d.x \
                    ORDER BY f.x, d.name";
        let (rows, _, delta) = measure(&idaa, || idaa.query(&mut s, join).unwrap());
        fleet_table.row(&[
            if pushdown { "on" } else { "off" }.to_string(),
            "4000".to_string(),
            "40".to_string(),
            rows.len().to_string(),
            fmt_bytes(delta.bytes_to_accel),
            fmt_bytes(delta.bytes_to_host),
        ]);
        answers.push(rows.rows);
    }
    assert_eq!(answers[0], answers[1], "gather pushdown must never change the answer");
    fleet_table.print();
    println!(
        "note: both tables are byte-stable except *_ms and speedup — the join result, the \
         cache hit/miss split, and the gather byte counts are deterministic; pushdown=on \
         charges the shipped key summary on the request leg and drops non-joining probe \
         rows before the reply frame is encoded."
    );
}

/// E21 — storage faults and self-healing durability. Part 1 sweeps the
/// background scrub interval under one pinned bit-rot firing: a faster
/// scrub finds the latent corruption sooner (shrinking the exposure
/// window before a crash would need the damaged record) and repairs it
/// with a local checkpoint, while `off` leaves detection to recovery,
/// which must discard the media and re-materialize the node from the
/// host. Part 2 prices the three repair paths — a rotted checkpoint
/// falling back to the previous valid image (longer log replay), a host
/// re-shipment after unrepairable log rot, and a fleet replica copy.
/// Every column except `wall_ms` is byte-stable per seed.
pub fn e21_storage_faults() {
    banner(
        "E21",
        "storage faults: scrub interval vs detection latency, repair-path byte costs",
    );
    use idaa_netsim::{sites, DiskFaultPlan};
    use std::time::Duration;

    let mut table = Table::new(&[
        "scrub_every", "detected_by", "exposure_virt_us", "scrub_steps", "scrub_scanned",
        "repair", "repair_bytes", "rows_ok", "wall_ms",
    ]);
    for every_us in [0u64, 2_000, 500, 100] {
        let (label, every) = if every_us == 0 {
            ("off".to_string(), Duration::ZERO)
        } else {
            (format!("{every_us}us"), Duration::from_micros(every_us))
        };
        let (idaa, mut s) = system(IdaaConfig {
            // Checkpoints off so the rotted record stays in the replay
            // tail: detection is the scrub's job or recovery's, nothing
            // quietly truncates the damage away.
            checkpoint_every: Duration::from_secs(3600),
            scrub_every: every,
            ..IdaaConfig::default()
        });
        // A replicated, loaded table: if recovery has to discard the
        // media, the rebuild re-ships it from the host — no data loss,
        // just metered repair traffic.
        idaa.execute(&mut s, "CREATE TABLE EVENTS (ID INT NOT NULL, V INT)").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('EVENTS')").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('EVENTS')").unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        idaa.set_disk_plan(DiskFaultPlan::at(sites::BITROT_LOG_SEGMENT, 5).seeded(0xE21));

        let t0 = Instant::now();
        let mut rot_at = None;
        let mut found_at = None;
        for i in 0..300 {
            idaa.execute(&mut s, &format!("INSERT INTO EVENTS VALUES ({i}, 0)")).unwrap();
            if i % 20 == 19 {
                idaa.replicate_now().unwrap();
            }
            idaa.link().advance(Duration::from_micros(50));
            if rot_at.is_none() && !idaa.faults.registry.fired().is_empty() {
                rot_at = Some(idaa.link().now());
            }
            if found_at.is_none() && idaa.metrics().counter("disk.corruptions_detected") > 0 {
                found_at = Some(idaa.link().now());
            }
        }
        idaa.replicate_now().unwrap();
        let rot_at = rot_at.expect("the pinned bit-rot must fire within the workload");
        let scrubbed = found_at.is_some();
        // Crash: if the scrub never found the rot, recovery does — and the
        // exposure window is the whole remaining run.
        idaa.accel().crash();
        assert!(idaa.recover(), "every run must converge to a serving node");
        let found_at = found_at.unwrap_or_else(|| idaa.link().now());
        let wall = t0.elapsed();

        let n = idaa.query(&mut s, "SELECT COUNT(*) FROM events").unwrap();
        assert_eq!(
            n.scalar().unwrap(),
            &idaa_common::Value::BigInt(300),
            "a storage fault must never change the answer"
        );
        let rebuilds = idaa.metrics().counter("disk.node_rebuilds");
        assert_eq!(rebuilds, u64::from(!scrubbed), "scrub repair must pre-empt the rebuild");
        table.row(&[
            label,
            if scrubbed { "scrub" } else { "recovery" }.to_string(),
            (found_at - rot_at).as_micros().to_string(),
            idaa.metrics().counter("disk.scrub.steps").to_string(),
            fmt_bytes(idaa.metrics().counter("disk.scrub.scanned_bytes")),
            if scrubbed { "local_ckpt" } else { "host_reship" }.to_string(),
            fmt_bytes(idaa.metrics().counter("disk.repair.bytes")),
            n.scalar().unwrap().render(),
            ms(wall),
        ]);
    }
    table.print();

    // Part 2: what each repair path costs in bytes, same fault family.
    let mut paths = Table::new(&[
        "path", "ckpt_fallbacks", "replayed", "repair_bytes", "catch_up_bytes", "quarantined",
    ]);

    // (a) A rotted checkpoint: recovery discards it and replays the longer
    // log tail behind the previous valid image — repair is pure replay.
    {
        let (idaa, mut s) = system(IdaaConfig {
            checkpoint_every: Duration::from_micros(300),
            ..IdaaConfig::default()
        });
        idaa.execute(&mut s, "CREATE TABLE EVENTS (ID INT, V INT) IN ACCELERATOR").unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        idaa.set_disk_plan(DiskFaultPlan::at(sites::BITROT_CHECKPOINT, 2).seeded(0xE21));
        let mut crashed = false;
        for i in 0..200 {
            idaa.execute(&mut s, &format!("INSERT INTO EVENTS VALUES ({i}, 0)")).unwrap();
            // Crash at the firing, while the rotted image is still the
            // newest retained checkpoint.
            if !crashed && !idaa.faults.registry.fired().is_empty() {
                idaa.accel().crash();
                idaa.link().advance(Duration::from_millis(10));
                assert!(idaa.recover(), "fallback recovery must succeed");
                crashed = true;
            }
            idaa.link().advance(Duration::from_micros(100));
        }
        assert!(crashed, "the pinned checkpoint rot must fire");
        let stats = idaa.last_restart().expect("the crash forced a restart");
        assert!(stats.checkpoint_fallbacks >= 1);
        paths.row(&[
            "ckpt_fallback".to_string(),
            stats.checkpoint_fallbacks.to_string(),
            fmt_bytes(stats.checkpoint_bytes + stats.log_bytes_replayed),
            fmt_bytes(idaa.metrics().counter("disk.repair.bytes")),
            "0".to_string(),
            "0".to_string(),
        ]);
    }

    // (b) Unrepairable log rot on a single accelerator: the rebuild
    // re-ships every replicated table from the host over the wire.
    {
        let (idaa, mut s) = system(IdaaConfig {
            checkpoint_every: Duration::from_secs(3600),
            ..IdaaConfig::default()
        });
        idaa.execute(&mut s, "CREATE TABLE EVENTS (ID INT NOT NULL, V INT)").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_ADD_TABLES('EVENTS')").unwrap();
        idaa.execute(&mut s, "CALL ACCEL_LOAD_TABLES('EVENTS')").unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        idaa.set_disk_plan(DiskFaultPlan::at(sites::BITROT_LOG_SEGMENT, 3).seeded(0xE21));
        for i in 0..200 {
            idaa.execute(&mut s, &format!("INSERT INTO EVENTS VALUES ({i}, 0)")).unwrap();
        }
        idaa.replicate_now().unwrap();
        idaa.accel().crash();
        assert!(idaa.recover(), "the rebuild path must bring the node back");
        let stats = idaa.last_restart().expect("the crash forced a restart");
        let n = idaa.query(&mut s, "SELECT COUNT(*) FROM events").unwrap();
        assert_eq!(n.scalar().unwrap(), &idaa_common::Value::BigInt(200));
        paths.row(&[
            "host_reship".to_string(),
            stats.checkpoint_fallbacks.to_string(),
            fmt_bytes(stats.checkpoint_bytes + stats.log_bytes_replayed),
            fmt_bytes(idaa.metrics().counter("disk.repair.bytes")),
            "0".to_string(),
            idaa.accel().quarantined_tables().len().to_string(),
        ]);
    }

    // (c) The same rot on one node of a fleet: shard contents come back
    // from live replicas via the standard metered catch-up copy.
    {
        use idaa_core::FleetConfig;
        let (idaa, mut s) = system(IdaaConfig {
            checkpoint_every: Duration::from_secs(3600),
            fleet: FleetConfig {
                accelerators: 3,
                shards: 4,
                replication_factor: 2,
                ..FleetConfig::default()
            },
            ..IdaaConfig::default()
        });
        idaa.execute(
            &mut s,
            "CREATE TABLE EVENTS (ID INT NOT NULL, V INT) IN ACCELERATOR \
             DISTRIBUTE BY HASH(ID)",
        )
        .unwrap();
        idaa.execute(&mut s, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        idaa.set_disk_plan_on(1, DiskFaultPlan::at(sites::BITROT_LOG_SEGMENT, 5).seeded(0xE21));
        for i in 0..200 {
            idaa.execute(&mut s, &format!("INSERT INTO EVENTS VALUES ({i}, 0)")).unwrap();
        }
        idaa.node_engine(1).crash();
        assert!(idaa.recover_node(1), "replica repair must bring node 1 back");
        let n = idaa.query(&mut s, "SELECT COUNT(*) FROM events").unwrap();
        assert_eq!(n.scalar().unwrap(), &idaa_common::Value::BigInt(200));
        paths.row(&[
            "replica_copy".to_string(),
            "0".to_string(),
            "0 B".to_string(),
            fmt_bytes(idaa.metrics().counter("disk.repair.bytes")),
            fmt_bytes(idaa.metrics().counter("fleet.catch_up.bytes")),
            idaa.node_engine(1).quarantined_tables().len().to_string(),
        ]);
    }
    paths.print();
    println!(
        "note: every injected fault converges to the fault-free answer or a deterministic \
         error — never silently wrong rows. Scrub verification I/O and every repair byte \
         are charged to the virtual clock / metered links, so all columns except wall_ms \
         are byte-stable per seed."
    );
}

/// E22 — workload scheduler: queue-time percentiles and scheduler rounds
/// as the concurrent session count grows at a fixed admission limit.
/// Each seat offers the same fixed statement load, so total offered work
/// grows with the session count. Claim: the admission limit — not the
/// session count — gates the accelerator, so throughput stays flat while
/// per-statement queue time stretches with the number of competing
/// seats; and because admission, queue waits and reschedule ticks all
/// live on the virtual clock, every column except `wall_ms` is
/// byte-stable.
pub fn e22_workload_scheduler() {
    banner(
        "E22",
        "workload scheduler: queue-time percentiles vs session count at a fixed admission limit",
    );
    use idaa_core::{Server, ServerConfig};

    let mut table = Table::new(&[
        "sessions", "limit", "stmts", "rounds", "makespan_virt_us", "stmts_per_vsec",
        "q50_us", "q95_us", "qmax_us", "bytes_moved", "wall_ms",
    ]);
    for sessions in [1usize, 2, 4, 8] {
        let (idaa, mut s) = system(IdaaConfig::default());
        seed_sales(&idaa, &mut s, 500);
        accelerate(&idaa, &mut s, "SALES");
        drop(s);
        let srv = Server::with_idaa(
            idaa,
            ServerConfig { admission_limit: 2, ..ServerConfig::default() },
        );
        let seats: Vec<_> = (0..sessions).map(|_| srv.connect(SYSADM).unwrap()).collect();
        for &seat in &seats {
            srv.execute(seat, "SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        }
        let queries = [
            "SELECT REGION, COUNT(*), SUM(QTY) FROM SALES GROUP BY REGION ORDER BY REGION",
            "SELECT COUNT(*) FROM SALES WHERE QTY > 3",
            "SELECT REGION, SUM(AMOUNT) FROM SALES GROUP BY REGION ORDER BY REGION",
        ];
        let bytes_before = srv.idaa().link().metrics().total_bytes();
        let start = srv.idaa().link().now();
        let t0 = Instant::now();
        let stmts = 12 * sessions;
        for i in 0..stmts {
            srv.submit(seats[i % seats.len()], queries[i % queries.len()]).unwrap();
        }
        let completions = srv.run_until_idle();
        let wall = t0.elapsed();
        let makespan = srv.idaa().link().now() - start;
        assert_eq!(completions.len(), stmts);
        assert!(
            completions.iter().all(|c| c.result.is_ok()),
            "a clean scheduler run completes every statement"
        );
        let mut q: Vec<u64> = completions.iter().map(|c| c.queued.as_micros() as u64).collect();
        q.sort_unstable();
        let pct = |p: usize| q[(q.len() - 1) * p / 100];
        table.row(&[
            sessions.to_string(),
            srv.admission_limit().to_string(),
            completions.len().to_string(),
            srv.rounds().to_string(),
            makespan.as_micros().to_string(),
            format!("{:.0}", completions.len() as f64 / makespan.as_secs_f64()),
            pct(50).to_string(),
            pct(95).to_string(),
            q[q.len() - 1].to_string(),
            fmt_bytes(srv.idaa().link().metrics().total_bytes() - bytes_before),
            ms(wall),
        ]);
    }
    table.print();
    println!(
        "note: queue waits and reschedule ticks are charged to the virtual clock only \
         (LinkMetrics::fault_time), so the admission limit caps accelerator concurrency \
         without perturbing any delivered byte/message counter — every column except \
         wall_ms is byte-stable."
    );
}
