//! Fixed-point `DECIMAL(p,s)` arithmetic.
//!
//! DB2's `DECIMAL` is pervasive in the ELT workloads the paper targets, so
//! the reproduction models it properly instead of falling back to `f64`.
//! A [`Decimal`] is an `i128` count of scale units; arithmetic aligns scales
//! the way DB2 does (result scale = max input scale for `+`/`-`, sum of
//! scales for `*`, dividend scale for `/` after rescaling).

use crate::error::{Error, Result};
use std::cmp::Ordering;
use std::fmt;

/// Maximum supported scale (digits right of the decimal point).
pub const MAX_SCALE: u8 = 31;

/// A fixed-point decimal number: `units * 10^-scale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decimal {
    units: i128,
    scale: u8,
}

fn pow10(n: u8) -> i128 {
    10i128.pow(n as u32)
}

impl Decimal {
    /// Build from raw units and scale.
    pub fn new(units: i128, scale: u8) -> Self {
        Decimal { units, scale }
    }

    /// Build from an integer (scale 0).
    pub fn from_int(v: i64) -> Self {
        Decimal { units: v as i128, scale: 0 }
    }

    /// Raw unit count.
    pub fn units(&self) -> i128 {
        self.units
    }

    /// Scale (digits right of the point).
    pub fn scale(&self) -> u8 {
        self.scale
    }

    /// Approximate `f64` value (used when mixing DECIMAL and DOUBLE).
    pub fn to_f64(&self) -> f64 {
        self.units as f64 / pow10(self.scale) as f64
    }

    /// Truncate toward zero to an `i64`, as DB2 does when casting to
    /// INTEGER family types.
    pub fn to_i64_trunc(&self) -> i64 {
        (self.units / pow10(self.scale)) as i64
    }

    /// Rescale to `scale`, truncating extra fractional digits (DB2 CAST
    /// semantics truncate rather than round).
    pub fn rescale(&self, scale: u8) -> Result<Decimal> {
        if scale > MAX_SCALE {
            return Err(Error::Arithmetic(format!("decimal scale {scale} exceeds maximum {MAX_SCALE}")));
        }
        let units = match scale.cmp(&self.scale) {
            Ordering::Equal => self.units,
            Ordering::Greater => self
                .units
                .checked_mul(pow10(scale - self.scale))
                .ok_or_else(|| Error::Arithmetic("decimal overflow during rescale".into()))?,
            Ordering::Less => self.units / pow10(self.scale - scale),
        };
        Ok(Decimal { units, scale })
    }

    fn aligned(a: &Decimal, b: &Decimal) -> Result<(i128, i128, u8)> {
        let scale = a.scale.max(b.scale);
        Ok((a.rescale(scale)?.units, b.rescale(scale)?.units, scale))
    }

    /// Checked addition with DB2 scale alignment.
    pub fn add(&self, other: &Decimal) -> Result<Decimal> {
        let (a, b, scale) = Self::aligned(self, other)?;
        let units = a
            .checked_add(b)
            .ok_or_else(|| Error::Arithmetic("decimal overflow in addition".into()))?;
        Ok(Decimal { units, scale })
    }

    /// Checked subtraction with DB2 scale alignment.
    pub fn sub(&self, other: &Decimal) -> Result<Decimal> {
        let (a, b, scale) = Self::aligned(self, other)?;
        let units = a
            .checked_sub(b)
            .ok_or_else(|| Error::Arithmetic("decimal overflow in subtraction".into()))?;
        Ok(Decimal { units, scale })
    }

    /// Checked multiplication; result scale is the sum of scales, capped at
    /// [`MAX_SCALE`] with truncation (mirrors DB2's scale arithmetic).
    pub fn mul(&self, other: &Decimal) -> Result<Decimal> {
        let units = self
            .units
            .checked_mul(other.units)
            .ok_or_else(|| Error::Arithmetic("decimal overflow in multiplication".into()))?;
        let raw_scale = self.scale as u16 + other.scale as u16;
        let d = Decimal { units, scale: raw_scale.min(MAX_SCALE as u16) as u8 };
        if raw_scale > MAX_SCALE as u16 {
            // The overflowed digits were already merged into `units`; divide
            // them back out.
            let excess = (raw_scale - MAX_SCALE as u16) as u8;
            return Ok(Decimal { units: units / pow10(excess), scale: MAX_SCALE });
        }
        Ok(d)
    }

    /// Checked division. The result keeps `max(scale_a, scale_b) + 6` digits
    /// of scale (a pragmatic stand-in for DB2's 15-digit rule), truncated.
    pub fn div(&self, other: &Decimal) -> Result<Decimal> {
        if other.units == 0 {
            return Err(Error::Arithmetic("division by zero".into()));
        }
        let scale = (self.scale.max(other.scale) + 6).min(MAX_SCALE);
        // numerator * 10^(scale + other.scale - self.scale) / other.units
        let shift = scale + other.scale - self.scale.min(scale + other.scale);
        let num = self
            .units
            .checked_mul(pow10(shift))
            .ok_or_else(|| Error::Arithmetic("decimal overflow in division".into()))?;
        Ok(Decimal { units: num / other.units, scale })
    }

    /// Unary negation.
    pub fn neg(&self) -> Decimal {
        Decimal { units: -self.units, scale: self.scale }
    }

    /// Absolute value.
    pub fn abs(&self) -> Decimal {
        Decimal { units: self.units.abs(), scale: self.scale }
    }

    /// True if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.units == 0
    }

    /// Parse a decimal literal such as `-12.345`.
    pub fn parse(text: &str) -> Result<Decimal> {
        let text = text.trim();
        let (neg, digits) = match text.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, text.strip_prefix('+').unwrap_or(text)),
        };
        let (int_part, frac_part) = match digits.split_once('.') {
            Some((i, f)) => (i, f),
            None => (digits, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(Error::Parse(format!("invalid decimal literal '{text}'")));
        }
        if frac_part.len() > MAX_SCALE as usize {
            return Err(Error::Parse(format!("decimal literal '{text}' exceeds maximum scale {MAX_SCALE}")));
        }
        let mut units: i128 = 0;
        for c in int_part.chars().chain(frac_part.chars()) {
            let d = c
                .to_digit(10)
                .ok_or_else(|| Error::Parse(format!("invalid decimal literal '{text}'")))? as i128;
            units = units
                .checked_mul(10)
                .and_then(|u| u.checked_add(d))
                .ok_or_else(|| Error::Arithmetic(format!("decimal literal '{text}' overflows")))?;
        }
        if neg {
            units = -units;
        }
        Ok(Decimal { units, scale: frac_part.len() as u8 })
    }

    /// Total-order comparison after scale alignment. Saturates (rather than
    /// erroring) on the pathological rescale-overflow case, since ordering
    /// must be total for sorting.
    pub fn compare(&self, other: &Decimal) -> Ordering {
        match Self::aligned(self, other) {
            Ok((a, b, _)) => a.cmp(&b),
            Err(_) => self.to_f64().partial_cmp(&other.to_f64()).unwrap_or(Ordering::Equal),
        }
    }
}

impl PartialOrd for Decimal {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Decimal {
    fn cmp(&self, other: &Self) -> Ordering {
        self.compare(other)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.units);
        }
        let sign = if self.units < 0 { "-" } else { "" };
        let abs = self.units.unsigned_abs();
        let p = pow10(self.scale) as u128;
        write!(f, "{}{}.{:0width$}", sign, abs / p, abs % p, width = self.scale as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["0", "1", "-1", "12.50", "-0.05", "123456789.123456"] {
            let d = Decimal::parse(s).unwrap();
            assert_eq!(d.to_string(), s.trim_start_matches('+'));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Decimal::parse("abc").is_err());
        assert!(Decimal::parse("").is_err());
        assert!(Decimal::parse("1.2.3").is_err());
        assert!(Decimal::parse(".").is_err());
    }

    #[test]
    fn addition_aligns_scales() {
        let a = Decimal::parse("1.5").unwrap();
        let b = Decimal::parse("2.25").unwrap();
        let c = a.add(&b).unwrap();
        assert_eq!(c.to_string(), "3.75");
        assert_eq!(c.scale(), 2);
    }

    #[test]
    fn subtraction_can_go_negative() {
        let a = Decimal::parse("1.00").unwrap();
        let b = Decimal::parse("2.5").unwrap();
        assert_eq!(a.sub(&b).unwrap().to_string(), "-1.50");
    }

    #[test]
    fn multiplication_sums_scales() {
        let a = Decimal::parse("1.5").unwrap();
        let b = Decimal::parse("0.25").unwrap();
        let c = a.mul(&b).unwrap();
        assert_eq!(c.to_string(), "0.375");
        assert_eq!(c.scale(), 3);
    }

    #[test]
    fn division_truncates() {
        let a = Decimal::parse("1").unwrap();
        let b = Decimal::parse("3").unwrap();
        let c = a.div(&b).unwrap();
        assert_eq!(c.to_string(), "0.333333");
    }

    #[test]
    fn division_by_zero_errors() {
        let a = Decimal::from_int(1);
        let b = Decimal::from_int(0);
        assert!(matches!(a.div(&b), Err(Error::Arithmetic(_))));
    }

    #[test]
    fn comparison_across_scales() {
        let a = Decimal::parse("1.50").unwrap();
        let b = Decimal::parse("1.5").unwrap();
        assert_eq!(a.compare(&b), Ordering::Equal);
        assert!(Decimal::parse("2.1").unwrap() > Decimal::parse("2.09").unwrap());
        assert!(Decimal::parse("-3").unwrap() < Decimal::parse("0.001").unwrap());
    }

    #[test]
    fn rescale_truncates_not_rounds() {
        let d = Decimal::parse("1.999").unwrap();
        assert_eq!(d.rescale(1).unwrap().to_string(), "1.9");
        assert_eq!(d.rescale(5).unwrap().to_string(), "1.99900");
    }

    #[test]
    fn cast_to_i64_truncates_toward_zero() {
        assert_eq!(Decimal::parse("2.9").unwrap().to_i64_trunc(), 2);
        assert_eq!(Decimal::parse("-2.9").unwrap().to_i64_trunc(), -2);
    }

    #[test]
    fn neg_abs_zero() {
        let d = Decimal::parse("-4.2").unwrap();
        assert_eq!(d.neg().to_string(), "4.2");
        assert_eq!(d.abs().to_string(), "4.2");
        assert!(!d.is_zero());
        assert!(Decimal::parse("0.00").unwrap().is_zero());
    }
}
