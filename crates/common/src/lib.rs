//! # idaa-common
//!
//! Shared foundation types for the `idaa-rs` workspace: SQL values, data
//! types, schemas, rows, identifiers and the workspace-wide error type.
//!
//! Everything in this crate is deliberately engine-agnostic: both the
//! DB2-style host engine (`idaa-host`) and the Netezza-style accelerator
//! engine (`idaa-accel`) speak in terms of these types, which is what makes
//! shipping rows across the federation boundary (and metering the bytes that
//! cross it) straightforward.

pub mod decimal;
pub mod error;
pub mod ident;
pub mod metrics;
pub mod row;
pub mod schema;
pub mod trace;
pub mod types;
pub mod value;
pub mod wire;

pub use decimal::Decimal;
pub use error::{Error, Result};
pub use ident::ObjectName;
pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use row::{Row, Rows};
pub use schema::{ColumnDef, Schema};
pub use trace::{SpanId, SpanNode, StatementTrace, Trace, TraceSink};
pub use types::DataType;
pub use value::Value;
