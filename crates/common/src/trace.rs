//! Deterministic query-lifecycle tracing.
//!
//! Every statement the federation executes produces a **span tree**: parse,
//! privilege checks, the routing decision (with its reason), each wire
//! transfer, per-operator execution, retries, and recovery events. Spans are
//! stamped exclusively with the `idaa-netsim` *virtual clock*, so a given
//! seed yields a byte-identical trace rendering — tests assert on structure
//! ("this INSERT…SELECT shipped control frames only") instead of
//! reverse-engineering byte counts. Wall-clock time is never recorded here;
//! anything wall-clock lives in the experiment `*_ms` columns, which are the
//! one place allowed to vary run-to-run.
//!
//! The API is deliberately forgiving: a [`Trace`] is either *active* (backed
//! by a shared arena) or *disabled* (every call is a no-op), so call sites
//! never branch on whether tracing is on.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Handle to one span in a [`Trace`] arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanId(usize);

#[derive(Debug)]
struct RawSpan {
    name: String,
    attrs: Vec<(String, String)>,
    start: Duration,
    end: Option<Duration>,
    children: Vec<usize>,
}

#[derive(Debug, Default)]
struct TraceInner {
    spans: Vec<RawSpan>,
    /// Open-span stack; new spans and events attach to the top.
    stack: Vec<usize>,
}

/// A cheaply clonable tracer. Cloning shares the underlying arena, so a
/// session and the internals it calls into all append to the same tree.
#[derive(Clone, Debug, Default)]
pub struct Trace(Option<Arc<Mutex<TraceInner>>>);

impl Trace {
    /// An active trace with an empty arena.
    pub fn enabled() -> Self {
        Trace(Some(Arc::new(Mutex::new(TraceInner::default()))))
    }

    /// A no-op trace: every method returns immediately.
    pub fn disabled() -> Self {
        Trace(None)
    }

    /// True when this trace records spans at all.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// True when a span is currently open (used to detect re-entrant
    /// statement execution: only the outermost statement owns the root).
    pub fn in_statement(&self) -> bool {
        match &self.0 {
            Some(inner) => !inner.lock().unwrap().stack.is_empty(),
            None => false,
        }
    }

    /// Open a span as a child of the innermost open span (or as a root).
    pub fn begin(&self, name: &str, now: Duration) -> SpanId {
        let Some(inner) = &self.0 else { return SpanId(usize::MAX) };
        let mut t = inner.lock().unwrap();
        let id = t.spans.len();
        t.spans.push(RawSpan {
            name: name.to_string(),
            attrs: Vec::new(),
            start: now,
            end: None,
            children: Vec::new(),
        });
        if let Some(&parent) = t.stack.last() {
            t.spans[parent].children.push(id);
        }
        t.stack.push(id);
        SpanId(id)
    }

    /// Close a span. Any spans opened after it that were never closed are
    /// closed with it (so error paths cannot leave the tree ill-nested).
    pub fn end(&self, id: SpanId, now: Duration) {
        let Some(inner) = &self.0 else { return };
        let mut t = inner.lock().unwrap();
        while let Some(top) = t.stack.pop() {
            if t.spans[top].end.is_none() {
                t.spans[top].end = Some(now);
            }
            if top == id.0 {
                break;
            }
        }
    }

    /// Attach an attribute to a span. Duplicate keys keep the last value.
    pub fn attr(&self, id: SpanId, key: &str, value: impl ToString) {
        let Some(inner) = &self.0 else { return };
        let mut t = inner.lock().unwrap();
        if let Some(span) = t.spans.get_mut(id.0) {
            let value = value.to_string();
            match span.attrs.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = value,
                None => span.attrs.push((key.to_string(), value)),
            }
        }
    }

    /// Record a zero-duration child span (an *event*) under the innermost
    /// open span.
    pub fn event(&self, name: &str, attrs: &[(&str, &dyn std::fmt::Display)], now: Duration) {
        if self.0.is_none() {
            return;
        }
        let id = self.begin(name, now);
        for (k, v) in attrs {
            self.attr(id, k, v);
        }
        self.end(id, now);
    }

    /// Close the span (stamping `now`), snapshot its subtree, and — when it
    /// was the outermost open span — reset the arena for the next statement.
    pub fn finish(&self, id: SpanId, now: Duration) -> Option<SpanNode> {
        let Some(inner) = &self.0 else { return None };
        self.end(id, now);
        let mut t = inner.lock().unwrap();
        let node = snapshot(&t.spans, id.0);
        if t.stack.is_empty() {
            t.spans.clear();
        }
        node
    }
}

fn snapshot(spans: &[RawSpan], id: usize) -> Option<SpanNode> {
    let raw = spans.get(id)?;
    Some(SpanNode {
        name: raw.name.clone(),
        attrs: raw.attrs.clone(),
        start: raw.start,
        end: raw.end.unwrap_or(raw.start),
        children: raw.children.iter().filter_map(|&c| snapshot(spans, c)).collect(),
    })
}

/// An immutable snapshot of one span and its subtree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    pub name: String,
    /// Insertion-ordered `(key, value)` pairs; rendering sorts by key.
    pub attrs: Vec<(String, String)>,
    /// Virtual-clock timestamps (`NetLink::now()`), never wall clock.
    pub start: Duration,
    pub end: Duration,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Attribute lookup by key.
    pub fn attr(&self, key: &str) -> Option<&str> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Every span in the subtree (preorder) whose name matches exactly.
    pub fn find_all(&self, name: &str) -> Vec<&SpanNode> {
        let mut out = Vec::new();
        self.collect(name, &mut out);
        out
    }

    fn collect<'a>(&'a self, name: &str, out: &mut Vec<&'a SpanNode>) {
        if self.name == name {
            out.push(self);
        }
        for c in &self.children {
            c.collect(name, out);
        }
    }

    /// First matching span in preorder, if any.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Check well-nestedness: `start <= end`, children contained in the
    /// parent interval, sibling starts monotone non-decreasing. Returns the
    /// first violation as a human-readable message.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.start > self.end {
            return Err(format!("span {} ends before it starts", self.name));
        }
        let mut prev_start = self.start;
        for c in &self.children {
            if c.start < self.start || c.end > self.end {
                return Err(format!("span {} escapes parent {}", c.name, self.name));
            }
            if c.start < prev_start {
                return Err(format!("span {} starts before its elder sibling", c.name));
            }
            prev_start = c.start;
            c.validate()?;
        }
        Ok(())
    }

    /// Deterministic indented rendering. Timestamps are virtual-clock
    /// offsets, so the rendering is byte-identical for a given seed.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        let dur = self.end.saturating_sub(self.start);
        let _ = write!(out, "{} @{:?} +{:?}", self.name, self.start, dur);
        let mut attrs: Vec<&(String, String)> = self.attrs.iter().collect();
        attrs.sort_by(|a, b| a.0.cmp(&b.0));
        for (k, v) in attrs {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// One executed statement's trace, as delivered to a [`TraceSink`].
#[derive(Clone, Debug)]
pub struct StatementTrace {
    pub session: u64,
    pub sql: String,
    pub root: SpanNode,
}

impl StatementTrace {
    /// Deterministic rendering: a header line plus the span tree.
    pub fn render(&self) -> String {
        format!("-- session {}: {}\n{}", self.session, self.sql, self.root.render())
    }
}

/// Bounded, process-wide collector of statement traces. Tests install
/// assertions against `statements()`/`last()`; the buffer keeps the most
/// recent `cap` entries so long chaos runs don't grow without bound.
#[derive(Debug)]
pub struct TraceSink {
    enabled: AtomicBool,
    cap: usize,
    buf: Mutex<VecDeque<StatementTrace>>,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink { enabled: AtomicBool::new(true), cap: 1024, buf: Mutex::new(VecDeque::new()) }
    }
}

impl TraceSink {
    /// Whether sessions created from now on get an active trace.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable tracing for sessions created afterwards.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Record one finished statement trace.
    pub fn record(&self, trace: StatementTrace) {
        let mut buf = self.buf.lock().unwrap();
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(trace);
    }

    /// All buffered traces, oldest first.
    pub fn statements(&self) -> Vec<StatementTrace> {
        self.buf.lock().unwrap().iter().cloned().collect()
    }

    /// The most recently recorded trace.
    pub fn last(&self) -> Option<StatementTrace> {
        self.buf.lock().unwrap().back().cloned()
    }

    /// The most recent trace whose SQL contains `needle`.
    pub fn last_containing(&self, needle: &str) -> Option<StatementTrace> {
        self.buf.lock().unwrap().iter().rev().find(|t| t.sql.contains(needle)).cloned()
    }

    /// Drop all buffered traces.
    pub fn clear(&self) {
        self.buf.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn spans_nest_and_render_deterministically() {
        let t = Trace::enabled();
        let root = t.begin("statement", ms(0));
        t.attr(root, "sql", "SELECT 1");
        let child = t.begin("transfer", ms(1));
        t.attr(child, "bytes", 42u64);
        t.end(child, ms(3));
        t.event("route", &[("reason", &"aot" as &dyn std::fmt::Display)], ms(3));
        let node = t.finish(root, ms(5)).unwrap();
        node.validate().unwrap();
        assert_eq!(node.children.len(), 2);
        assert_eq!(node.find("transfer").unwrap().attr("bytes"), Some("42"));
        let rendered = node.render();
        assert_eq!(
            rendered,
            "statement @0ns +5ms sql=SELECT 1\n  transfer @1ms +2ms bytes=42\n  route @3ms +0ns reason=aot\n"
        );
    }

    #[test]
    fn disabled_trace_is_noop() {
        let t = Trace::disabled();
        let id = t.begin("x", ms(0));
        t.attr(id, "k", "v");
        assert!(t.finish(id, ms(1)).is_none());
        assert!(!t.in_statement());
    }

    #[test]
    fn unclosed_children_are_closed_with_parent() {
        let t = Trace::enabled();
        let root = t.begin("statement", ms(0));
        let _leaked = t.begin("transfer", ms(1));
        let node = t.finish(root, ms(4)).unwrap();
        node.validate().unwrap();
        assert_eq!(node.children[0].end, ms(4));
        assert!(!t.in_statement());
    }

    #[test]
    fn sink_is_bounded_and_searchable() {
        let sink = TraceSink::default();
        for i in 0..3 {
            sink.record(StatementTrace {
                session: i,
                sql: format!("SELECT {i}"),
                root: SpanNode {
                    name: "statement".into(),
                    attrs: vec![],
                    start: ms(0),
                    end: ms(0),
                    children: vec![],
                },
            });
        }
        assert_eq!(sink.statements().len(), 3);
        assert_eq!(sink.last().unwrap().session, 2);
        assert_eq!(sink.last_containing("SELECT 1").unwrap().session, 1);
        sink.clear();
        assert!(sink.last().is_none());
    }
}
