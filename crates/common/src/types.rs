//! SQL data types of the supported dialect subset and their coercion rules.

use crate::error::{Error, Result};
use std::fmt;

/// A SQL data type as declared in DDL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Boolean,
    SmallInt,
    Integer,
    BigInt,
    /// 8-byte IEEE double (`DOUBLE` / `FLOAT` in DB2).
    Double,
    /// `DECIMAL(precision, scale)`.
    Decimal(u8, u8),
    /// `VARCHAR(n)` — `n` is advisory; we store the declared bound for DDL
    /// fidelity and enforce it on insert like DB2 does (SQLCODE -433 analog).
    Varchar(u16),
    /// `CHAR(n)` — fixed length, blank padded on insert.
    Char(u16),
    /// Days since 1970-01-01.
    Date,
    /// Microseconds since 1970-01-01T00:00:00.
    Timestamp,
}

impl DataType {
    /// True for the four integer-family and two float-family types.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            DataType::SmallInt | DataType::Integer | DataType::BigInt | DataType::Double | DataType::Decimal(_, _)
        )
    }

    /// True for integer-family types.
    pub fn is_integer(&self) -> bool {
        matches!(self, DataType::SmallInt | DataType::Integer | DataType::BigInt)
    }

    /// True for character types.
    pub fn is_character(&self) -> bool {
        matches!(self, DataType::Varchar(_) | DataType::Char(_))
    }

    /// Fixed storage width in bytes used by the network cost model and the
    /// row-store page layout. Character types report their declared maximum.
    pub fn storage_width(&self) -> usize {
        match self {
            DataType::Boolean => 1,
            DataType::SmallInt => 2,
            DataType::Integer => 4,
            DataType::BigInt | DataType::Double | DataType::Timestamp => 8,
            DataType::Decimal(_, _) => 16,
            DataType::Varchar(n) | DataType::Char(n) => *n as usize,
            DataType::Date => 4,
        }
    }

    /// The common type two operands are promoted to for comparison or
    /// arithmetic, per (simplified) DB2 rules: any DOUBLE involvement
    /// yields DOUBLE; DECIMAL beats integers; wider integer wins;
    /// character types unify to VARCHAR.
    pub fn unify(a: DataType, b: DataType) -> Result<DataType> {
        use DataType::*;
        if a == b {
            return Ok(a);
        }
        let err = || Error::TypeMismatch(format!("types {a} and {b} are not compatible"));
        match (a, b) {
            (Double, x) | (x, Double) if x.is_numeric() => Ok(Double),
            (Decimal(p1, s1), Decimal(p2, s2)) => Ok(Decimal(p1.max(p2), s1.max(s2))),
            (Decimal(p, s), x) | (x, Decimal(p, s)) if x.is_integer() => Ok(Decimal(p.max(19), s)),
            (BigInt, x) | (x, BigInt) if x.is_integer() => Ok(BigInt),
            (Integer, x) | (x, Integer) if x.is_integer() => Ok(Integer),
            (Varchar(n), Varchar(m)) => Ok(Varchar(n.max(m))),
            (Varchar(n), Char(m)) | (Char(m), Varchar(n)) => Ok(Varchar(n.max(m))),
            (Char(n), Char(m)) => Ok(Char(n.max(m))),
            (Date, Date) | (Timestamp, Timestamp) | (Boolean, Boolean) => Ok(a),
            _ => Err(err()),
        }
    }

    /// Parse a type name as it appears in DDL (already upper-cased pieces).
    pub fn parse_name(name: &str, args: &[u16]) -> Result<DataType> {
        match (name, args) {
            ("BOOLEAN", []) => Ok(DataType::Boolean),
            ("SMALLINT", []) => Ok(DataType::SmallInt),
            ("INTEGER", []) | ("INT", []) => Ok(DataType::Integer),
            ("BIGINT", []) => Ok(DataType::BigInt),
            ("DOUBLE", []) | ("FLOAT", []) | ("REAL", []) => Ok(DataType::Double),
            ("DECIMAL", [p]) | ("DEC", [p]) | ("NUMERIC", [p]) => Ok(DataType::Decimal(*p as u8, 0)),
            ("DECIMAL", [p, s]) | ("DEC", [p, s]) | ("NUMERIC", [p, s]) => {
                Ok(DataType::Decimal(*p as u8, *s as u8))
            }
            ("DECIMAL", []) | ("DEC", []) | ("NUMERIC", []) => Ok(DataType::Decimal(15, 0)),
            ("VARCHAR", [n]) => Ok(DataType::Varchar(*n)),
            ("VARCHAR", []) => Ok(DataType::Varchar(255)),
            ("CHAR", [n]) | ("CHARACTER", [n]) => Ok(DataType::Char(*n)),
            ("CHAR", []) | ("CHARACTER", []) => Ok(DataType::Char(1)),
            ("DATE", []) => Ok(DataType::Date),
            ("TIMESTAMP", []) => Ok(DataType::Timestamp),
            _ => Err(Error::Parse(format!("unknown data type {name}({args:?})"))),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Boolean => write!(f, "BOOLEAN"),
            DataType::SmallInt => write!(f, "SMALLINT"),
            DataType::Integer => write!(f, "INTEGER"),
            DataType::BigInt => write!(f, "BIGINT"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Decimal(p, s) => write!(f, "DECIMAL({p},{s})"),
            DataType::Varchar(n) => write!(f, "VARCHAR({n})"),
            DataType::Char(n) => write!(f, "CHAR({n})"),
            DataType::Date => write!(f, "DATE"),
            DataType::Timestamp => write!(f, "TIMESTAMP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_promotes_to_double() {
        assert_eq!(DataType::unify(DataType::Integer, DataType::Double).unwrap(), DataType::Double);
        assert_eq!(
            DataType::unify(DataType::Double, DataType::Decimal(10, 2)).unwrap(),
            DataType::Double
        );
    }

    #[test]
    fn unify_integers_widen() {
        assert_eq!(DataType::unify(DataType::SmallInt, DataType::BigInt).unwrap(), DataType::BigInt);
        assert_eq!(DataType::unify(DataType::SmallInt, DataType::Integer).unwrap(), DataType::Integer);
        assert_eq!(DataType::unify(DataType::SmallInt, DataType::SmallInt).unwrap(), DataType::SmallInt);
    }

    #[test]
    fn unify_chars() {
        assert_eq!(
            DataType::unify(DataType::Varchar(5), DataType::Char(10)).unwrap(),
            DataType::Varchar(10)
        );
    }

    #[test]
    fn unify_incompatible_fails() {
        assert!(DataType::unify(DataType::Date, DataType::Integer).is_err());
        assert!(DataType::unify(DataType::Boolean, DataType::Varchar(4)).is_err());
    }

    #[test]
    fn parse_names() {
        assert_eq!(DataType::parse_name("INT", &[]).unwrap(), DataType::Integer);
        assert_eq!(DataType::parse_name("DECIMAL", &[12, 2]).unwrap(), DataType::Decimal(12, 2));
        assert_eq!(DataType::parse_name("VARCHAR", &[40]).unwrap(), DataType::Varchar(40));
        assert!(DataType::parse_name("BLOB", &[]).is_err());
    }

    #[test]
    fn storage_widths() {
        assert_eq!(DataType::Integer.storage_width(), 4);
        assert_eq!(DataType::Varchar(17).storage_width(), 17);
        assert_eq!(DataType::Decimal(10, 2).storage_width(), 16);
    }

    #[test]
    fn display_roundtrips_through_parse() {
        for t in [
            DataType::Boolean,
            DataType::SmallInt,
            DataType::Integer,
            DataType::BigInt,
            DataType::Double,
            DataType::Date,
            DataType::Timestamp,
        ] {
            let shown = t.to_string();
            assert_eq!(DataType::parse_name(&shown, &[]).unwrap(), t);
        }
    }
}
