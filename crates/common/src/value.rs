//! Runtime SQL values with DB2-style coercion, comparison and arithmetic.

use crate::decimal::Decimal;
use crate::error::{Error, Result};
use crate::types::DataType;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single SQL value. `Null` is typeless, like an untyped SQL NULL.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Boolean(bool),
    SmallInt(i16),
    Int(i32),
    BigInt(i64),
    Double(f64),
    Decimal(Decimal),
    /// Both VARCHAR and CHAR payloads (CHAR is blank-padded at insert time).
    Varchar(String),
    /// Days since 1970-01-01.
    Date(i32),
    /// Microseconds since the epoch.
    Timestamp(i64),
}

impl Value {
    /// True if this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The natural data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        Some(match self {
            Value::Null => return None,
            Value::Boolean(_) => DataType::Boolean,
            Value::SmallInt(_) => DataType::SmallInt,
            Value::Int(_) => DataType::Integer,
            Value::BigInt(_) => DataType::BigInt,
            Value::Double(_) => DataType::Double,
            Value::Decimal(d) => DataType::Decimal(31, d.scale()),
            Value::Varchar(s) => DataType::Varchar(s.len().min(u16::MAX as usize) as u16),
            Value::Date(_) => DataType::Date,
            Value::Timestamp(_) => DataType::Timestamp,
        })
    }

    /// Integer view of any integer-family value.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::SmallInt(v) => Ok(*v as i64),
            Value::Int(v) => Ok(*v as i64),
            Value::BigInt(v) => Ok(*v),
            Value::Boolean(b) => Ok(*b as i64),
            Value::Date(d) => Ok(*d as i64),
            Value::Timestamp(t) => Ok(*t),
            other => Err(Error::TypeMismatch(format!("{other} is not an integer value"))),
        }
    }

    /// Floating view of any numeric value.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Double(v) => Ok(*v),
            Value::Decimal(d) => Ok(d.to_f64()),
            other => other
                .as_i64()
                .map(|v| v as f64)
                .map_err(|_| Error::TypeMismatch(format!("{other} is not numeric"))),
        }
    }

    /// String view of character values.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Varchar(s) => Ok(s),
            other => Err(Error::TypeMismatch(format!("{other} is not a character value"))),
        }
    }

    /// Boolean view (used by predicate evaluation).
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Boolean(b) => Ok(*b),
            other => Err(Error::TypeMismatch(format!("{other} is not boolean"))),
        }
    }

    /// Size in bytes this value occupies when shipped over the
    /// host↔accelerator link (variable-length encoding for strings; a null
    /// costs one marker byte). Drives the data-movement metering that the
    /// paper's headline claim is about.
    pub fn wire_size(&self) -> usize {
        1 + match self {
            Value::Null => 0,
            Value::Boolean(_) => 1,
            Value::SmallInt(_) => 2,
            Value::Int(_) | Value::Date(_) => 4,
            Value::BigInt(_) | Value::Double(_) | Value::Timestamp(_) => 8,
            Value::Decimal(_) => 17,
            Value::Varchar(s) => 2 + s.len(),
        }
    }

    /// Cast this value to `target`, applying DB2 semantics: numeric
    /// narrowing truncates toward zero, CHAR pads/truncates to its length,
    /// VARCHAR enforces its bound, strings parse to numbers/dates.
    pub fn cast(&self, target: DataType) -> Result<Value> {
        use DataType as T;
        if self.is_null() {
            return Ok(Value::Null);
        }
        let fail = || Error::TypeMismatch(format!("cannot cast {self} to {target}"));
        Ok(match target {
            T::Boolean => Value::Boolean(match self {
                Value::Boolean(b) => *b,
                _ => self.as_i64().map_err(|_| fail())? != 0,
            }),
            T::SmallInt => Value::SmallInt(self.cast_int()? as i16),
            T::Integer => Value::Int(self.cast_int()? as i32),
            T::BigInt => Value::BigInt(self.cast_int()?),
            T::Double => match self {
                Value::Varchar(s) => Value::Double(
                    s.trim().parse::<f64>().map_err(|_| fail())?,
                ),
                _ => Value::Double(self.as_f64()?),
            },
            T::Decimal(_, s) => match self {
                Value::Decimal(d) => Value::Decimal(d.rescale(s)?),
                Value::Double(v) => {
                    Value::Decimal(Decimal::parse(&format!("{:.*}", s as usize, v))?)
                }
                Value::Varchar(t) => Value::Decimal(Decimal::parse(t)?.rescale(s)?),
                _ => Value::Decimal(Decimal::from_int(self.as_i64()?).rescale(s)?),
            },
            T::Varchar(n) => {
                let s = self.render();
                if s.len() > n as usize {
                    return Err(Error::Constraint(format!(
                        "value '{s}' too long for VARCHAR({n})"
                    )));
                }
                Value::Varchar(s)
            }
            T::Char(n) => {
                let mut s = self.render();
                if s.len() > n as usize {
                    return Err(Error::Constraint(format!("value '{s}' too long for CHAR({n})")));
                }
                while s.len() < n as usize {
                    s.push(' ');
                }
                Value::Varchar(s)
            }
            T::Date => match self {
                Value::Date(_) => self.clone(),
                Value::Varchar(s) => Value::Date(parse_date(s)?),
                Value::Timestamp(t) => Value::Date(t.div_euclid(86_400_000_000) as i32),
                _ => return Err(fail()),
            },
            T::Timestamp => match self {
                Value::Timestamp(_) => self.clone(),
                Value::Date(d) => Value::Timestamp(*d as i64 * 86_400_000_000),
                Value::Varchar(s) => Value::Timestamp(parse_timestamp(s)?),
                _ => return Err(fail()),
            },
        })
    }

    fn cast_int(&self) -> Result<i64> {
        match self {
            Value::Double(v) => Ok(v.trunc() as i64),
            Value::Decimal(d) => Ok(d.to_i64_trunc()),
            Value::Varchar(s) => s
                .trim()
                .parse::<i64>()
                .map_err(|_| Error::TypeMismatch(format!("cannot cast '{s}' to integer"))),
            _ => self.as_i64(),
        }
    }

    /// Human/CSV representation without quotes (as used by CAST to string).
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".into(),
            Value::Boolean(b) => if *b { "TRUE" } else { "FALSE" }.into(),
            Value::SmallInt(v) => v.to_string(),
            Value::Int(v) => v.to_string(),
            Value::BigInt(v) => v.to_string(),
            Value::Double(v) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Value::Decimal(d) => d.to_string(),
            Value::Varchar(s) => s.clone(),
            Value::Date(d) => render_date(*d),
            Value::Timestamp(t) => render_timestamp(*t),
        }
    }

    /// SQL comparison. Returns `None` if either side is NULL (three-valued
    /// logic) and an error for incomparable types.
    pub fn compare(&self, other: &Value) -> Result<Option<Ordering>> {
        if self.is_null() || other.is_null() {
            return Ok(None);
        }
        Ok(Some(self.cmp_non_null(other)?))
    }

    fn cmp_non_null(&self, other: &Value) -> Result<Ordering> {
        use Value::*;
        let err = || Error::TypeMismatch(format!("cannot compare {self} with {other}"));
        match (self, other) {
            (Varchar(a), Varchar(b)) => Ok(trim_end(a).cmp(trim_end(b))),
            (Boolean(a), Boolean(b)) => Ok(a.cmp(b)),
            (Date(a), Date(b)) => Ok(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Ok(a.cmp(b)),
            (Date(_), Timestamp(_)) | (Timestamp(_), Date(_)) => {
                let a = self.cast(DataType::Timestamp)?.as_i64()?;
                let b = other.cast(DataType::Timestamp)?.as_i64()?;
                Ok(a.cmp(&b))
            }
            (Double(_), x) | (x, Double(_)) if x.data_type().map(|t| t.is_numeric()).unwrap_or(false) => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b).ok_or_else(err)
            }
            (Decimal(_), x) | (x, Decimal(_))
                if x.data_type().map(|t| t.is_numeric()).unwrap_or(false) =>
            {
                let a = self.cast(DataType::Decimal(31, 12))?;
                let b = other.cast(DataType::Decimal(31, 12))?;
                match (a, b) {
                    (Decimal(a), Decimal(b)) => Ok(a.compare(&b)),
                    _ => Err(err()),
                }
            }
            _ if self.as_i64().is_ok() && other.as_i64().is_ok() => {
                // Only integer-family pairs reach here; Date/Timestamp pairs
                // were handled above and mixed date/number errors below.
                if self.data_type().map(|t| t.is_integer()).unwrap_or(false)
                    && other.data_type().map(|t| t.is_integer()).unwrap_or(false)
                {
                    Ok(self.as_i64()?.cmp(&other.as_i64()?))
                } else {
                    Err(err())
                }
            }
            _ => Err(err()),
        }
    }

    /// Total order used for sorting: NULLs sort high (DB2 default for
    /// ascending order), incomparable pairs fall back to type rank so the
    /// order stays total.
    pub fn cmp_total(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Greater,
            (false, true) => return Ordering::Less,
            _ => {}
        }
        match self.cmp_non_null(other) {
            Ok(o) => o,
            Err(_) => self.type_rank().cmp(&other.type_rank()),
        }
    }

    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Boolean(_) => 1,
            Value::SmallInt(_) | Value::Int(_) | Value::BigInt(_) | Value::Double(_) | Value::Decimal(_) => 2,
            Value::Varchar(_) => 3,
            Value::Date(_) => 4,
            Value::Timestamp(_) => 5,
        }
    }

    /// Equality under SQL `GROUP BY` / `DISTINCT` semantics: NULL groups
    /// with NULL, numerics compare across representations.
    pub fn group_eq(&self, other: &Value) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}

fn trim_end(s: &str) -> &str {
    // CHAR blank padding must not affect comparisons (DB2 padded-comparison
    // semantics).
    s.trim_end_matches(' ')
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Varchar(s) => write!(f, "'{s}'"),
            other => write!(f, "{}", other.render()),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_total(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash must agree with `group_eq`: all numeric representations of
        // the same quantity hash identically (via a canonical f64 image for
        // doubles, i128 for exact types).
        match self {
            Value::Null => state.write_u8(0),
            Value::Boolean(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            Value::SmallInt(_) | Value::Int(_) | Value::BigInt(_) => {
                hash_numeric(self.as_i64().unwrap() as f64, state);
            }
            Value::Double(v) => hash_numeric(*v, state),
            Value::Decimal(d) => hash_numeric(d.to_f64(), state),
            Value::Varchar(s) => {
                state.write_u8(3);
                trim_end(s).hash(state);
            }
            Value::Date(d) => {
                state.write_u8(4);
                state.write_i64(*d as i64 * 86_400_000_000);
            }
            Value::Timestamp(t) => {
                state.write_u8(4);
                state.write_i64(*t);
            }
        }
    }
}

fn hash_numeric<H: Hasher>(v: f64, state: &mut H) {
    state.write_u8(2);
    let v = if v == 0.0 { 0.0 } else { v }; // normalize -0.0
    state.write_u64(v.to_bits());
}

/// Parse `YYYY-MM-DD` into days since the epoch.
pub fn parse_date(s: &str) -> Result<i32> {
    let err = || Error::TypeMismatch(format!("invalid DATE literal '{s}'"));
    let parts: Vec<&str> = s.trim().split('-').collect();
    if parts.len() != 3 {
        return Err(err());
    }
    let y: i64 = parts[0].parse().map_err(|_| err())?;
    let m: u32 = parts[1].parse().map_err(|_| err())?;
    let d: u32 = parts[2].parse().map_err(|_| err())?;
    days_from_civil(y, m, d).ok_or_else(err)
}

/// Parse `YYYY-MM-DD[ HH:MM:SS[.ffffff]]` into epoch microseconds.
pub fn parse_timestamp(s: &str) -> Result<i64> {
    let s = s.trim();
    let err = || Error::TypeMismatch(format!("invalid TIMESTAMP literal '{s}'"));
    let (date_part, time_part) = match s.split_once([' ', 'T']) {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let days = parse_date(date_part)? as i64;
    let mut micros = days * 86_400_000_000;
    if let Some(t) = time_part {
        let (hms, frac) = match t.split_once('.') {
            Some((h, f)) => (h, Some(f)),
            None => (t, None),
        };
        let bits: Vec<&str> = hms.split(':').collect();
        if bits.len() != 3 {
            return Err(err());
        }
        let h: i64 = bits[0].parse().map_err(|_| err())?;
        let mi: i64 = bits[1].parse().map_err(|_| err())?;
        let se: i64 = bits[2].parse().map_err(|_| err())?;
        if h > 23 || mi > 59 || se > 59 {
            return Err(err());
        }
        micros += ((h * 60 + mi) * 60 + se) * 1_000_000;
        if let Some(f) = frac {
            if f.is_empty() || f.len() > 6 || !f.bytes().all(|b| b.is_ascii_digit()) {
                return Err(err());
            }
            let mut v: i64 = f.parse().map_err(|_| err())?;
            for _ in f.len()..6 {
                v *= 10;
            }
            micros += v;
        }
    }
    Ok(micros)
}

/// Howard Hinnant's `days_from_civil` — days since 1970-01-01 for a
/// proleptic-Gregorian date. Returns `None` for invalid month/day.
fn days_from_civil(y: i64, m: u32, d: u32) -> Option<i32> {
    if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
        return None;
    }
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = m as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Some((era * 146_097 + doe - 719_468) as i32)
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if (y % 4 == 0 && y % 100 != 0) || y % 400 == 0 {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Inverse of `days_from_civil`: render days-since-epoch as `YYYY-MM-DD`.
pub fn render_date(days: i32) -> String {
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

/// Render epoch microseconds as `YYYY-MM-DD HH:MM:SS.ffffff`.
pub fn render_timestamp(micros: i64) -> String {
    let days = micros.div_euclid(86_400_000_000);
    let rem = micros.rem_euclid(86_400_000_000);
    let secs = rem / 1_000_000;
    let frac = rem % 1_000_000;
    format!(
        "{} {:02}:{:02}:{:02}.{:06}",
        render_date(days as i32),
        secs / 3600,
        (secs / 60) % 60,
        secs % 60,
        frac
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash(&mut s);
        s.finish()
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.compare(&Value::Int(1)).unwrap(), None);
        assert_eq!(Value::Int(1).compare(&Value::Null).unwrap(), None);
    }

    #[test]
    fn cross_width_integer_compare() {
        let o = Value::SmallInt(5).compare(&Value::BigInt(5)).unwrap();
        assert_eq!(o, Some(Ordering::Equal));
        let o = Value::Int(-2).compare(&Value::BigInt(7)).unwrap();
        assert_eq!(o, Some(Ordering::Less));
    }

    #[test]
    fn numeric_double_decimal_compare() {
        let d = Value::Decimal(Decimal::parse("2.5").unwrap());
        assert_eq!(d.compare(&Value::Double(2.5)).unwrap(), Some(Ordering::Equal));
        assert_eq!(d.compare(&Value::Int(3)).unwrap(), Some(Ordering::Less));
    }

    #[test]
    fn char_padding_ignored_in_compare() {
        let a = Value::Varchar("AB  ".into());
        let b = Value::Varchar("AB".into());
        assert_eq!(a.compare(&b).unwrap(), Some(Ordering::Equal));
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn incompatible_compare_errors() {
        assert!(Value::Int(1).compare(&Value::Varchar("1".into())).is_err());
        assert!(Value::Date(0).compare(&Value::Int(0)).is_err());
    }

    #[test]
    fn date_timestamp_compare() {
        let d = Value::Date(10);
        let t = Value::Timestamp(10 * 86_400_000_000 + 1);
        assert_eq!(d.compare(&t).unwrap(), Some(Ordering::Less));
    }

    #[test]
    fn hash_agrees_with_group_eq_across_numeric_reprs() {
        let a = Value::Int(42);
        let b = Value::BigInt(42);
        let c = Value::Double(42.0);
        let d = Value::Decimal(Decimal::parse("42.00").unwrap());
        assert!(a.group_eq(&b) && b.group_eq(&c) && c.group_eq(&d));
        assert_eq!(h(&a), h(&b));
        assert_eq!(h(&b), h(&c));
        assert_eq!(h(&c), h(&d));
    }

    #[test]
    fn nulls_sort_high() {
        let mut v = vec![Value::Null, Value::Int(2), Value::Int(1)];
        v.sort_by(|a, b| a.cmp_total(b));
        assert_eq!(v, vec![Value::Int(1), Value::Int(2), Value::Null]);
    }

    #[test]
    fn cast_narrowing_truncates() {
        assert_eq!(Value::Double(3.9).cast(DataType::Integer).unwrap(), Value::Int(3));
        assert_eq!(Value::Double(-3.9).cast(DataType::BigInt).unwrap(), Value::BigInt(-3));
    }

    #[test]
    fn cast_string_to_number() {
        assert_eq!(Value::Varchar(" 12 ".into()).cast(DataType::Integer).unwrap(), Value::Int(12));
        assert!(Value::Varchar("twelve".into()).cast(DataType::Integer).is_err());
    }

    #[test]
    fn cast_char_pads_varchar_enforces() {
        assert_eq!(
            Value::Varchar("AB".into()).cast(DataType::Char(4)).unwrap(),
            Value::Varchar("AB  ".into())
        );
        assert!(Value::Varchar("ABCDE".into()).cast(DataType::Varchar(3)).is_err());
    }

    #[test]
    fn cast_null_stays_null() {
        assert!(Value::Null.cast(DataType::Integer).unwrap().is_null());
    }

    #[test]
    fn date_roundtrip() {
        for s in ["1970-01-01", "2016-03-15", "1999-12-31", "2000-02-29", "1899-03-01"] {
            let d = parse_date(s).unwrap();
            assert_eq!(render_date(d), s);
        }
        assert_eq!(parse_date("1970-01-01").unwrap(), 0);
        assert_eq!(parse_date("1970-01-02").unwrap(), 1);
        assert_eq!(parse_date("1969-12-31").unwrap(), -1);
    }

    #[test]
    fn date_rejects_invalid() {
        assert!(parse_date("2015-02-29").is_err());
        assert!(parse_date("2015-13-01").is_err());
        assert!(parse_date("2015-00-10").is_err());
        assert!(parse_date("garbage").is_err());
    }

    #[test]
    fn timestamp_roundtrip() {
        let t = parse_timestamp("2016-03-15 13:45:30.000250").unwrap();
        assert_eq!(render_timestamp(t), "2016-03-15 13:45:30.000250");
        let t2 = parse_timestamp("2016-03-15").unwrap();
        assert_eq!(render_timestamp(t2), "2016-03-15 00:00:00.000000");
    }

    #[test]
    fn timestamp_rejects_invalid() {
        assert!(parse_timestamp("2016-03-15 25:00:00").is_err());
        assert!(parse_timestamp("2016-03-15 10:61:00").is_err());
        assert!(parse_timestamp("2016-03-15 10:00:00.12345678").is_err());
    }

    #[test]
    fn wire_size_accounts_variable_strings() {
        assert_eq!(Value::Null.wire_size(), 1);
        assert_eq!(Value::Int(7).wire_size(), 5);
        assert_eq!(Value::Varchar("abcd".into()).wire_size(), 7);
    }

    #[test]
    fn cast_decimal_scales() {
        let v = Value::Double(1.23456).cast(DataType::Decimal(10, 2)).unwrap();
        assert_eq!(v.render(), "1.23");
        let v2 = Value::Int(7).cast(DataType::Decimal(10, 3)).unwrap();
        assert_eq!(v2.render(), "7.000");
    }

    #[test]
    fn render_double_integral() {
        assert_eq!(Value::Double(2.0).render(), "2.0");
        assert_eq!(Value::Double(2.5).render(), "2.5");
    }
}
