//! Columnar wire protocol for host↔accelerator row transfers.
//!
//! Every row batch that crosses the federation link is encoded into one or
//! more self-describing *frames* before `idaa-netsim` is charged for the
//! transfer, so the byte counts the experiments report are the bytes a real
//! link would carry. A frame is column-major with per-column encodings:
//!
//! - integers, dates and timestamps: zig-zag LEB128 varints, either plain,
//!   delta-coded, or run-length coded — whichever is smallest (ties prefer
//!   delta, then RLE);
//! - strings: a first-occurrence-order dictionary with varint indices
//!   (plain or run-length coded) when that beats raw length-prefixed
//!   bytes, ties prefer the dictionary;
//! - doubles: raw 8-byte IEEE bits, run-length coded when strictly
//!   smaller;
//! - decimals: per-value scale byte plus zig-zag varint unit count;
//! - booleans: bit-packed;
//! - NULLs: a packed per-column null bitmap, so null cells cost one bit.
//!
//! The frame header carries a magic/version, the row and column counts, a
//! fingerprint of the producing schema, and the *logical* (pre-encoding)
//! size of the batch; a 64-bit XXH64-style checksum trails the payload.
//! The receive side verifies the checksum before decoding, which is what
//! lets `FaultSpec::corrupt` damage become a *detected* link error that
//! feeds the existing retry/health machinery instead of a simulated coin
//! flip.
//!
//! Everything here is deterministic: encoding decisions depend only on the
//! input values, never on randomness, hash-map iteration order, or time —
//! a given workload produces byte-identical frames on every run, which
//! keeps `LinkMetrics` replayable per fault seed and the experiment tables
//! byte-stable.

use crate::decimal::Decimal;
use crate::error::{Error, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// Logical size of a small fixed-layout control message (DDL, BEGIN,
/// prepare/commit votes, rollback). Control messages carry no rows and are
/// charged at this size directly.
pub const CONTROL_FRAME: usize = 32;

/// Logical size of an acknowledgement / count-reply message.
pub const ACK_FRAME: usize = 64;

/// Logical per-result framing overhead of a row batch (schema summary,
/// cursor state). Part of [`logical_size`]; kept equal to the historical
/// result-frame estimate so logical byte counters remain comparable with
/// the byte counts earlier revisions reported as wire bytes.
pub const RESULT_FRAME: usize = 64;

/// Logical size of a "create output table" control message used by the
/// analytics write-back path (DDL text plus column metadata).
pub const CREATE_OUTPUT_FRAME: usize = 96;

/// Logical per-row framing overhead, matching the historical estimate.
pub const ROW_OVERHEAD: usize = 4;

/// Maximum rows per frame on the chunked streaming path: bulk loads ship
/// as a sequence of bounded frames instead of one monolithic payload.
pub const MAX_FRAME_ROWS: usize = 4096;

/// Frame magic (little-endian on the wire).
const MAGIC: u16 = 0xDA7A;
/// Current frame format version.
const VERSION: u8 = 1;
/// Header bytes before the column payload.
const HEADER_LEN: usize = 28;
/// Trailing checksum bytes.
const CHECKSUM_LEN: usize = 8;

// Physical column tags: which `Value` variant every non-null cell holds.
const PHYS_BOOLEAN: u8 = 0;
const PHYS_SMALLINT: u8 = 1;
const PHYS_INT: u8 = 2;
const PHYS_BIGINT: u8 = 3;
const PHYS_DOUBLE: u8 = 4;
const PHYS_DECIMAL: u8 = 5;
const PHYS_VARCHAR: u8 = 6;
const PHYS_DATE: u8 = 7;
const PHYS_TIMESTAMP: u8 = 8;
/// Heterogeneous (or empty) column: cells carry their own tags.
const PHYS_MIXED: u8 = 9;

// Per-column encoding tags.
const ENC_RAW: u8 = 0;
const ENC_DELTA: u8 = 1;
const ENC_RLE: u8 = 2;
const ENC_DICT: u8 = 3;

// Dictionary index sub-encodings.
const IDX_PLAIN: u8 = 0;
const IDX_RLE: u8 = 1;

/// A decoded frame: the schema fingerprint and logical size the sender
/// stamped, plus the reconstructed rows (exact `Value` variants preserved).
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedFrame {
    /// Fingerprint of the schema the sender encoded under.
    pub fingerprint: u64,
    /// Sender-stamped logical (pre-encoding) byte size of the batch.
    pub logical_len: u64,
    /// The row batch, losslessly reconstructed.
    pub rows: Vec<Row>,
}

// ---------------------------------------------------------------------------
// Hashing and varints
// ---------------------------------------------------------------------------

const PRIME64_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME64_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME64_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME64_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME64_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xxh_round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2)).rotate_left(31).wrapping_mul(PRIME64_1)
}

#[inline]
fn read_u64_le(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline]
fn read_u32_le(b: &[u8]) -> u32 {
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

/// XXH64 (seed 0): the frame checksum and the schema-fingerprint hash.
pub fn hash64(data: &[u8]) -> u64 {
    let len = data.len() as u64;
    let mut rest = data;
    let mut h: u64;
    if rest.len() >= 32 {
        let mut v1 = PRIME64_1.wrapping_add(PRIME64_2);
        let mut v2 = PRIME64_2;
        let mut v3 = 0u64;
        let mut v4 = 0u64.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = xxh_round(v1, read_u64_le(&rest[0..]));
            v2 = xxh_round(v2, read_u64_le(&rest[8..]));
            v3 = xxh_round(v3, read_u64_le(&rest[16..]));
            v4 = xxh_round(v4, read_u64_le(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        for v in [v1, v2, v3, v4] {
            h = (h ^ xxh_round(0, v)).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4);
        }
    } else {
        h = PRIME64_5;
    }
    h = h.wrapping_add(len);
    while rest.len() >= 8 {
        h = (h ^ xxh_round(0, read_u64_le(rest))).rotate_left(27).wrapping_mul(PRIME64_1).wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h = (h ^ (read_u32_le(rest) as u64).wrapping_mul(PRIME64_1))
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &b in rest {
        h = (h ^ (b as u64).wrapping_mul(PRIME64_5)).rotate_left(11).wrapping_mul(PRIME64_1);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

#[inline]
fn zigzag64(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag64(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[inline]
fn zigzag128(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

#[inline]
fn unzigzag128(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn put_varint128(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Cursor over frame bytes with bounds-checked reads; any overrun or
/// malformed varint surfaces as an internal decode error.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn bad<T>(&self) -> Result<T> {
        Err(Error::Internal("malformed wire frame".into()))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return self.bad();
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64> {
        let mut v = 0u64;
        for shift in (0..).step_by(7) {
            if shift > 63 {
                return self.bad();
            }
            let b = self.u8()?;
            v |= ((b & 0x7f) as u64) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        unreachable!()
    }

    fn varint128(&mut self) -> Result<u128> {
        let mut v = 0u128;
        for shift in (0..).step_by(7) {
            if shift > 127 {
                return self.bad();
            }
            let b = self.u8()?;
            v |= ((b & 0x7f) as u128) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        unreachable!()
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

// ---------------------------------------------------------------------------
// Logical sizes and schema fingerprints
// ---------------------------------------------------------------------------

/// Logical (pre-encoding) size of one row: per-value variable encoding
/// plus the per-row framing overhead. This is the single entry point that
/// replaces the four copy-pasted per-call-site estimates.
pub fn row_logical_size(row: &[Value]) -> usize {
    ROW_OVERHEAD + row.iter().map(Value::wire_size).sum::<usize>()
}

/// Logical size of a row batch: result-frame overhead plus every row's
/// logical size. Equals what earlier revisions charged the link directly,
/// so wire-vs-logical ratios read as genuine compression.
pub fn logical_size(rows: &[Row]) -> usize {
    RESULT_FRAME + rows.iter().map(|r| row_logical_size(r)).sum::<usize>()
}

/// Order-sensitive fingerprint of a schema (names, types, nullability).
/// Sender stamps it into every frame; [`decode_rows`] refuses frames whose
/// fingerprint does not match the receiver's schema.
pub fn schema_fingerprint(schema: &Schema) -> u64 {
    let mut buf = Vec::with_capacity(schema.len() * 16);
    for col in schema.columns() {
        put_varint(&mut buf, col.name.len() as u64);
        buf.extend_from_slice(col.name.as_bytes());
        let (tag, a, b) = match col.data_type {
            crate::DataType::Boolean => (0u8, 0u16, 0u16),
            crate::DataType::SmallInt => (1, 0, 0),
            crate::DataType::Integer => (2, 0, 0),
            crate::DataType::BigInt => (3, 0, 0),
            crate::DataType::Double => (4, 0, 0),
            crate::DataType::Decimal(p, s) => (5, p as u16, s as u16),
            crate::DataType::Varchar(n) => (6, n, 0),
            crate::DataType::Char(n) => (7, n, 0),
            crate::DataType::Date => (8, 0, 0),
            crate::DataType::Timestamp => (9, 0, 0),
        };
        buf.push(tag);
        buf.extend_from_slice(&a.to_le_bytes());
        buf.extend_from_slice(&b.to_le_bytes());
        buf.push(col.not_null as u8);
    }
    hash64(&buf)
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn phys_tag(v: &Value) -> u8 {
    match v {
        Value::Null => PHYS_MIXED, // never chosen: callers skip nulls
        Value::Boolean(_) => PHYS_BOOLEAN,
        Value::SmallInt(_) => PHYS_SMALLINT,
        Value::Int(_) => PHYS_INT,
        Value::BigInt(_) => PHYS_BIGINT,
        Value::Double(_) => PHYS_DOUBLE,
        Value::Decimal(_) => PHYS_DECIMAL,
        Value::Varchar(_) => PHYS_VARCHAR,
        Value::Date(_) => PHYS_DATE,
        Value::Timestamp(_) => PHYS_TIMESTAMP,
    }
}

fn int_of(v: &Value) -> i64 {
    match v {
        Value::SmallInt(x) => *x as i64,
        Value::Int(x) => *x as i64,
        Value::BigInt(x) => *x,
        Value::Date(x) => *x as i64,
        Value::Timestamp(x) => *x,
        _ => unreachable!("non-integer value in integer column"),
    }
}

/// Bit-pack booleans / null flags: bit `i % 8` of byte `i / 8`.
fn pack_bits(bits: impl Iterator<Item = bool>, count: usize, out: &mut Vec<u8>) {
    let start = out.len();
    out.resize(start + count.div_ceil(8), 0);
    for (i, bit) in bits.enumerate() {
        if bit {
            out[start + i / 8] |= 1 << (i % 8);
        }
    }
}

fn encode_int_column(vals: &[i64], out: &mut Vec<u8>) {
    // Candidate encodings, all computed; smallest wins with a fixed
    // preference order (delta, then RLE, then raw) so the choice is a pure
    // function of the values.
    let mut raw = Vec::new();
    for &v in vals {
        put_varint(&mut raw, zigzag64(v));
    }
    let mut delta = Vec::new();
    let mut prev = 0i64;
    for (i, &v) in vals.iter().enumerate() {
        if i == 0 {
            put_varint(&mut delta, zigzag64(v));
        } else {
            put_varint(&mut delta, zigzag64(v.wrapping_sub(prev)));
        }
        prev = v;
    }
    let mut rle = Vec::new();
    let mut i = 0;
    while i < vals.len() {
        let mut j = i + 1;
        while j < vals.len() && vals[j] == vals[i] {
            j += 1;
        }
        put_varint(&mut rle, (j - i) as u64);
        put_varint(&mut rle, zigzag64(vals[i]));
        i = j;
    }
    if delta.len() <= rle.len() && delta.len() <= raw.len() {
        out.push(ENC_DELTA);
        out.extend_from_slice(&delta);
    } else if rle.len() <= raw.len() {
        out.push(ENC_RLE);
        out.extend_from_slice(&rle);
    } else {
        out.push(ENC_RAW);
        out.extend_from_slice(&raw);
    }
}

fn encode_double_column(vals: &[f64], out: &mut Vec<u8>) {
    let mut raw = Vec::with_capacity(vals.len() * 8);
    for &v in vals {
        raw.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    let mut rle = Vec::new();
    let mut i = 0;
    while i < vals.len() {
        let mut j = i + 1;
        // Run detection on the bit pattern keeps NaN and -0.0 exact.
        while j < vals.len() && vals[j].to_bits() == vals[i].to_bits() {
            j += 1;
        }
        put_varint(&mut rle, (j - i) as u64);
        rle.extend_from_slice(&vals[i].to_bits().to_le_bytes());
        i = j;
    }
    if rle.len() < raw.len() {
        out.push(ENC_RLE);
        out.extend_from_slice(&rle);
    } else {
        out.push(ENC_RAW);
        out.extend_from_slice(&raw);
    }
}

fn encode_string_column(vals: &[&str], out: &mut Vec<u8>) {
    let mut raw = Vec::new();
    for v in vals {
        put_varint(&mut raw, v.len() as u64);
        raw.extend_from_slice(v.as_bytes());
    }
    // First-occurrence-order dictionary: deterministic, no hash-map
    // iteration order involved.
    let mut entries: Vec<&str> = Vec::new();
    let mut indices: Vec<u64> = Vec::with_capacity(vals.len());
    for v in vals {
        match entries.iter().position(|e| e == v) {
            Some(i) => indices.push(i as u64),
            None => {
                indices.push(entries.len() as u64);
                entries.push(v);
            }
        }
    }
    let mut dict = Vec::new();
    put_varint(&mut dict, entries.len() as u64);
    for e in &entries {
        put_varint(&mut dict, e.len() as u64);
        dict.extend_from_slice(e.as_bytes());
    }
    let mut plain_idx = Vec::new();
    for &ix in &indices {
        put_varint(&mut plain_idx, ix);
    }
    let mut rle_idx = Vec::new();
    let mut i = 0;
    while i < indices.len() {
        let mut j = i + 1;
        while j < indices.len() && indices[j] == indices[i] {
            j += 1;
        }
        put_varint(&mut rle_idx, (j - i) as u64);
        put_varint(&mut rle_idx, indices[i]);
        i = j;
    }
    if plain_idx.len() <= rle_idx.len() {
        dict.push(IDX_PLAIN);
        dict.extend_from_slice(&plain_idx);
    } else {
        dict.push(IDX_RLE);
        dict.extend_from_slice(&rle_idx);
    }
    if dict.len() <= raw.len() {
        out.push(ENC_DICT);
        out.extend_from_slice(&dict);
    } else {
        out.push(ENC_RAW);
        out.extend_from_slice(&raw);
    }
}

fn encode_decimal_column(vals: &[Decimal], out: &mut Vec<u8>) {
    out.push(ENC_RAW);
    for d in vals {
        out.push(d.scale());
        put_varint128(out, zigzag128(d.units()));
    }
}

fn encode_bool_column(vals: &[bool], out: &mut Vec<u8>) {
    out.push(ENC_RAW);
    pack_bits(vals.iter().copied(), vals.len(), out);
}

/// Tagged per-value encoding for heterogeneous columns.
fn encode_mixed_value(v: &Value, out: &mut Vec<u8>) {
    out.push(phys_tag(v));
    match v {
        Value::Boolean(b) => out.push(*b as u8),
        Value::SmallInt(_) | Value::Int(_) | Value::BigInt(_) | Value::Date(_) | Value::Timestamp(_) => {
            put_varint(out, zigzag64(int_of(v)));
        }
        Value::Double(x) => out.extend_from_slice(&x.to_bits().to_le_bytes()),
        Value::Decimal(d) => {
            out.push(d.scale());
            put_varint128(out, zigzag128(d.units()));
        }
        Value::Varchar(s) => {
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Null => unreachable!("nulls live in the bitmap, not the body"),
    }
}

fn encode_column(rows: &[Row], col: usize, out: &mut Vec<u8>) {
    let nrows = rows.len();
    let present: Vec<&Value> = rows.iter().map(|r| &r[col]).filter(|v| !v.is_null()).collect();
    // A column is physically typed when every non-null cell holds the same
    // `Value` variant; otherwise (or when empty) cells carry their own tags.
    let phys = match present.first() {
        Some(first) if present.iter().all(|v| phys_tag(v) == phys_tag(first)) => phys_tag(first),
        _ => PHYS_MIXED,
    };
    out.push(phys);
    pack_bits(rows.iter().map(|r| r[col].is_null()), nrows, out);
    match phys {
        PHYS_BOOLEAN => {
            let vals: Vec<bool> = present
                .iter()
                .map(|v| match v {
                    Value::Boolean(b) => *b,
                    _ => unreachable!(),
                })
                .collect();
            encode_bool_column(&vals, out);
        }
        PHYS_SMALLINT | PHYS_INT | PHYS_BIGINT | PHYS_DATE | PHYS_TIMESTAMP => {
            let vals: Vec<i64> = present.iter().map(|v| int_of(v)).collect();
            encode_int_column(&vals, out);
        }
        PHYS_DOUBLE => {
            let vals: Vec<f64> = present
                .iter()
                .map(|v| match v {
                    Value::Double(x) => *x,
                    _ => unreachable!(),
                })
                .collect();
            encode_double_column(&vals, out);
        }
        PHYS_DECIMAL => {
            let vals: Vec<Decimal> = present
                .iter()
                .map(|v| match v {
                    Value::Decimal(d) => *d,
                    _ => unreachable!(),
                })
                .collect();
            encode_decimal_column(&vals, out);
        }
        PHYS_VARCHAR => {
            let vals: Vec<&str> = present
                .iter()
                .map(|v| match v {
                    Value::Varchar(s) => s.as_str(),
                    _ => unreachable!(),
                })
                .collect();
            encode_string_column(&vals, out);
        }
        _ => {
            out.push(ENC_RAW);
            for v in &present {
                encode_mixed_value(v, out);
            }
        }
    }
}

/// Encode one row batch into a single framed byte buffer. The result is
/// what [`crate::row::Rows`]-bearing transfers charge the link with, byte
/// for byte. Deterministic: equal inputs produce equal frames.
///
/// Panics if a row's arity differs from the schema's (all shipping paths
/// carry schema-checked rows).
pub fn encode_frame(schema: &Schema, rows: &[Row]) -> Vec<u8> {
    let ncols = schema.len();
    for r in rows {
        assert_eq!(r.len(), ncols, "row arity must match the frame schema");
    }
    let mut out = Vec::with_capacity(HEADER_LEN + 16 * rows.len().max(1));
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(0); // flags, reserved
    out.extend_from_slice(&schema_fingerprint(schema).to_le_bytes());
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    out.extend_from_slice(&(ncols as u32).to_le_bytes());
    out.extend_from_slice(&(logical_size(rows) as u64).to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    for col in 0..ncols {
        encode_column(rows, col, &mut out);
    }
    let checksum = hash64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Chunked streaming encode: splits the batch into bounded frames of at
/// most [`MAX_FRAME_ROWS`] rows. Always produces at least one frame, so an
/// empty batch still ships its (empty) frame and acknowledgement.
pub fn encode_frames(schema: &Schema, rows: &[Row]) -> Vec<Vec<u8>> {
    if rows.is_empty() {
        return vec![encode_frame(schema, rows)];
    }
    rows.chunks(MAX_FRAME_ROWS).map(|chunk| encode_frame(schema, chunk)).collect()
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Verify a frame's trailing checksum without decoding it. This is what
/// the simulated link runs against (possibly corrupted) delivered bytes.
pub fn verify(frame: &[u8]) -> bool {
    if frame.len() < HEADER_LEN + CHECKSUM_LEN {
        return false;
    }
    let (body, tail) = frame.split_at(frame.len() - CHECKSUM_LEN);
    u16::from_le_bytes(frame[..2].try_into().unwrap()) == MAGIC
        && hash64(body) == u64::from_le_bytes(tail.try_into().unwrap())
}

/// Sender-stamped logical byte size of a frame, read from the header
/// (`None` when the buffer is too short to be a frame). Used by the link
/// to account logical alongside wire bytes.
pub fn frame_logical_len(frame: &[u8]) -> Option<u64> {
    if frame.len() < HEADER_LEN + CHECKSUM_LEN
        || u16::from_le_bytes(frame[..2].try_into().ok()?) != MAGIC
    {
        return None;
    }
    Some(read_u64_le(&frame[20..28]))
}

fn decode_int(phys: u8, v: i64) -> Value {
    match phys {
        PHYS_SMALLINT => Value::SmallInt(v as i16),
        PHYS_INT => Value::Int(v as i32),
        PHYS_BIGINT => Value::BigInt(v),
        PHYS_DATE => Value::Date(v as i32),
        PHYS_TIMESTAMP => Value::Timestamp(v),
        _ => unreachable!(),
    }
}

fn decode_int_body(r: &mut Reader, phys: u8, n: usize) -> Result<Vec<Value>> {
    let enc = r.u8()?;
    let mut vals = Vec::with_capacity(n);
    match enc {
        ENC_RAW => {
            for _ in 0..n {
                vals.push(unzigzag64(r.varint()?));
            }
        }
        ENC_DELTA => {
            let mut prev = 0i64;
            for i in 0..n {
                let d = unzigzag64(r.varint()?);
                prev = if i == 0 { d } else { prev.wrapping_add(d) };
                vals.push(prev);
            }
        }
        ENC_RLE => {
            while vals.len() < n {
                let run = r.varint()? as usize;
                let v = unzigzag64(r.varint()?);
                if run == 0 || vals.len() + run > n {
                    return r.bad();
                }
                vals.extend(std::iter::repeat_n(v, run));
            }
        }
        _ => return r.bad(),
    }
    Ok(vals.into_iter().map(|v| decode_int(phys, v)).collect())
}

fn decode_double_body(r: &mut Reader, n: usize) -> Result<Vec<Value>> {
    let enc = r.u8()?;
    let mut vals = Vec::with_capacity(n);
    match enc {
        ENC_RAW => {
            for _ in 0..n {
                vals.push(f64::from_bits(read_u64_le(r.take(8)?)));
            }
        }
        ENC_RLE => {
            while vals.len() < n {
                let run = r.varint()? as usize;
                let v = f64::from_bits(read_u64_le(r.take(8)?));
                if run == 0 || vals.len() + run > n {
                    return r.bad();
                }
                vals.extend(std::iter::repeat_n(v, run));
            }
        }
        _ => return r.bad(),
    }
    Ok(vals.into_iter().map(Value::Double).collect())
}

fn decode_string_body(r: &mut Reader, n: usize) -> Result<Vec<Value>> {
    let enc = r.u8()?;
    let mut vals = Vec::with_capacity(n);
    match enc {
        ENC_RAW => {
            for _ in 0..n {
                let len = r.varint()? as usize;
                let s = std::str::from_utf8(r.take(len)?).map_err(|_| Error::Internal("malformed wire frame".into()))?;
                vals.push(Value::Varchar(s.into()));
            }
        }
        ENC_DICT => {
            let nentries = r.varint()? as usize;
            let mut entries = Vec::with_capacity(nentries);
            for _ in 0..nentries {
                let len = r.varint()? as usize;
                let s = std::str::from_utf8(r.take(len)?).map_err(|_| Error::Internal("malformed wire frame".into()))?;
                entries.push(s.to_string());
            }
            let idx_enc = r.u8()?;
            let mut indices = Vec::with_capacity(n);
            match idx_enc {
                IDX_PLAIN => {
                    for _ in 0..n {
                        indices.push(r.varint()? as usize);
                    }
                }
                IDX_RLE => {
                    while indices.len() < n {
                        let run = r.varint()? as usize;
                        let ix = r.varint()? as usize;
                        if run == 0 || indices.len() + run > n {
                            return r.bad();
                        }
                        indices.extend(std::iter::repeat_n(ix, run));
                    }
                }
                _ => return r.bad(),
            }
            for ix in indices {
                let s = entries.get(ix).ok_or_else(|| Error::Internal("malformed wire frame".into()))?;
                vals.push(Value::Varchar(s.clone()));
            }
        }
        _ => return r.bad(),
    }
    Ok(vals)
}

fn decode_decimal_body(r: &mut Reader, n: usize) -> Result<Vec<Value>> {
    if r.u8()? != ENC_RAW {
        return r.bad();
    }
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        let scale = r.u8()?;
        let units = unzigzag128(r.varint128()?);
        vals.push(Value::Decimal(Decimal::new(units, scale)));
    }
    Ok(vals)
}

fn decode_bool_body(r: &mut Reader, n: usize) -> Result<Vec<Value>> {
    if r.u8()? != ENC_RAW {
        return r.bad();
    }
    let bytes = r.take(n.div_ceil(8))?;
    Ok((0..n).map(|i| Value::Boolean(bytes[i / 8] >> (i % 8) & 1 == 1)).collect())
}

fn decode_mixed_body(r: &mut Reader, n: usize) -> Result<Vec<Value>> {
    if r.u8()? != ENC_RAW {
        return r.bad();
    }
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = r.u8()?;
        vals.push(match tag {
            PHYS_BOOLEAN => Value::Boolean(r.u8()? != 0),
            PHYS_SMALLINT | PHYS_INT | PHYS_BIGINT | PHYS_DATE | PHYS_TIMESTAMP => {
                decode_int(tag, unzigzag64(r.varint()?))
            }
            PHYS_DOUBLE => Value::Double(f64::from_bits(read_u64_le(r.take(8)?))),
            PHYS_DECIMAL => {
                let scale = r.u8()?;
                Value::Decimal(Decimal::new(unzigzag128(r.varint128()?), scale))
            }
            PHYS_VARCHAR => {
                let len = r.varint()? as usize;
                let s = std::str::from_utf8(r.take(len)?).map_err(|_| Error::Internal("malformed wire frame".into()))?;
                Value::Varchar(s.into())
            }
            _ => return r.bad(),
        });
    }
    Ok(vals)
}

fn decode_column(r: &mut Reader, nrows: usize) -> Result<Vec<Value>> {
    let phys = r.u8()?;
    let bitmap = r.take(nrows.div_ceil(8))?.to_vec();
    let null_at = |i: usize| bitmap[i / 8] >> (i % 8) & 1 == 1;
    let n_present = (0..nrows).filter(|&i| !null_at(i)).count();
    let present = match phys {
        PHYS_BOOLEAN => decode_bool_body(r, n_present)?,
        PHYS_SMALLINT | PHYS_INT | PHYS_BIGINT | PHYS_DATE | PHYS_TIMESTAMP => {
            decode_int_body(r, phys, n_present)?
        }
        PHYS_DOUBLE => decode_double_body(r, n_present)?,
        PHYS_DECIMAL => decode_decimal_body(r, n_present)?,
        PHYS_VARCHAR => decode_string_body(r, n_present)?,
        PHYS_MIXED => decode_mixed_body(r, n_present)?,
        _ => return r.bad(),
    };
    let mut it = present.into_iter();
    Ok((0..nrows).map(|i| if null_at(i) { Value::Null } else { it.next().unwrap() }).collect())
}

/// Decode a frame back into rows, verifying the checksum first. A failed
/// checksum surfaces as [`Error::LinkFailure`] (SQLCODE -30081) so it
/// feeds the same retry path as any other communication failure;
/// structurally malformed frames are internal errors.
pub fn decode_frame(frame: &[u8]) -> Result<DecodedFrame> {
    if !verify(frame) {
        return Err(Error::LinkFailure("wire frame checksum mismatch".into()));
    }
    let body = &frame[..frame.len() - CHECKSUM_LEN];
    if body[2] != VERSION {
        return Err(Error::Internal(format!("unsupported wire frame version {}", body[2])));
    }
    let fingerprint = read_u64_le(&body[4..12]);
    let nrows = read_u32_le(&body[12..16]) as usize;
    let ncols = read_u32_le(&body[16..20]) as usize;
    let logical_len = read_u64_le(&body[20..28]);
    let mut r = Reader::new(&body[HEADER_LEN..]);
    let mut columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        columns.push(decode_column(&mut r, nrows)?);
    }
    if !r.done() {
        return r.bad();
    }
    let mut rows: Vec<Row> = (0..nrows).map(|_| Vec::with_capacity(ncols)).collect();
    for col in columns {
        for (row, v) in rows.iter_mut().zip(col) {
            row.push(v);
        }
    }
    Ok(DecodedFrame { fingerprint, logical_len, rows })
}

/// Decode a frame that must have been produced under `schema`; a
/// fingerprint mismatch means sender and receiver disagree about the table
/// shape and is an internal error.
pub fn decode_rows(frame: &[u8], schema: &Schema) -> Result<Vec<Row>> {
    let decoded = decode_frame(frame)?;
    if decoded.fingerprint != schema_fingerprint(schema) {
        return Err(Error::Internal("wire frame schema fingerprint mismatch".into()));
    }
    Ok(decoded.rows)
}

// ---------------------------------------------------------------------------
// Join-key summaries (Bloom bits + min/max range)
// ---------------------------------------------------------------------------

/// Magic tag distinguishing an encoded [`KeySummary`] from a row frame.
const SUMMARY_MAGIC: u16 = 0xB1F0;

/// Cap on decoded Bloom words — a summary claiming more than this is
/// malformed, not merely large (64 Ki words = 4 Mi bits digests ~400k keys).
const SUMMARY_MAX_WORDS: usize = 1 << 16;

/// Hash of an integer-family join key. Shared by the accelerator's join
/// Bloom filters and the fleet scatter pushdown so both ends of a link
/// agree on membership bits for the same key value.
pub fn key_hash_i64(v: i64) -> u64 {
    hash64(&v.to_le_bytes())
}

/// Hash of a character join key. Trailing blanks are trimmed first so the
/// hash respects DB2 padded-comparison equality (`'a' = 'a  '`).
pub fn key_hash_str(s: &str) -> u64 {
    hash64(s.trim_end_matches(' ').as_bytes())
}

/// Digest of a join's build-side keys: a Bloom filter over key hashes plus
/// the min/max of integer keys. Membership tests may *only* false-positive
/// (a key that was inserted always tests present), so pre-filtering a probe
/// side with a summary can never drop a joining row — the exact key compare
/// downstream removes the false positives. Construction and encoding are
/// pure functions of the inserted keys, so equal build sides produce
/// byte-identical summaries on every run.
#[derive(Debug, Clone, PartialEq)]
pub struct KeySummary {
    /// Bloom bit words; the word count is a power of two so bit positions
    /// reduce with a mask.
    words: Vec<u64>,
    min: Option<i64>,
    max: Option<i64>,
}

impl KeySummary {
    /// A summary sized for roughly `nkeys` distinct keys (~10 bits/key with
    /// two probes ⇒ a few percent false-positive rate).
    pub fn with_capacity(nkeys: usize) -> KeySummary {
        let nbits = nkeys.saturating_mul(10).next_power_of_two().clamp(64, SUMMARY_MAX_WORDS * 64);
        KeySummary { words: vec![0; nbits / 64], min: None, max: None }
    }

    /// The two Bloom bit positions for one key hash.
    fn bit_positions(&self, h: u64) -> [usize; 2] {
        let mask = self.words.len() * 64 - 1;
        [h as usize & mask, (h >> 32) as usize & mask]
    }

    /// Insert a pre-computed key hash (see [`key_hash_i64`]/[`key_hash_str`]).
    pub fn insert_hash(&mut self, h: u64) {
        for b in self.bit_positions(h) {
            self.words[b / 64] |= 1 << (b % 64);
        }
    }

    /// Bloom membership test for a pre-computed key hash.
    pub fn might_contain(&self, h: u64) -> bool {
        self.bit_positions(h).iter().all(|&b| self.words[b / 64] >> (b % 64) & 1 == 1)
    }

    /// Insert an integer key, widening the min/max range.
    pub fn insert_i64(&mut self, v: i64) {
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
        self.insert_hash(key_hash_i64(v));
    }

    /// Insert a character key (trailing blanks are trimmed by the hash).
    pub fn insert_str(&mut self, s: &str) {
        self.insert_hash(key_hash_str(s));
    }

    /// Could an integer probe key join? Range check first, then Bloom bits.
    pub fn contains_i64(&self, v: i64) -> bool {
        if let (Some(lo), Some(hi)) = (self.min, self.max) {
            if v < lo || v > hi {
                return false;
            }
        }
        self.might_contain(key_hash_i64(v))
    }

    /// Could a character probe key join?
    pub fn contains_str(&self, s: &str) -> bool {
        self.might_contain(key_hash_str(s))
    }

    /// Conservative membership for an arbitrary probe value, for use on an
    /// INNER equi-join probe side only: NULL never joins, so it is dropped
    /// exactly; integer and character values consult the digest; any other
    /// variant (doubles, decimals, dates, …) is kept — their cross-type
    /// equality semantics are not representable in the hash domain, and
    /// keeping them is the false-positive-only rule.
    pub fn matches_value(&self, v: &Value) -> bool {
        match v {
            Value::Null => false,
            Value::SmallInt(x) => self.contains_i64(*x as i64),
            Value::Int(x) => self.contains_i64(*x as i64),
            Value::BigInt(x) => self.contains_i64(*x),
            Value::Varchar(s) => self.contains_str(s),
            _ => true,
        }
    }

    /// The inserted integer keys' `(min, max)`, if any integer was inserted.
    pub fn range(&self) -> Option<(i64, i64)> {
        match (self.min, self.max) {
            (Some(lo), Some(hi)) => Some((lo, hi)),
            _ => None,
        }
    }
}

/// Encode a summary into a self-checking byte buffer — what scatter
/// requests are charged for when a join pushdown rides along. Deterministic:
/// equal summaries produce equal bytes.
pub fn encode_summary(s: &KeySummary) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + s.words.len() * 8);
    out.extend_from_slice(&SUMMARY_MAGIC.to_le_bytes());
    out.push(VERSION);
    // min and max are always set together.
    out.push(s.min.is_some() as u8);
    put_varint(&mut out, s.words.len() as u64);
    for w in &s.words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    if let (Some(lo), Some(hi)) = (s.min, s.max) {
        put_varint(&mut out, zigzag64(lo));
        put_varint(&mut out, zigzag64(hi));
    }
    let checksum = hash64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decode an encoded summary, verifying its checksum first. Checksum or
/// magic damage maps to a link failure (-30081) like any corrupted frame;
/// structural damage behind a valid checksum is an internal error.
pub fn decode_summary(buf: &[u8]) -> Result<KeySummary> {
    if buf.len() < 4 + CHECKSUM_LEN {
        return Err(Error::LinkFailure("key summary checksum mismatch".into()));
    }
    let (body, tail) = buf.split_at(buf.len() - CHECKSUM_LEN);
    if u16::from_le_bytes(body[..2].try_into().unwrap()) != SUMMARY_MAGIC
        || hash64(body) != u64::from_le_bytes(tail.try_into().unwrap())
    {
        return Err(Error::LinkFailure("key summary checksum mismatch".into()));
    }
    if body[2] != VERSION {
        return Err(Error::Internal(format!("unsupported key summary version {}", body[2])));
    }
    let has_range = body[3];
    let mut r = Reader::new(&body[4..]);
    let nwords = r.varint()? as usize;
    if nwords == 0 || !nwords.is_power_of_two() || nwords > SUMMARY_MAX_WORDS {
        return r.bad();
    }
    let mut words = Vec::with_capacity(nwords);
    for _ in 0..nwords {
        words.push(read_u64_le(r.take(8)?));
    }
    let (min, max) = match has_range {
        0 => (None, None),
        1 => (Some(unzigzag64(r.varint()?)), Some(unzigzag64(r.varint()?))),
        _ => return r.bad(),
    };
    if !r.done() {
        return r.bad();
    }
    Ok(KeySummary { words, min, max })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::DataType;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("id", DataType::Integer),
            ColumnDef::new("region", DataType::Varchar(8)),
            ColumnDef::new("amount", DataType::Double),
            ColumnDef::new("price", DataType::Decimal(10, 2)),
            ColumnDef::new("sold", DataType::Date),
            ColumnDef::new("flag", DataType::Boolean),
        ])
        .unwrap()
    }

    fn sample_rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Int(i as i32),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Varchar(if i % 3 == 0 { "EU".into() } else { "US".into() })
                    },
                    Value::Double(i as f64 * 1.5),
                    Value::Decimal(Decimal::new(-12345 + i as i128, 2)),
                    Value::Date(17_000 + (i / 10) as i32),
                    Value::Boolean(i % 2 == 0),
                ]
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_exact_variants() {
        let s = schema();
        let rows = sample_rows(100);
        let frame = encode_frame(&s, &rows);
        assert!(verify(&frame));
        let back = decode_rows(&frame, &s).unwrap();
        assert_eq!(back.len(), rows.len());
        for (a, b) in rows.iter().zip(&back) {
            for (x, y) in a.iter().zip(b) {
                // `Value::PartialEq` compares across representations; the
                // discriminant check pins the exact variant.
                assert_eq!(std::mem::discriminant(x), std::mem::discriminant(y));
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn empty_batch_roundtrips() {
        let s = schema();
        let frame = encode_frame(&s, &[]);
        assert!(verify(&frame));
        assert_eq!(decode_rows(&frame, &s).unwrap(), Vec::<Row>::new());
        assert_eq!(frame_logical_len(&frame), Some(RESULT_FRAME as u64));
    }

    #[test]
    fn encoding_is_deterministic() {
        let s = schema();
        let rows = sample_rows(64);
        assert_eq!(encode_frame(&s, &rows), encode_frame(&s, &rows));
    }

    #[test]
    fn compresses_low_cardinality_and_sequences() {
        let s = schema();
        let rows = sample_rows(1000);
        let frame = encode_frame(&s, &rows);
        let logical = logical_size(&rows);
        assert_eq!(frame_logical_len(&frame), Some(logical as u64));
        assert!(
            frame.len() * 2 < logical,
            "expected ≥2x compression, got {} wire vs {} logical",
            frame.len(),
            logical
        );
    }

    #[test]
    fn chunking_bounds_frames_and_roundtrips() {
        let s = schema();
        let rows = sample_rows(MAX_FRAME_ROWS + 17);
        let frames = encode_frames(&s, &rows);
        assert_eq!(frames.len(), 2);
        let mut back = Vec::new();
        for f in &frames {
            back.extend(decode_rows(f, &s).unwrap());
        }
        assert_eq!(back, rows);
        assert_eq!(encode_frames(&s, &[]).len(), 1, "empty batches still frame");
    }

    #[test]
    fn corruption_is_detected_anywhere() {
        let s = schema();
        let frame = encode_frame(&s, &sample_rows(40));
        for pos in [0, 2, HEADER_LEN - 1, HEADER_LEN + 5, frame.len() - 1] {
            let mut bad = frame.clone();
            bad[pos] ^= 0x40;
            assert!(!verify(&bad), "flip at {pos} must fail the checksum");
            let err = decode_frame(&bad).unwrap_err();
            assert_eq!(err.sqlcode(), -30081, "corrupt frame maps to -30081");
        }
        let err = decode_frame(&frame[..10]).unwrap_err();
        assert_eq!(err.sqlcode(), -30081, "truncated frame maps to -30081");
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let s = schema();
        let other = Schema::new(vec![ColumnDef::new("x", DataType::Integer)]).unwrap();
        let frame = encode_frame(&s, &sample_rows(3));
        assert!(decode_rows(&frame, &other).is_err());
        assert_ne!(schema_fingerprint(&s), schema_fingerprint(&other));
    }

    #[test]
    fn mixed_and_all_null_columns_roundtrip() {
        let s = Schema::new(vec![
            ColumnDef::new("a", DataType::Varchar(20)),
            ColumnDef::new("b", DataType::Integer),
        ])
        .unwrap();
        // Heterogeneous column (result sets can mix variants) and an
        // all-null column.
        let rows: Vec<Row> = vec![
            vec![Value::Varchar(String::new()), Value::Null],
            vec![Value::BigInt(-9_000_000_000), Value::Null],
            vec![Value::Timestamp(1_458_048_330_000_250), Value::Null],
            vec![Value::Null, Value::Null],
            vec![Value::Boolean(false), Value::Null],
            vec![Value::Double(-0.0), Value::Null],
            vec![Value::Decimal(Decimal::new(i128::from(i64::MIN) * 7, 31)), Value::Null],
            vec![Value::SmallInt(-32768), Value::Null],
        ];
        let frame = encode_frame(&s, &rows);
        let back = decode_frame(&frame).unwrap().rows;
        for (a, b) in rows.iter().zip(&back) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(std::mem::discriminant(x), std::mem::discriminant(y));
            }
        }
        // Bit-exact doubles: -0.0 must come back as -0.0.
        match back[5][0] {
            Value::Double(d) => assert!(d == 0.0 && d.is_sign_negative()),
            ref other => panic!("expected DOUBLE, got {other:?}"),
        }
        assert_eq!(back, rows);
    }

    #[test]
    fn logical_size_matches_rows_wire_size() {
        let s = schema();
        let rows = sample_rows(25);
        let batch = crate::Rows::new(s, rows.clone());
        assert_eq!(logical_size(&rows), batch.wire_size());
        assert_eq!(logical_size(&[]), RESULT_FRAME);
    }

    #[test]
    fn extreme_integers_roundtrip() {
        let s = Schema::new(vec![ColumnDef::new("v", DataType::BigInt)]).unwrap();
        let rows: Vec<Row> = [i64::MIN, i64::MAX, 0, -1, 1, i64::MIN + 1]
            .iter()
            .map(|&v| vec![Value::BigInt(v)])
            .collect();
        let frame = encode_frame(&s, &rows);
        assert_eq!(decode_rows(&frame, &s).unwrap(), rows);
    }

    #[test]
    fn key_summary_never_false_negatives() {
        let mut s = KeySummary::with_capacity(200);
        for v in 0..200i64 {
            s.insert_i64(v * 3);
        }
        for v in 0..200i64 {
            assert!(s.contains_i64(v * 3), "inserted key {v} must test present");
            assert!(s.matches_value(&Value::BigInt(v * 3)));
            assert!(s.matches_value(&Value::Int((v * 3) as i32)), "cross-variant integer");
        }
        // Min/max makes out-of-range misses exact, not probabilistic.
        assert_eq!(s.range(), Some((0, 597)));
        assert!(!s.contains_i64(-1));
        assert!(!s.contains_i64(598));
        // Some in-range non-members must miss, or the filter is useless.
        let misses = (0..200i64).filter(|v| !s.contains_i64(v * 3 + 1)).count();
        assert!(misses > 150, "expected most non-members to miss, got {misses}/200");
    }

    #[test]
    fn key_summary_string_keys_trim_blanks() {
        let mut s = KeySummary::with_capacity(8);
        s.insert_str("EU");
        assert!(s.contains_str("EU"));
        // DB2 padded comparison: 'EU  ' = 'EU', so the digest must agree.
        assert!(s.contains_str("EU  "));
        assert!(s.matches_value(&Value::Varchar("EU ".into())));
        assert_eq!(key_hash_str("EU"), key_hash_str("EU   "));
        assert!(!s.contains_str("US"));
        assert_eq!(s.range(), None, "string keys carry no integer range");
    }

    #[test]
    fn key_summary_value_semantics() {
        let mut s = KeySummary::with_capacity(4);
        s.insert_i64(7);
        // NULL never joins on an INNER probe side: dropped exactly.
        assert!(!s.matches_value(&Value::Null));
        // Variants outside the hash domain are conservatively kept —
        // Double(7.0) = Int(7) under SQL numeric equality.
        assert!(s.matches_value(&Value::Double(7.0)));
        assert!(s.matches_value(&Value::Decimal(Decimal::new(700, 2))));
    }

    #[test]
    fn key_summary_roundtrips_and_is_deterministic() {
        let mut s = KeySummary::with_capacity(100);
        for v in [-5i64, 0, 3, 1 << 40, i64::MIN, i64::MAX] {
            s.insert_i64(v);
        }
        s.insert_str("region-x");
        let bytes = encode_summary(&s);
        assert_eq!(bytes, encode_summary(&s), "encoding must be deterministic");
        let back = decode_summary(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.range(), Some((i64::MIN, i64::MAX)));
        assert!(back.contains_str("region-x"));

        // Empty summary (no keys): matches no hashable value.
        let empty = KeySummary::with_capacity(0);
        let back = decode_summary(&encode_summary(&empty)).unwrap();
        assert!(!back.contains_i64(0));
        assert_eq!(back.range(), None);
    }

    #[test]
    fn key_summary_corruption_is_detected() {
        let mut s = KeySummary::with_capacity(16);
        s.insert_i64(42);
        let bytes = encode_summary(&s);
        for pos in [0, 2, 3, bytes.len() / 2, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            let err = decode_summary(&bad).unwrap_err();
            assert_eq!(err.sqlcode(), -30081, "flip at {pos} maps to -30081");
        }
        assert_eq!(decode_summary(&bytes[..6]).unwrap_err().sqlcode(), -30081);
    }

    #[test]
    fn hash64_known_properties() {
        // Stability pin: the checksum function must never change silently,
        // or recorded experiment byte counts drift.
        assert_eq!(hash64(b""), hash64(b""));
        assert_ne!(hash64(b"a"), hash64(b"b"));
        assert_ne!(hash64(b"abcd"), hash64(b"abce"));
        let long: Vec<u8> = (0..255u8).collect();
        assert_ne!(hash64(&long), hash64(&long[..254]));
    }
}
