//! Table schemas: ordered, named, typed columns.

use crate::error::{Error, Result};
use crate::types::DataType;
use crate::value::Value;
use std::fmt;

/// One column of a table or derived result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Upper-cased column name.
    pub name: String,
    /// Declared type.
    pub data_type: DataType,
    /// `NOT NULL` constraint.
    pub not_null: bool,
}

impl ColumnDef {
    /// Nullable column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef { name: crate::ident::normalize(&name.into()), data_type, not_null: false }
    }

    /// NOT NULL column.
    pub fn not_null(name: impl Into<String>, data_type: DataType) -> Self {
        ColumnDef { name: crate::ident::normalize(&name.into()), data_type, not_null: true }
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<ColumnDef>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names (SQLCODE -612
    /// analogue surfaces as `AlreadyExists`).
    pub fn new(columns: Vec<ColumnDef>) -> Result<Schema> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|o| o.name == c.name) {
                return Err(Error::AlreadyExists(format!("duplicate column {}", c.name)));
            }
        }
        Ok(Schema { columns })
    }

    /// Build a schema without the duplicate-name check. Result sets may
    /// legitimately carry duplicate column names (`SELECT a, a FROM t`), so
    /// derived schemas use this constructor; base-table DDL must not.
    pub fn new_unchecked(columns: Vec<ColumnDef>) -> Schema {
        Schema { columns }
    }

    /// Columns in declaration order.
    pub fn columns(&self) -> &[ColumnDef] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Ordinal of `name` (already-normalized or not).
    pub fn index_of(&self, name: &str) -> Result<usize> {
        let norm = crate::ident::normalize(name);
        self.columns
            .iter()
            .position(|c| c.name == norm)
            .ok_or_else(|| Error::UndefinedColumn(format!("column {norm} not found")))
    }

    /// Column def by name.
    pub fn column(&self, name: &str) -> Result<&ColumnDef> {
        Ok(&self.columns[self.index_of(name)?])
    }

    /// Validate a row against this schema: arity, NOT NULL, and value/type
    /// compatibility; coerces values to the declared column types
    /// (e.g. INT literal into a DECIMAL column, CHAR padding).
    pub fn check_row(&self, values: &[Value]) -> Result<Vec<Value>> {
        if values.len() != self.columns.len() {
            return Err(Error::Constraint(format!(
                "row has {} values but table has {} columns",
                values.len(),
                self.columns.len()
            )));
        }
        self.columns
            .iter()
            .zip(values)
            .map(|(col, v)| {
                if v.is_null() {
                    if col.not_null {
                        return Err(Error::Constraint(format!(
                            "NULL not allowed in NOT NULL column {}",
                            col.name
                        )));
                    }
                    return Ok(Value::Null);
                }
                v.cast(col.data_type)
            })
            .collect()
    }

    /// Byte width of one row on the wire (used for cost estimation before
    /// actual values exist).
    pub fn estimated_row_width(&self) -> usize {
        self.columns.iter().map(|c| 1 + c.data_type.storage_width()).sum()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.data_type)?;
            if c.not_null {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ColumnDef::not_null("id", DataType::Integer),
            ColumnDef::new("name", DataType::Varchar(10)),
            ColumnDef::new("amount", DataType::Decimal(10, 2)),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = Schema::new(vec![
            ColumnDef::new("a", DataType::Integer),
            ColumnDef::new("A", DataType::Integer),
        ]);
        assert!(matches!(r, Err(Error::AlreadyExists(_))));
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("ID").unwrap(), 0);
        assert_eq!(s.index_of("name").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
    }

    #[test]
    fn check_row_enforces_arity() {
        let s = schema();
        assert!(s.check_row(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn check_row_enforces_not_null() {
        let s = schema();
        let r = s.check_row(&[Value::Null, Value::Null, Value::Null]);
        assert!(matches!(r, Err(Error::Constraint(_))));
    }

    #[test]
    fn check_row_coerces_types() {
        let s = schema();
        let row = s
            .check_row(&[Value::BigInt(7), Value::Varchar("bob".into()), Value::Int(3)])
            .unwrap();
        assert_eq!(row[0], Value::Int(7));
        assert_eq!(row[2].render(), "3.00");
    }

    #[test]
    fn check_row_rejects_oversize_varchar() {
        let s = schema();
        let r = s.check_row(&[
            Value::Int(1),
            Value::Varchar("0123456789ABC".into()),
            Value::Null,
        ]);
        assert!(matches!(r, Err(Error::Constraint(_))));
    }

    #[test]
    fn display_renders_ddl_fragment() {
        assert_eq!(
            schema().to_string(),
            "(ID INTEGER NOT NULL, NAME VARCHAR(10), AMOUNT DECIMAL(10,2))"
        );
    }
}
