//! SQL object identifiers.
//!
//! DB2 folds unquoted identifiers to upper case; we follow that rule at
//! parse time, so identifiers here are stored already-normalized.

use std::fmt;

/// A (possibly schema-qualified) object name, e.g. `SALES` or `DWH.SALES`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectName {
    /// Optional schema qualifier.
    pub schema: Option<String>,
    /// Unqualified object name.
    pub name: String,
}

impl ObjectName {
    /// Unqualified name.
    pub fn bare(name: impl Into<String>) -> Self {
        ObjectName { schema: None, name: normalize(&name.into()) }
    }

    /// Schema-qualified name.
    pub fn qualified(schema: impl Into<String>, name: impl Into<String>) -> Self {
        ObjectName { schema: Some(normalize(&schema.into())), name: normalize(&name.into()) }
    }

    /// Catalog key: schema-qualified names resolve as-is; bare names resolve
    /// in the given default schema.
    pub fn resolve(&self, default_schema: &str) -> ObjectName {
        match &self.schema {
            Some(_) => self.clone(),
            None => ObjectName { schema: Some(default_schema.to_string()), name: self.name.clone() },
        }
    }
}

/// Uppercase-fold an identifier the way DB2 treats unquoted identifiers.
pub fn normalize(s: &str) -> String {
    s.to_ascii_uppercase()
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.schema {
            Some(s) => write!(f, "{}.{}", s, self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

impl From<&str> for ObjectName {
    fn from(s: &str) -> Self {
        match s.split_once('.') {
            Some((schema, name)) => ObjectName::qualified(schema, name),
            None => ObjectName::bare(s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_fold_to_upper() {
        assert_eq!(ObjectName::bare("sales").name, "SALES");
        assert_eq!(ObjectName::from("dwh.sales").to_string(), "DWH.SALES");
    }

    #[test]
    fn resolve_applies_default_schema() {
        let n = ObjectName::bare("T1").resolve("APP");
        assert_eq!(n.to_string(), "APP.T1");
        let q = ObjectName::qualified("X", "T1").resolve("APP");
        assert_eq!(q.to_string(), "X.T1");
    }
}
