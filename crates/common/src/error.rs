//! Workspace-wide error type.
//!
//! Error variants carry a DB2-compatible SQLCODE analogue where one exists,
//! so tests and applications can assert on the same negative codes a real
//! DB2 for z/OS installation would surface (e.g. `-204` undefined object,
//! `-551` missing privilege, `-4742` invalid accelerator table mix).

use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// All errors produced anywhere in the idaa-rs stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// SQL text could not be tokenized or parsed. SQLCODE -104.
    Parse(String),
    /// Referenced object (table, column, index, procedure) does not exist.
    /// SQLCODE -204.
    UndefinedObject(String),
    /// Object already exists. SQLCODE -601.
    AlreadyExists(String),
    /// Column not found or ambiguous. SQLCODE -206.
    UndefinedColumn(String),
    /// Authorization failure: the current user lacks a required privilege.
    /// SQLCODE -551.
    Privilege(String),
    /// A statement mixes accelerator-only tables with tables that are not
    /// available on the accelerator, or is otherwise not executable in the
    /// required location. SQLCODE -4742.
    InvalidAcceleratorUse(String),
    /// The statement is valid SQL but not eligible for acceleration while
    /// `CURRENT QUERY ACCELERATION` demands it. SQLCODE -4742 (reason 13).
    NotOffloadable(String),
    /// NOT NULL or type constraint violated. SQLCODE -407.
    Constraint(String),
    /// Type error during evaluation (incomparable/uncastable values).
    /// SQLCODE -420.
    TypeMismatch(String),
    /// Arithmetic error such as division by zero or overflow. SQLCODE -802.
    Arithmetic(String),
    /// Deadlock or lock timeout. SQLCODE -911/-913.
    LockTimeout(String),
    /// Transaction state error (e.g. operating on an aborted transaction).
    TransactionState(String),
    /// The two-phase commit protocol failed; the transaction was rolled
    /// back on all participants.
    CommitFailed(String),
    /// Communication with the accelerator failed (message lost, link
    /// outage) and the statement could not be completed there.
    /// SQLCODE -30081 (DRDA communication failure).
    LinkFailure(String),
    /// A required resource — here, the accelerator itself — is stopped or
    /// otherwise unavailable. SQLCODE -904.
    ResourceUnavailable(String),
    /// The server's workload manager refused the request: a configured
    /// session or queue-depth limit is exhausted. SQLCODE -905 (DB2's
    /// "resource limit exceeded" analogue) — unlike -904, the system is
    /// healthy; the caller is being governed.
    WorkloadLimit(String),
    /// The accelerator's durable state failed checksum validation beyond
    /// local repair (bit-rot in acknowledged log records or every
    /// retained checkpoint): the node must be rebuilt from a replica or
    /// the host before it can serve again. Surfaces as SQLCODE -904
    /// (resource unavailable while the rebuild runs) but is kept
    /// distinct so the coordinator can tell "retry the restart" from
    /// "rebuild the node".
    StorageCorrupt(String),
    /// A feature that exists in full DB2/IDAA but is outside this
    /// reproduction's dialect subset.
    Unsupported(String),
    /// Loader-side ingestion error (malformed record, source failure).
    Load(String),
    /// Invariant violation inside the engine — always a bug.
    Internal(String),
}

impl Error {
    /// DB2-style SQLCODE analogue for this error, when one applies.
    pub fn sqlcode(&self) -> i32 {
        match self {
            Error::Parse(_) => -104,
            Error::UndefinedObject(_) => -204,
            Error::AlreadyExists(_) => -601,
            Error::UndefinedColumn(_) => -206,
            Error::Privilege(_) => -551,
            Error::InvalidAcceleratorUse(_) => -4742,
            Error::NotOffloadable(_) => -4742,
            Error::Constraint(_) => -407,
            Error::TypeMismatch(_) => -420,
            Error::Arithmetic(_) => -802,
            Error::LockTimeout(_) => -913,
            Error::TransactionState(_) => -918,
            Error::CommitFailed(_) => -926,
            Error::LinkFailure(_) => -30081,
            Error::ResourceUnavailable(_) => -904,
            Error::WorkloadLimit(_) => -905,
            Error::StorageCorrupt(_) => -904,
            Error::Unsupported(_) => -84,
            Error::Load(_) => -103,
            Error::Internal(_) => -901,
        }
    }

    /// Short classification keyword, useful in logs and test assertions.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Parse(_) => "parse",
            Error::UndefinedObject(_) => "undefined_object",
            Error::AlreadyExists(_) => "already_exists",
            Error::UndefinedColumn(_) => "undefined_column",
            Error::Privilege(_) => "privilege",
            Error::InvalidAcceleratorUse(_) => "invalid_accelerator_use",
            Error::NotOffloadable(_) => "not_offloadable",
            Error::Constraint(_) => "constraint",
            Error::TypeMismatch(_) => "type_mismatch",
            Error::Arithmetic(_) => "arithmetic",
            Error::LockTimeout(_) => "lock_timeout",
            Error::TransactionState(_) => "transaction_state",
            Error::CommitFailed(_) => "commit_failed",
            Error::LinkFailure(_) => "link_failure",
            Error::ResourceUnavailable(_) => "resource_unavailable",
            Error::WorkloadLimit(_) => "workload_limit",
            Error::StorageCorrupt(_) => "storage_corrupt",
            Error::Unsupported(_) => "unsupported",
            Error::Load(_) => "load",
            Error::Internal(_) => "internal",
        }
    }

    /// Helper for `Error::Internal` with formatted message.
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            Error::Parse(m)
            | Error::UndefinedObject(m)
            | Error::AlreadyExists(m)
            | Error::UndefinedColumn(m)
            | Error::Privilege(m)
            | Error::InvalidAcceleratorUse(m)
            | Error::NotOffloadable(m)
            | Error::Constraint(m)
            | Error::TypeMismatch(m)
            | Error::Arithmetic(m)
            | Error::LockTimeout(m)
            | Error::TransactionState(m)
            | Error::CommitFailed(m)
            | Error::LinkFailure(m)
            | Error::ResourceUnavailable(m)
            | Error::WorkloadLimit(m)
            | Error::StorageCorrupt(m)
            | Error::Unsupported(m)
            | Error::Load(m)
            | Error::Internal(m) => m,
        };
        write!(f, "SQLCODE {} [{}]: {}", self.sqlcode(), self.kind(), msg)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqlcodes_match_db2_analogues() {
        assert_eq!(Error::UndefinedObject("t".into()).sqlcode(), -204);
        assert_eq!(Error::Privilege("p".into()).sqlcode(), -551);
        assert_eq!(Error::InvalidAcceleratorUse("x".into()).sqlcode(), -4742);
        assert_eq!(Error::AlreadyExists("t".into()).sqlcode(), -601);
        assert_eq!(Error::Constraint("c".into()).sqlcode(), -407);
        assert_eq!(Error::LinkFailure("l".into()).sqlcode(), -30081);
        assert_eq!(Error::ResourceUnavailable("r".into()).sqlcode(), -904);
    }

    /// Workload-manager refusals are governance, not outages: they carry
    /// -905 (resource limit exceeded), distinct from the -904 a stopped
    /// accelerator surfaces, so callers can tell "back off and resubmit"
    /// from "the appliance is down".
    #[test]
    fn workload_limit_is_905_and_distinct_from_outage() {
        let e = Error::WorkloadLimit("session queue depth limit (4) reached".into());
        assert_eq!(e.sqlcode(), -905);
        assert_eq!(e.kind(), "workload_limit");
        assert!(e.to_string().contains("-905"));
        assert_ne!(e.sqlcode(), Error::ResourceUnavailable("x".into()).sqlcode());
    }

    /// The fleet maps shard-level failures onto the same two federation
    /// SQLCODEs the single-accelerator path uses: a shard whose every
    /// replica is down is a resource problem (-904); a shard whose gather
    /// exchange died after retries on every live replica is a
    /// communication problem (-30081).
    #[test]
    fn fleet_shard_errors_reuse_the_federation_sqlcodes() {
        let down =
            Error::ResourceUnavailable("shard 2 of APP.T has no live replica; all owners are unavailable".into());
        assert_eq!(down.sqlcode(), -904);
        assert_eq!(down.kind(), "resource_unavailable");
        assert!(down.to_string().contains("shard 2"));

        let dead = Error::LinkFailure(
            "the exchange for shard 2 of APP.T failed after retries on every replica".into(),
        );
        assert_eq!(dead.sqlcode(), -30081);
        assert_eq!(dead.kind(), "link_failure");
        assert!(dead.to_string().contains("-30081"));
    }

    #[test]
    fn display_includes_code_kind_and_message() {
        let e = Error::Privilege("user BOB lacks SELECT on SALES".into());
        let s = e.to_string();
        assert!(s.contains("-551"));
        assert!(s.contains("privilege"));
        assert!(s.contains("BOB"));
    }

    #[test]
    fn kind_is_stable() {
        assert_eq!(Error::Parse("x".into()).kind(), "parse");
        assert_eq!(Error::NotOffloadable("x".into()).kind(), "not_offloadable");
    }
}
