//! Rows and row batches exchanged between operators and across the
//! host↔accelerator link.

use crate::schema::Schema;
use crate::value::Value;

/// One materialized row.
pub type Row = Vec<Value>;

/// A materialized result set: schema plus rows. This is the unit shipped
/// across the federation boundary, so it knows its own wire size.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Rows {
    /// Result schema (column names/types of the projection).
    pub schema: Schema,
    /// Row data.
    pub rows: Vec<Row>,
}

impl Rows {
    /// Empty result with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Rows { schema, rows: Vec::new() }
    }

    /// Result with rows.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        Rows { schema, rows }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Logical (pre-encoding) bytes of this result: per-value variable
    /// encoding plus a small per-row and per-result frame overhead. The
    /// link charges the *encoded* frame length (see [`crate::wire`]) and
    /// accounts this logical size alongside it for compression reporting.
    pub fn wire_size(&self) -> usize {
        crate::wire::logical_size(&self.rows)
    }

    /// First value of the first row — convenient for scalar queries.
    pub fn scalar(&self) -> Option<&Value> {
        self.rows.first().and_then(|r| r.first())
    }

    /// Render as CSV with a header row. Fields containing the separator,
    /// quotes, or newlines are quoted with `"` doubling; NULL renders as an
    /// empty field (the loader's convention, making export/import
    /// round-trippable).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n', '\r']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        let headers: Vec<String> =
            self.schema.columns().iter().map(|c| field(&c.name)).collect();
        out.push_str(&headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| if v.is_null() { String::new() } else { field(&v.render()) })
                .collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Render as an aligned ASCII table (for examples and the bench
    /// harness).
    pub fn to_table(&self) -> String {
        let headers: Vec<String> = self.schema.columns().iter().map(|c| c.name.clone()).collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.render()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() && cell.len() > widths[i] {
                    widths[i] = cell.len();
                }
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (h, w) in headers.iter().zip(&widths) {
            out.push_str(&format!(" {h:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (c, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {c:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out.push_str(&format!("{} row(s)\n", self.rows.len()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::types::DataType;

    fn rows() -> Rows {
        Rows::new(
            Schema::new(vec![
                ColumnDef::new("id", DataType::Integer),
                ColumnDef::new("name", DataType::Varchar(10)),
            ])
            .unwrap(),
            vec![
                vec![Value::Int(1), Value::Varchar("alpha".into())],
                vec![Value::Int(2), Value::Null],
            ],
        )
    }

    #[test]
    fn wire_size_grows_with_rows() {
        let r = rows();
        let empty = Rows::empty(r.schema.clone());
        assert!(r.wire_size() > empty.wire_size());
        assert_eq!(empty.wire_size(), 64);
    }

    #[test]
    fn scalar_returns_first_value() {
        assert_eq!(rows().scalar(), Some(&Value::Int(1)));
        assert_eq!(Rows::default().scalar(), None);
    }

    #[test]
    fn csv_rendering_quotes_and_nulls() {
        let r = Rows::new(
            Schema::new(vec![
                ColumnDef::new("id", DataType::Integer),
                ColumnDef::new("note", DataType::Varchar(32)),
            ])
            .unwrap(),
            vec![
                vec![Value::Int(1), Value::Varchar("plain".into())],
                vec![Value::Int(2), Value::Varchar("has, comma".into())],
                vec![Value::Int(3), Value::Varchar("say \"hi\"".into())],
                vec![Value::Int(4), Value::Null],
            ],
        );
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "ID,NOTE");
        assert_eq!(lines[1], "1,plain");
        assert_eq!(lines[2], "2,\"has, comma\"");
        assert_eq!(lines[3], "3,\"say \"\"hi\"\"\"");
        assert_eq!(lines[4], "4,", "NULL exports as empty field");
        // Round trip through the loader's CSV source + field parser.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn table_rendering_contains_headers_and_count() {
        let t = rows().to_table();
        assert!(t.contains("ID"));
        assert!(t.contains("NAME"));
        assert!(t.contains("alpha"));
        assert!(t.contains("2 row(s)"));
    }
}
