//! Process-wide metrics: named monotone counters and gauges.
//!
//! Counters only ever increase (the registry enforces it), gauges are
//! last-write-wins. A [`MetricsRegistry::render`] snapshot is a sorted,
//! byte-stable text table, so experiment output and tests can pin it the
//! same way they pin `LinkMetrics` — nothing here ever records wall-clock
//! time.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Registry of named monotone counters and last-write-wins gauges.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, i64>>,
}

impl MetricsRegistry {
    /// Add `by` to the named counter (creating it at zero first).
    pub fn inc(&self, name: &str, by: u64) {
        if by == 0 {
            return;
        }
        let mut counters = self.counters.lock().unwrap();
        match counters.get_mut(name) {
            Some(v) => *v += by,
            None => {
                counters.insert(name.to_string(), by);
            }
        }
    }

    /// Current value of a counter (zero when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().unwrap().get(name).copied().unwrap_or(0)
    }

    /// Set a gauge to an absolute value.
    pub fn set_gauge(&self, name: &str, value: i64) {
        self.gauges.lock().unwrap().insert(name.to_string(), value);
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.lock().unwrap().get(name).copied()
    }

    /// Point-in-time copy of every counter and gauge, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.lock().unwrap().clone(),
            gauges: self.gauges.lock().unwrap().clone(),
        }
    }

    /// Sorted, byte-stable text table of the current state.
    pub fn render(&self) -> String {
        self.snapshot().render()
    }
}

/// Immutable copy of the registry at one instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
}

impl MetricsSnapshot {
    /// Counter value in this snapshot (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sorted, byte-stable text table (`BTreeMap` iteration order).
    pub fn render(&self) -> String {
        let mut out = String::from("# counters\n");
        for (name, value) in &self.counters {
            let _ = writeln!(out, "{name} = {value}");
        }
        out.push_str("# gauges\n");
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "{name} = {value}");
        }
        out
    }

    /// Every counter present in `earlier` is `>=` here. Returns the first
    /// regression as a message — the monotonicity check chaos tests run
    /// between snapshots.
    pub fn monotone_since(&self, earlier: &MetricsSnapshot) -> std::result::Result<(), String> {
        for (name, old) in &earlier.counters {
            let new = self.counter(name);
            if new < *old {
                return Err(format!("counter {name} regressed: {old} -> {new}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_sorted() {
        let m = MetricsRegistry::default();
        m.inc("b.second", 2);
        m.inc("a.first", 1);
        m.inc("a.first", 4);
        m.inc("a.first", 0); // no-op, doesn't even create
        m.set_gauge("g.state", -3);
        assert_eq!(m.counter("a.first"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("g.state"), Some(-3));
        assert_eq!(m.render(), "# counters\na.first = 5\nb.second = 2\n# gauges\ng.state = -3\n");
    }

    #[test]
    fn monotonicity_check_catches_regressions() {
        let m = MetricsRegistry::default();
        m.inc("x", 3);
        let earlier = m.snapshot();
        m.inc("x", 1);
        m.inc("y", 7);
        let later = m.snapshot();
        later.monotone_since(&earlier).unwrap();
        assert!(earlier.monotone_since(&later).is_err());
    }
}
