//! # idaa-sql
//!
//! Lexer, AST, and recursive-descent parser for the DB2-dialect subset the
//! reproduction supports — including the paper's DDL extension
//! `CREATE TABLE … IN ACCELERATOR`, the `CURRENT QUERY ACCELERATION`
//! special register, `CALL` for (analytics) stored procedures, and
//! `GRANT`/`REVOKE` for the governance experiments.
//!
//! All AST nodes implement `Display`, producing SQL that re-parses to the
//! same AST (verified by property tests), which the federation layer uses
//! to ship statements to the accelerator as text.

pub mod ast;
pub mod eval;
pub mod lexer;
pub mod params;
pub mod parser;
pub mod plan;

pub use ast::*;
pub use parser::{parse_statement, parse_statements};
