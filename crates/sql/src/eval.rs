//! Expression binding and evaluation.
//!
//! Both engines share this evaluator: the host runs it row-at-a-time inside
//! Volcano operators, the accelerator uses it for residual expressions its
//! vectorized kernels don't cover. Column references are resolved once at
//! bind time into ordinals, so evaluation never does name lookups.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use idaa_common::{DataType, Decimal, Error, Result, Value};
use std::collections::HashSet;

/// Resolves a (possibly qualified) column name to an ordinal in the input
/// row and reports its type.
pub trait ColumnResolver {
    /// Ordinal of `qualifier.name` in the runtime row.
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize>;
}

/// A resolver over a flat list of `(qualifier, column_name)` pairs — the
/// shape produced by scans and joins.
pub struct FlatResolver {
    columns: Vec<(Option<String>, String)>,
}

impl FlatResolver {
    /// Build from `(qualifier, name)` pairs in row order.
    pub fn new(columns: Vec<(Option<String>, String)>) -> Self {
        FlatResolver { columns }
    }

    /// Resolver for an unqualified schema (single table scan).
    pub fn from_schema(qualifier: Option<&str>, schema: &idaa_common::Schema) -> Self {
        FlatResolver {
            columns: schema
                .columns()
                .iter()
                .map(|c| (qualifier.map(|q| q.to_string()), c.name.clone()))
                .collect(),
        }
    }

    /// The column list (used to build join resolvers).
    pub fn columns(&self) -> &[(Option<String>, String)] {
        &self.columns
    }

    /// Concatenate two resolvers (join output = left columns then right).
    pub fn concat(&self, other: &FlatResolver) -> FlatResolver {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        FlatResolver { columns }
    }
}

impl ColumnResolver for FlatResolver {
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, (q, n))| {
                n == name
                    && match qualifier {
                        Some(want) => q.as_deref() == Some(want),
                        None => true,
                    }
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Err(Error::UndefinedColumn(format!(
                "column {}{name} not found",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            1 => Ok(matches[0]),
            _ => Err(Error::UndefinedColumn(format!("column {name} is ambiguous"))),
        }
    }
}

/// An expression with all column references bound to row ordinals.
#[derive(Debug, Clone)]
pub enum BoundExpr {
    Literal(Value),
    Column(usize),
    Binary { left: Box<BoundExpr>, op: BinaryOp, right: Box<BoundExpr> },
    Unary { op: UnaryOp, expr: Box<BoundExpr> },
    Function { name: String, args: Vec<BoundExpr> },
    IsNull { expr: Box<BoundExpr>, negated: bool },
    InList { expr: Box<BoundExpr>, list: Vec<BoundExpr>, negated: bool },
    Between { expr: Box<BoundExpr>, low: Box<BoundExpr>, high: Box<BoundExpr>, negated: bool },
    Like { expr: Box<BoundExpr>, pattern: Box<BoundExpr>, negated: bool },
    Case {
        operand: Option<Box<BoundExpr>>,
        branches: Vec<(BoundExpr, BoundExpr)>,
        else_result: Option<Box<BoundExpr>>,
    },
    Cast { expr: Box<BoundExpr>, data_type: DataType },
}

impl BoundExpr {
    /// The ordinal if this is a bare column reference.
    pub fn as_column(&self) -> Option<usize> {
        match self {
            BoundExpr::Column(i) => Some(*i),
            _ => None,
        }
    }

    /// Collect every column ordinal this expression reads (projection
    /// pushdown uses this to avoid materializing untouched columns).
    pub fn collect_columns(&self, out: &mut std::collections::HashSet<usize>) {
        match self {
            BoundExpr::Literal(_) => {}
            BoundExpr::Column(i) => {
                out.insert(*i);
            }
            BoundExpr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            BoundExpr::Unary { expr, .. }
            | BoundExpr::IsNull { expr, .. }
            | BoundExpr::Cast { expr, .. } => expr.collect_columns(out),
            BoundExpr::Function { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            BoundExpr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            BoundExpr::Between { expr, low, high, .. } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            BoundExpr::Like { expr, pattern, .. } => {
                expr.collect_columns(out);
                pattern.collect_columns(out);
            }
            BoundExpr::Case { operand, branches, else_result } => {
                if let Some(o) = operand {
                    o.collect_columns(out);
                }
                for (w, t) in branches {
                    w.collect_columns(out);
                    t.collect_columns(out);
                }
                if let Some(e) = else_result {
                    e.collect_columns(out);
                }
            }
        }
    }
}

/// Bind `expr` against `resolver`. Aggregate calls are rejected — callers
/// must rewrite aggregates before binding (the planners do).
pub fn bind(expr: &Expr, resolver: &dyn ColumnResolver) -> Result<BoundExpr> {
    Ok(match expr {
        Expr::Literal(v) => BoundExpr::Literal(v.clone()),
        Expr::Column { qualifier, name } => {
            BoundExpr::Column(resolver.resolve(qualifier.as_deref(), name)?)
        }
        Expr::Binary { left, op, right } => BoundExpr::Binary {
            left: Box::new(bind(left, resolver)?),
            op: *op,
            right: Box::new(bind(right, resolver)?),
        },
        Expr::Unary { op, expr } => {
            BoundExpr::Unary { op: *op, expr: Box::new(bind(expr, resolver)?) }
        }
        Expr::Function { name, args, .. } => {
            if crate::ast::is_aggregate_name(name) {
                return Err(Error::Internal(format!(
                    "aggregate {name} must be rewritten before binding"
                )));
            }
            BoundExpr::Function {
                name: name.clone(),
                args: args.iter().map(|a| bind(a, resolver)).collect::<Result<_>>()?,
            }
        }
        Expr::IsNull { expr, negated } => {
            BoundExpr::IsNull { expr: Box::new(bind(expr, resolver)?), negated: *negated }
        }
        Expr::InList { expr, list, negated } => BoundExpr::InList {
            expr: Box::new(bind(expr, resolver)?),
            list: list.iter().map(|e| bind(e, resolver)).collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between { expr, low, high, negated } => BoundExpr::Between {
            expr: Box::new(bind(expr, resolver)?),
            low: Box::new(bind(low, resolver)?),
            high: Box::new(bind(high, resolver)?),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => BoundExpr::Like {
            expr: Box::new(bind(expr, resolver)?),
            pattern: Box::new(bind(pattern, resolver)?),
            negated: *negated,
        },
        Expr::Case { operand, branches, else_result } => BoundExpr::Case {
            operand: operand.as_ref().map(|e| bind(e, resolver).map(Box::new)).transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| Ok((bind(w, resolver)?, bind(t, resolver)?)))
                .collect::<Result<_>>()?,
            else_result: else_result
                .as_ref()
                .map(|e| bind(e, resolver).map(Box::new))
                .transpose()?,
        },
        Expr::Cast { expr, data_type } => {
            BoundExpr::Cast { expr: Box::new(bind(expr, resolver)?), data_type: *data_type }
        }
        Expr::Parameter(i) => {
            return Err(Error::Unsupported(format!(
                "unbound parameter marker ?{i}; substitute parameters before execution"
            )))
        }
    })
}

/// Evaluate a bound expression against a row.
pub fn eval(expr: &BoundExpr, row: &[Value]) -> Result<Value> {
    match expr {
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::Column(i) => row
            .get(*i)
            .cloned()
            .ok_or_else(|| Error::internal(format!("column ordinal {i} out of range"))),
        BoundExpr::Binary { left, op, right } => eval_binary(left, *op, right, row),
        BoundExpr::Unary { op, expr } => {
            let v = eval(expr, row)?;
            match op {
                UnaryOp::Not => match v {
                    Value::Null => Ok(Value::Null),
                    Value::Boolean(b) => Ok(Value::Boolean(!b)),
                    other => Err(Error::TypeMismatch(format!("NOT applied to {other}"))),
                },
                UnaryOp::Neg => match v {
                    Value::Null => Ok(Value::Null),
                    Value::SmallInt(x) => Ok(Value::SmallInt(-x)),
                    Value::Int(x) => Ok(Value::Int(-x)),
                    Value::BigInt(x) => Ok(Value::BigInt(-x)),
                    Value::Double(x) => Ok(Value::Double(-x)),
                    Value::Decimal(d) => Ok(Value::Decimal(d.neg())),
                    other => Err(Error::TypeMismatch(format!("negation applied to {other}"))),
                },
            }
        }
        BoundExpr::Function { name, args } => {
            let vals: Vec<Value> = args.iter().map(|a| eval(a, row)).collect::<Result<_>>()?;
            eval_scalar_function(name, &vals)
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = eval(expr, row)?;
            Ok(Value::Boolean(v.is_null() != *negated))
        }
        BoundExpr::InList { expr, list, negated } => {
            let v = eval(expr, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let iv = eval(item, row)?;
                match v.compare(&iv)? {
                    Some(std::cmp::Ordering::Equal) => {
                        return Ok(Value::Boolean(!*negated));
                    }
                    None => saw_null = true,
                    _ => {}
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Boolean(*negated))
            }
        }
        BoundExpr::Between { expr, low, high, negated } => {
            let v = eval(expr, row)?;
            let lo = eval(low, row)?;
            let hi = eval(high, row)?;
            match (v.compare(&lo)?, v.compare(&hi)?) {
                (Some(a), Some(b)) => {
                    let within = a != std::cmp::Ordering::Less && b != std::cmp::Ordering::Greater;
                    Ok(Value::Boolean(within != *negated))
                }
                _ => Ok(Value::Null),
            }
        }
        BoundExpr::Like { expr, pattern, negated } => {
            let v = eval(expr, row)?;
            let p = eval(pattern, row)?;
            if v.is_null() || p.is_null() {
                return Ok(Value::Null);
            }
            let m = like_match(v.as_str()?, p.as_str()?);
            Ok(Value::Boolean(m != *negated))
        }
        BoundExpr::Case { operand, branches, else_result } => {
            match operand {
                Some(op) => {
                    let base = eval(op, row)?;
                    for (w, t) in branches {
                        let wv = eval(w, row)?;
                        if base.compare(&wv)? == Some(std::cmp::Ordering::Equal) {
                            return eval(t, row);
                        }
                    }
                }
                None => {
                    for (w, t) in branches {
                        if eval(w, row)? == Value::Boolean(true) {
                            return eval(t, row);
                        }
                    }
                }
            }
            match else_result {
                Some(e) => eval(e, row),
                None => Ok(Value::Null),
            }
        }
        BoundExpr::Cast { expr, data_type } => eval(expr, row)?.cast(*data_type),
    }
}

/// Evaluate a bound predicate to SQL filter semantics: NULL counts as not
/// satisfied.
pub fn eval_predicate(expr: &BoundExpr, row: &[Value]) -> Result<bool> {
    match eval(expr, row)? {
        Value::Boolean(b) => Ok(b),
        Value::Null => Ok(false),
        other => Err(Error::TypeMismatch(format!("predicate evaluated to {other}"))),
    }
}

fn eval_binary(left: &BoundExpr, op: BinaryOp, right: &BoundExpr, row: &[Value]) -> Result<Value> {
    // AND/OR use Kleene logic and short-circuit.
    match op {
        BinaryOp::And => {
            let l = eval(left, row)?;
            if l == Value::Boolean(false) {
                return Ok(Value::Boolean(false));
            }
            let r = eval(right, row)?;
            return kleene_and(l, r);
        }
        BinaryOp::Or => {
            let l = eval(left, row)?;
            if l == Value::Boolean(true) {
                return Ok(Value::Boolean(true));
            }
            let r = eval(right, row)?;
            return kleene_or(l, r);
        }
        _ => {}
    }
    let l = eval(left, row)?;
    let r = eval(right, row)?;
    match op {
        BinaryOp::Eq | BinaryOp::Neq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
            let ord = match l.compare(&r)? {
                Some(o) => o,
                None => return Ok(Value::Null),
            };
            use std::cmp::Ordering::*;
            let b = match op {
                BinaryOp::Eq => ord == Equal,
                BinaryOp::Neq => ord != Equal,
                BinaryOp::Lt => ord == Less,
                BinaryOp::LtEq => ord != Greater,
                BinaryOp::Gt => ord == Greater,
                BinaryOp::GtEq => ord != Less,
                _ => unreachable!(),
            };
            Ok(Value::Boolean(b))
        }
        BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod => {
            arithmetic(&l, op, &r)
        }
        BinaryOp::Concat => {
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Varchar(format!("{}{}", l.render(), r.render())))
        }
        BinaryOp::And | BinaryOp::Or => unreachable!(),
    }
}

fn kleene_and(l: Value, r: Value) -> Result<Value> {
    match (bool3(&l)?, bool3(&r)?) {
        (Some(false), _) | (_, Some(false)) => Ok(Value::Boolean(false)),
        (Some(true), Some(true)) => Ok(Value::Boolean(true)),
        _ => Ok(Value::Null),
    }
}

fn kleene_or(l: Value, r: Value) -> Result<Value> {
    match (bool3(&l)?, bool3(&r)?) {
        (Some(true), _) | (_, Some(true)) => Ok(Value::Boolean(true)),
        (Some(false), Some(false)) => Ok(Value::Boolean(false)),
        _ => Ok(Value::Null),
    }
}

fn bool3(v: &Value) -> Result<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Boolean(b) => Ok(Some(*b)),
        other => Err(Error::TypeMismatch(format!("{other} used as boolean"))),
    }
}

/// Numeric binary arithmetic with DB2-style type promotion: DOUBLE wins,
/// then DECIMAL, then BIGINT.
pub fn arithmetic(l: &Value, op: BinaryOp, r: &Value) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    let lt = l.data_type().unwrap();
    let rt = r.data_type().unwrap();
    if !lt.is_numeric() || !rt.is_numeric() {
        // DATE ± integer days is the one non-numeric arithmetic we support.
        if let (Value::Date(d), BinaryOp::Add | BinaryOp::Sub, Ok(days)) = (l, op, r.as_i64()) {
            if rt.is_integer() {
                let delta = if op == BinaryOp::Add { days } else { -days };
                return Ok(Value::Date(d + delta as i32));
            }
        }
        return Err(Error::TypeMismatch(format!("arithmetic on {l} and {r}")));
    }
    if lt == DataType::Double || rt == DataType::Double {
        let a = l.as_f64()?;
        let b = r.as_f64()?;
        let v = match op {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => {
                if b == 0.0 {
                    return Err(Error::Arithmetic("division by zero".into()));
                }
                a / b
            }
            BinaryOp::Mod => {
                if b == 0.0 {
                    return Err(Error::Arithmetic("division by zero".into()));
                }
                a % b
            }
            _ => unreachable!(),
        };
        return Ok(Value::Double(v));
    }
    if matches!(lt, DataType::Decimal(_, _)) || matches!(rt, DataType::Decimal(_, _)) {
        let a = to_decimal(l)?;
        let b = to_decimal(r)?;
        let v = match op {
            BinaryOp::Add => a.add(&b)?,
            BinaryOp::Sub => a.sub(&b)?,
            BinaryOp::Mul => a.mul(&b)?,
            BinaryOp::Div => a.div(&b)?,
            BinaryOp::Mod => {
                if b.is_zero() {
                    return Err(Error::Arithmetic("division by zero".into()));
                }
                let q = a.div(&b)?.rescale(0)?;
                a.sub(&q.mul(&b)?)?
            }
            _ => unreachable!(),
        };
        return Ok(Value::Decimal(v));
    }
    let a = l.as_i64()?;
    let b = r.as_i64()?;
    let v = match op {
        BinaryOp::Add => a.checked_add(b),
        BinaryOp::Sub => a.checked_sub(b),
        BinaryOp::Mul => a.checked_mul(b),
        BinaryOp::Div => {
            if b == 0 {
                return Err(Error::Arithmetic("division by zero".into()));
            }
            a.checked_div(b)
        }
        BinaryOp::Mod => {
            if b == 0 {
                return Err(Error::Arithmetic("division by zero".into()));
            }
            a.checked_rem(b)
        }
        _ => unreachable!(),
    }
    .ok_or_else(|| Error::Arithmetic("integer overflow".into()))?;
    Ok(Value::BigInt(v))
}

fn to_decimal(v: &Value) -> Result<Decimal> {
    match v {
        Value::Decimal(d) => Ok(*d),
        _ => Ok(Decimal::from_int(v.as_i64()?)),
    }
}

/// SQL `LIKE` with `%` (any run) and `_` (single char), over Unicode chars.
pub fn like_match(text: &str, pattern: &str) -> bool {
    fn rec(t: &[char], p: &[char]) -> bool {
        match p.first() {
            None => t.is_empty(),
            Some('%') => {
                // Collapse consecutive %.
                let p_rest = &p[1..];
                (0..=t.len()).any(|skip| rec(&t[skip..], p_rest))
            }
            Some('_') => !t.is_empty() && rec(&t[1..], &p[1..]),
            Some(c) => t.first() == Some(c) && rec(&t[1..], &p[1..]),
        }
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&t, &p)
}

/// Scalar (non-aggregate) builtin functions.
pub fn eval_scalar_function(name: &str, args: &[Value]) -> Result<Value> {
    let argc_err =
        |n: usize| Error::TypeMismatch(format!("{name} expects {n} argument(s), got {}", args.len()));
    // COALESCE handles NULLs itself; every other function is NULL-in/NULL-out.
    if name == "COALESCE" || name == "VALUE" {
        if args.is_empty() {
            return Err(argc_err(1));
        }
        return Ok(args.iter().find(|v| !v.is_null()).cloned().unwrap_or(Value::Null));
    }
    if args.iter().any(Value::is_null) {
        return Ok(Value::Null);
    }
    match name {
        "ABS" => {
            let [v] = args else { return Err(argc_err(1)) };
            match v {
                Value::SmallInt(x) => Ok(Value::SmallInt(x.abs())),
                Value::Int(x) => Ok(Value::Int(x.abs())),
                Value::BigInt(x) => Ok(Value::BigInt(x.abs())),
                Value::Double(x) => Ok(Value::Double(x.abs())),
                Value::Decimal(d) => Ok(Value::Decimal(d.abs())),
                other => Err(Error::TypeMismatch(format!("ABS({other})"))),
            }
        }
        "MOD" => {
            let [a, b] = args else { return Err(argc_err(2)) };
            arithmetic(a, BinaryOp::Mod, b)
        }
        "POWER" => {
            let [a, b] = args else { return Err(argc_err(2)) };
            Ok(Value::Double(a.as_f64()?.powf(b.as_f64()?)))
        }
        "SQRT" => {
            let [v] = args else { return Err(argc_err(1)) };
            let x = v.as_f64()?;
            if x < 0.0 {
                return Err(Error::Arithmetic("SQRT of negative value".into()));
            }
            Ok(Value::Double(x.sqrt()))
        }
        "LN" => {
            let [v] = args else { return Err(argc_err(1)) };
            let x = v.as_f64()?;
            if x <= 0.0 {
                return Err(Error::Arithmetic("LN of non-positive value".into()));
            }
            Ok(Value::Double(x.ln()))
        }
        "EXP" => {
            let [v] = args else { return Err(argc_err(1)) };
            Ok(Value::Double(v.as_f64()?.exp()))
        }
        "FLOOR" => {
            let [v] = args else { return Err(argc_err(1)) };
            Ok(Value::Double(v.as_f64()?.floor()))
        }
        "CEIL" | "CEILING" => {
            let [v] = args else { return Err(argc_err(1)) };
            Ok(Value::Double(v.as_f64()?.ceil()))
        }
        "ROUND" => match args {
            [v] => Ok(Value::Double(v.as_f64()?.round())),
            [v, places] => {
                let p = places.as_i64()?;
                let f = 10f64.powi(p as i32);
                Ok(Value::Double((v.as_f64()? * f).round() / f))
            }
            _ => Err(argc_err(2)),
        },
        "UPPER" | "UCASE" => {
            let [v] = args else { return Err(argc_err(1)) };
            Ok(Value::Varchar(v.as_str()?.to_uppercase()))
        }
        "LOWER" | "LCASE" => {
            let [v] = args else { return Err(argc_err(1)) };
            Ok(Value::Varchar(v.as_str()?.to_lowercase()))
        }
        "LENGTH" => {
            let [v] = args else { return Err(argc_err(1)) };
            Ok(Value::Int(v.as_str()?.chars().count() as i32))
        }
        "TRIM" | "STRIP" => {
            let [v] = args else { return Err(argc_err(1)) };
            Ok(Value::Varchar(v.as_str()?.trim().to_string()))
        }
        "SUBSTR" | "SUBSTRING" => {
            let (s, start, len) = match args {
                [s, start] => (s, start, None),
                [s, start, len] => (s, start, Some(len)),
                _ => return Err(argc_err(2)),
            };
            let chars: Vec<char> = s.as_str()?.chars().collect();
            // SQL SUBSTR is 1-based.
            let start = (start.as_i64()?.max(1) - 1) as usize;
            let take = match len {
                Some(l) => l.as_i64()?.max(0) as usize,
                None => chars.len().saturating_sub(start),
            };
            Ok(Value::Varchar(chars.iter().skip(start).take(take).collect()))
        }
        "YEAR" => {
            let [v] = args else { return Err(argc_err(1)) };
            let d = v.cast(DataType::Date)?;
            let Value::Date(days) = d else { return Err(Error::TypeMismatch("YEAR".into())) };
            let rendered = idaa_common::value::render_date(days);
            Ok(Value::Int(rendered[..4].parse().unwrap()))
        }
        "MONTH" => {
            let [v] = args else { return Err(argc_err(1)) };
            let d = v.cast(DataType::Date)?;
            let Value::Date(days) = d else { return Err(Error::TypeMismatch("MONTH".into())) };
            let rendered = idaa_common::value::render_date(days);
            Ok(Value::Int(rendered[5..7].parse().unwrap()))
        }
        "DAY" => {
            let [v] = args else { return Err(argc_err(1)) };
            let d = v.cast(DataType::Date)?;
            let Value::Date(days) = d else { return Err(Error::TypeMismatch("DAY".into())) };
            let rendered = idaa_common::value::render_date(days);
            Ok(Value::Int(rendered[8..10].parse().unwrap()))
        }
        other => Err(Error::Unsupported(format!("function {other} is not implemented"))),
    }
}

// ---------------------------------------------------------------------------
// Aggregates
// ---------------------------------------------------------------------------

/// The aggregate functions supported by both engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateKind {
    CountStar,
    Count,
    Sum,
    Avg,
    Min,
    Max,
    /// Sample standard deviation.
    Stddev,
    /// Sample variance.
    Variance,
}

impl AggregateKind {
    /// Map a function name (+argument presence) to an aggregate kind.
    pub fn from_name(name: &str, has_arg: bool) -> Option<AggregateKind> {
        Some(match (name, has_arg) {
            ("COUNT", false) => AggregateKind::CountStar,
            ("COUNT", true) => AggregateKind::Count,
            ("SUM", true) => AggregateKind::Sum,
            ("AVG", true) => AggregateKind::Avg,
            ("MIN", true) => AggregateKind::Min,
            ("MAX", true) => AggregateKind::Max,
            ("STDDEV", true) => AggregateKind::Stddev,
            ("VARIANCE", true) | ("VAR", true) => AggregateKind::Variance,
            _ => return None,
        })
    }
}

/// Incremental accumulator for one aggregate over one group.
#[derive(Debug, Clone)]
pub struct AggState {
    kind: AggregateKind,
    #[allow(dead_code)] // recorded for symmetry with the planner AggCall
    distinct: bool,
    seen: Option<HashSet<Value>>,
    count: i64,
    sum: Option<Value>,
    min: Option<Value>,
    max: Option<Value>,
    // Welford accumulators for STDDEV/VARIANCE.
    w_mean: f64,
    w_m2: f64,
}

impl AggState {
    /// Fresh accumulator.
    pub fn new(kind: AggregateKind, distinct: bool) -> AggState {
        AggState {
            kind,
            distinct,
            seen: if distinct { Some(HashSet::new()) } else { None },
            count: 0,
            sum: None,
            min: None,
            max: None,
            w_mean: 0.0,
            w_m2: 0.0,
        }
    }

    /// Feed one input value (`Null` for `COUNT(*)` rows is still counted;
    /// for every other aggregate NULLs are skipped per SQL).
    pub fn update(&mut self, v: &Value) -> Result<()> {
        if self.kind == AggregateKind::CountStar {
            self.count += 1;
            return Ok(());
        }
        if v.is_null() {
            return Ok(());
        }
        if let Some(seen) = &mut self.seen {
            if !seen.insert(v.clone()) {
                return Ok(());
            }
        }
        self.count += 1;
        match self.kind {
            AggregateKind::Count | AggregateKind::CountStar => {}
            AggregateKind::Sum | AggregateKind::Avg => {
                self.sum = Some(match self.sum.take() {
                    None => v.clone(),
                    Some(acc) => arithmetic(&acc, BinaryOp::Add, v)?,
                });
            }
            AggregateKind::Min => {
                let replace = match &self.min {
                    None => true,
                    Some(cur) => v.compare(cur)? == Some(std::cmp::Ordering::Less),
                };
                if replace {
                    self.min = Some(v.clone());
                }
            }
            AggregateKind::Max => {
                let replace = match &self.max {
                    None => true,
                    Some(cur) => v.compare(cur)? == Some(std::cmp::Ordering::Greater),
                };
                if replace {
                    self.max = Some(v.clone());
                }
            }
            AggregateKind::Stddev | AggregateKind::Variance => {
                let x = v.as_f64()?;
                let delta = x - self.w_mean;
                self.w_mean += delta / self.count as f64;
                self.w_m2 += delta * (x - self.w_mean);
            }
        }
        Ok(())
    }

    /// Typed fast path for a non-NULL value backed by an `i64` column
    /// vector: bit-identical to `update(&native(v))` but without the
    /// per-row `Value` construction and `arithmetic`/`compare` dispatch.
    /// `native` rebuilds the column's declared SQL value (`SmallInt`,
    /// `Int`, `BigInt`) and is only invoked off the hot path: the first
    /// value of an accumulator, a new MIN/MAX, DISTINCT, and the
    /// Welford kinds. Callers must pass `native` consistent with how the
    /// column's `get` would render the value, or results drift from the
    /// interpreter.
    #[inline]
    pub fn update_i64(&mut self, v: i64, native: impl Fn(i64) -> Value) -> Result<()> {
        if self.seen.is_some()
            || matches!(self.kind, AggregateKind::Stddev | AggregateKind::Variance)
        {
            return self.update(&native(v));
        }
        self.count += 1;
        match self.kind {
            AggregateKind::Count | AggregateKind::CountStar => {}
            AggregateKind::Sum | AggregateKind::Avg => match &mut self.sum {
                // After the first value, integer sums are always BigInt
                // (`arithmetic` promotes every integer result to BigInt).
                Some(Value::BigInt(acc)) => {
                    *acc = acc
                        .checked_add(v)
                        .ok_or_else(|| Error::Arithmetic("integer overflow".into()))?;
                }
                None => self.sum = Some(native(v)),
                Some(_) => {
                    let acc = self.sum.take().unwrap();
                    self.sum = Some(arithmetic(&acc, BinaryOp::Add, &native(v))?);
                }
            },
            AggregateKind::Min => match &self.min {
                Some(Value::BigInt(m)) => {
                    if v < *m {
                        self.min = Some(Value::BigInt(v));
                    }
                }
                Some(Value::Int(m)) => {
                    if v < *m as i64 {
                        self.min = Some(native(v));
                    }
                }
                Some(Value::SmallInt(m)) => {
                    if v < *m as i64 {
                        self.min = Some(native(v));
                    }
                }
                None => self.min = Some(native(v)),
                Some(_) => {
                    let nv = native(v);
                    if nv.compare(self.min.as_ref().unwrap())? == Some(std::cmp::Ordering::Less) {
                        self.min = Some(nv);
                    }
                }
            },
            AggregateKind::Max => match &self.max {
                Some(Value::BigInt(m)) => {
                    if v > *m {
                        self.max = Some(Value::BigInt(v));
                    }
                }
                Some(Value::Int(m)) => {
                    if v > *m as i64 {
                        self.max = Some(native(v));
                    }
                }
                Some(Value::SmallInt(m)) => {
                    if v > *m as i64 {
                        self.max = Some(native(v));
                    }
                }
                None => self.max = Some(native(v)),
                Some(_) => {
                    let nv = native(v);
                    if nv.compare(self.max.as_ref().unwrap())?
                        == Some(std::cmp::Ordering::Greater)
                    {
                        self.max = Some(nv);
                    }
                }
            },
            AggregateKind::Stddev | AggregateKind::Variance => unreachable!("handled above"),
        }
        Ok(())
    }

    /// Typed fast path for a non-NULL `f64` value; see [`Self::update_i64`].
    /// Double sums accumulate in feed order (`a + b` per step), so the
    /// float result is bit-identical to the interpreter's, and MIN/MAX
    /// replacement uses the same strict partial order (`NaN` never
    /// replaces, matching `Value::compare` returning `None`).
    #[inline]
    pub fn update_f64(&mut self, v: f64) -> Result<()> {
        if self.seen.is_some()
            || matches!(self.kind, AggregateKind::Stddev | AggregateKind::Variance)
        {
            return self.update(&Value::Double(v));
        }
        self.count += 1;
        match self.kind {
            AggregateKind::Count | AggregateKind::CountStar => {}
            AggregateKind::Sum | AggregateKind::Avg => match &mut self.sum {
                Some(Value::Double(acc)) => *acc += v,
                None => self.sum = Some(Value::Double(v)),
                Some(_) => {
                    let acc = self.sum.take().unwrap();
                    self.sum = Some(arithmetic(&acc, BinaryOp::Add, &Value::Double(v))?);
                }
            },
            AggregateKind::Min => match &self.min {
                Some(Value::Double(m)) => {
                    if v < *m {
                        self.min = Some(Value::Double(v));
                    }
                }
                None => self.min = Some(Value::Double(v)),
                Some(_) => {
                    let nv = Value::Double(v);
                    if nv.compare(self.min.as_ref().unwrap())? == Some(std::cmp::Ordering::Less) {
                        self.min = Some(nv);
                    }
                }
            },
            AggregateKind::Max => match &self.max {
                Some(Value::Double(m)) => {
                    if v > *m {
                        self.max = Some(Value::Double(v));
                    }
                }
                None => self.max = Some(Value::Double(v)),
                Some(_) => {
                    let nv = Value::Double(v);
                    if nv.compare(self.max.as_ref().unwrap())?
                        == Some(std::cmp::Ordering::Greater)
                    {
                        self.max = Some(nv);
                    }
                }
            },
            AggregateKind::Stddev | AggregateKind::Variance => unreachable!("handled above"),
        }
        Ok(())
    }

    /// Fold another accumulator of the same kind into this one, as if its
    /// inputs had been fed after ours. Parallel operators build per-worker
    /// partials and merge them in a fixed worker order, so results are
    /// deterministic for a given configuration (float sums may still differ
    /// from the serial feed order, which the engines already tolerate).
    pub fn merge(&mut self, other: &AggState) -> Result<()> {
        debug_assert_eq!(self.kind, other.kind);
        if let Some(theirs) = &other.seen {
            // DISTINCT: replay the other side's distinct values through
            // `update`, which dedups against our own `seen` set and keeps
            // every downstream accumulator consistent.
            for v in theirs {
                self.update(v)?;
            }
            return Ok(());
        }
        match self.kind {
            AggregateKind::CountStar | AggregateKind::Count => self.count += other.count,
            AggregateKind::Sum | AggregateKind::Avg => {
                self.count += other.count;
                self.sum = match (self.sum.take(), &other.sum) {
                    (None, None) => None,
                    (Some(a), None) => Some(a),
                    (None, Some(b)) => Some(b.clone()),
                    (Some(a), Some(b)) => Some(arithmetic(&a, BinaryOp::Add, b)?),
                };
            }
            AggregateKind::Min => {
                self.count += other.count;
                if let Some(v) = &other.min {
                    let replace = match &self.min {
                        None => true,
                        Some(cur) => v.compare(cur)? == Some(std::cmp::Ordering::Less),
                    };
                    if replace {
                        self.min = Some(v.clone());
                    }
                }
            }
            AggregateKind::Max => {
                self.count += other.count;
                if let Some(v) = &other.max {
                    let replace = match &self.max {
                        None => true,
                        Some(cur) => v.compare(cur)? == Some(std::cmp::Ordering::Greater),
                    };
                    if replace {
                        self.max = Some(v.clone());
                    }
                }
            }
            AggregateKind::Stddev | AggregateKind::Variance => {
                // Chan et al. parallel Welford combination.
                if other.count > 0 {
                    if self.count == 0 {
                        self.count = other.count;
                        self.w_mean = other.w_mean;
                        self.w_m2 = other.w_m2;
                    } else {
                        let (n1, n2) = (self.count as f64, other.count as f64);
                        let delta = other.w_mean - self.w_mean;
                        self.w_mean += delta * n2 / (n1 + n2);
                        self.w_m2 += other.w_m2 + delta * delta * n1 * n2 / (n1 + n2);
                        self.count += other.count;
                    }
                }
            }
        }
        Ok(())
    }

    /// Final aggregate value for the group.
    pub fn finish(&self) -> Result<Value> {
        Ok(match self.kind {
            AggregateKind::CountStar | AggregateKind::Count => Value::BigInt(self.count),
            AggregateKind::Sum => self.sum.clone().unwrap_or(Value::Null),
            AggregateKind::Avg => match &self.sum {
                None => Value::Null,
                Some(s) => {
                    // AVG is computed in floating point (DB2 computes DECIMAL
                    // division; DOUBLE keeps the engines simple and the
                    // analytics consumers numeric).
                    Value::Double(s.as_f64()? / self.count as f64)
                }
            },
            AggregateKind::Min => self.min.clone().unwrap_or(Value::Null),
            AggregateKind::Max => self.max.clone().unwrap_or(Value::Null),
            AggregateKind::Variance => {
                if self.count < 2 {
                    Value::Null
                } else {
                    Value::Double(self.w_m2 / (self.count as f64 - 1.0))
                }
            }
            AggregateKind::Stddev => {
                if self.count < 2 {
                    Value::Null
                } else {
                    Value::Double((self.w_m2 / (self.count as f64 - 1.0)).sqrt())
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use crate::Statement;

    fn expr(sql: &str) -> Expr {
        let s = parse_statement(&format!("SELECT {sql} FROM t")).unwrap();
        let Statement::Query(q) = s else { panic!() };
        let crate::SelectItem::Expr { expr, .. } = q.projection.into_iter().next().unwrap() else {
            panic!()
        };
        expr
    }

    fn eval_str(sql: &str, cols: &[(&str, Value)]) -> Result<Value> {
        let resolver = FlatResolver::new(
            cols.iter().map(|(n, _)| (None, n.to_string())).collect(),
        );
        let row: Vec<Value> = cols.iter().map(|(_, v)| v.clone()).collect();
        let bound = bind(&expr(sql), &resolver)?;
        eval(&bound, &row)
    }

    fn eval_const(sql: &str) -> Result<Value> {
        eval_str(sql, &[])
    }

    #[test]
    fn arithmetic_promotion() {
        assert_eq!(eval_const("1 + 2 * 3").unwrap(), Value::BigInt(7));
        assert_eq!(eval_const("1 + 2.5").unwrap().render(), "3.5");
        assert_eq!(eval_const("7 / 2").unwrap(), Value::BigInt(3));
        assert_eq!(eval_const("7.0E0 / 2").unwrap(), Value::Double(3.5));
        assert_eq!(eval_const("7 % 3").unwrap(), Value::BigInt(1));
    }

    #[test]
    fn division_by_zero() {
        assert!(matches!(eval_const("1 / 0"), Err(Error::Arithmetic(_))));
        assert!(matches!(eval_const("1.5 / 0.0"), Err(Error::Arithmetic(_))));
    }

    #[test]
    fn null_propagation() {
        assert!(eval_const("1 + NULL").unwrap().is_null());
        assert!(eval_const("NULL = NULL").unwrap().is_null());
        assert_eq!(eval_const("NULL IS NULL").unwrap(), Value::Boolean(true));
    }

    #[test]
    fn kleene_logic() {
        assert_eq!(eval_const("FALSE AND NULL").unwrap(), Value::Boolean(false));
        assert!(eval_const("TRUE AND NULL").unwrap().is_null());
        assert_eq!(eval_const("TRUE OR NULL").unwrap(), Value::Boolean(true));
        assert!(eval_const("FALSE OR NULL").unwrap().is_null());
        assert!(eval_const("NOT NULL").unwrap().is_null());
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_const("1 < 2").unwrap(), Value::Boolean(true));
        assert_eq!(eval_const("'abc' = 'abc'").unwrap(), Value::Boolean(true));
        assert_eq!(eval_const("2 >= 3").unwrap(), Value::Boolean(false));
    }

    #[test]
    fn in_list_three_valued() {
        assert_eq!(eval_const("2 IN (1, 2)").unwrap(), Value::Boolean(true));
        assert_eq!(eval_const("3 NOT IN (1, 2)").unwrap(), Value::Boolean(true));
        // Unknown when not found but NULL present.
        assert!(eval_const("3 IN (1, NULL)").unwrap().is_null());
        assert_eq!(eval_const("1 IN (1, NULL)").unwrap(), Value::Boolean(true));
    }

    #[test]
    fn between() {
        assert_eq!(eval_const("2 BETWEEN 1 AND 3").unwrap(), Value::Boolean(true));
        assert_eq!(eval_const("0 BETWEEN 1 AND 3").unwrap(), Value::Boolean(false));
        assert_eq!(eval_const("0 NOT BETWEEN 1 AND 3").unwrap(), Value::Boolean(true));
        assert!(eval_const("NULL BETWEEN 1 AND 3").unwrap().is_null());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello", "h%o"));
        assert!(like_match("hello", "_ello"));
        assert!(like_match("hello", "%"));
        assert!(!like_match("hello", "h_o"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
        assert_eq!(eval_const("'abcdef' LIKE 'abc%'").unwrap(), Value::Boolean(true));
    }

    #[test]
    fn case_forms() {
        assert_eq!(
            eval_const("CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END").unwrap(),
            Value::Varchar("b".into())
        );
        assert_eq!(
            eval_const("CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END").unwrap(),
            Value::Varchar("two".into())
        );
        assert!(eval_const("CASE 9 WHEN 1 THEN 'one' END").unwrap().is_null());
    }

    #[test]
    fn scalar_functions() {
        assert_eq!(eval_const("ABS(-4)").unwrap(), Value::BigInt(4));
        assert_eq!(eval_const("UPPER('ab')").unwrap(), Value::Varchar("AB".into()));
        assert_eq!(eval_const("LENGTH('abc')").unwrap(), Value::Int(3));
        assert_eq!(eval_const("SUBSTR('hello', 2, 3)").unwrap(), Value::Varchar("ell".into()));
        assert_eq!(eval_const("SUBSTR('hello', 2)").unwrap(), Value::Varchar("ello".into()));
        assert_eq!(eval_const("COALESCE(NULL, NULL, 7)").unwrap(), Value::BigInt(7));
        assert_eq!(eval_const("MOD(7, 3)").unwrap(), Value::BigInt(1));
        assert_eq!(eval_const("SQRT(9)").unwrap(), Value::Double(3.0));
        assert_eq!(eval_const("ROUND(2.567E0, 1)").unwrap(), Value::Double(2.6));
        assert_eq!(eval_const("FLOOR(2.9)").unwrap(), Value::Double(2.0));
        assert_eq!(eval_const("YEAR(DATE '2016-03-15')").unwrap(), Value::Int(2016));
        assert_eq!(eval_const("MONTH(DATE '2016-03-15')").unwrap(), Value::Int(3));
        assert_eq!(eval_const("DAY(DATE '2016-03-15')").unwrap(), Value::Int(15));
    }

    #[test]
    fn functions_null_in_null_out() {
        assert!(eval_const("ABS(NULL)").unwrap().is_null());
        assert!(eval_const("UPPER(NULL)").unwrap().is_null());
    }

    #[test]
    fn unknown_function_errors() {
        assert!(matches!(eval_const("FROBNICATE(1)"), Err(Error::Unsupported(_))));
    }

    #[test]
    fn date_arithmetic() {
        assert_eq!(
            eval_const("DATE '2016-03-15' + 2").unwrap(),
            Value::Date(idaa_common::value::parse_date("2016-03-17").unwrap())
        );
        assert_eq!(
            eval_const("DATE '2016-03-15' - 15").unwrap(),
            Value::Date(idaa_common::value::parse_date("2016-02-29").unwrap())
        );
    }

    #[test]
    fn concat() {
        assert_eq!(eval_const("'a' || 'b' || 1").unwrap(), Value::Varchar("ab1".into()));
        assert!(eval_const("'a' || NULL").unwrap().is_null());
    }

    #[test]
    fn column_resolution() {
        let v = eval_str("a + b", &[("A", Value::Int(2)), ("B", Value::Int(3))]).unwrap();
        assert_eq!(v, Value::BigInt(5));
    }

    #[test]
    fn ambiguous_and_missing_columns() {
        let resolver =
            FlatResolver::new(vec![(Some("T1".into()), "X".into()), (Some("T2".into()), "X".into())]);
        assert!(matches!(
            resolver.resolve(None, "X"),
            Err(Error::UndefinedColumn(_))
        ));
        assert_eq!(resolver.resolve(Some("T2"), "X").unwrap(), 1);
        assert!(resolver.resolve(None, "Y").is_err());
    }

    #[test]
    fn predicate_null_is_false() {
        let resolver = FlatResolver::new(vec![(None, "A".into())]);
        let bound = bind(&expr("a > 5"), &resolver).unwrap();
        assert!(!eval_predicate(&bound, &[Value::Null]).unwrap());
        assert!(eval_predicate(&bound, &[Value::Int(9)]).unwrap());
    }

    #[test]
    fn binding_rejects_aggregates_and_parameters() {
        let resolver = FlatResolver::new(vec![(None, "A".into())]);
        assert!(bind(&expr("SUM(a)"), &resolver).is_err());
        assert!(bind(&Expr::Parameter(0), &resolver).is_err());
    }

    #[test]
    fn agg_count_and_sum() {
        let mut c = AggState::new(AggregateKind::CountStar, false);
        let mut s = AggState::new(AggregateKind::Sum, false);
        for v in [Value::Int(1), Value::Null, Value::Int(3)] {
            c.update(&v).unwrap();
            s.update(&v).unwrap();
        }
        assert_eq!(c.finish().unwrap(), Value::BigInt(3)); // COUNT(*) counts NULL rows
        assert_eq!(s.finish().unwrap(), Value::BigInt(4)); // SUM skips NULL
    }

    #[test]
    fn agg_count_skips_nulls() {
        let mut c = AggState::new(AggregateKind::Count, false);
        for v in [Value::Int(1), Value::Null, Value::Int(3)] {
            c.update(&v).unwrap();
        }
        assert_eq!(c.finish().unwrap(), Value::BigInt(2));
    }

    #[test]
    fn agg_min_max_avg() {
        let mut mn = AggState::new(AggregateKind::Min, false);
        let mut mx = AggState::new(AggregateKind::Max, false);
        let mut av = AggState::new(AggregateKind::Avg, false);
        for v in [Value::Int(4), Value::Int(1), Value::Int(7)] {
            mn.update(&v).unwrap();
            mx.update(&v).unwrap();
            av.update(&v).unwrap();
        }
        assert_eq!(mn.finish().unwrap(), Value::Int(1));
        assert_eq!(mx.finish().unwrap(), Value::Int(7));
        assert_eq!(av.finish().unwrap(), Value::Double(4.0));
    }

    #[test]
    fn agg_distinct() {
        let mut c = AggState::new(AggregateKind::Count, true);
        let mut s = AggState::new(AggregateKind::Sum, true);
        for v in [Value::Int(2), Value::Int(2), Value::Int(3)] {
            c.update(&v).unwrap();
            s.update(&v).unwrap();
        }
        assert_eq!(c.finish().unwrap(), Value::BigInt(2));
        assert_eq!(s.finish().unwrap(), Value::BigInt(5));
    }

    #[test]
    fn agg_stddev_variance() {
        let mut sd = AggState::new(AggregateKind::Stddev, false);
        let mut var = AggState::new(AggregateKind::Variance, false);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            sd.update(&Value::Double(v)).unwrap();
            var.update(&Value::Double(v)).unwrap();
        }
        let Value::Double(v) = var.finish().unwrap() else { panic!() };
        assert!((v - 4.571428571428571).abs() < 1e-9);
        let Value::Double(s) = sd.finish().unwrap() else { panic!() };
        assert!((s - v.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn agg_empty_inputs() {
        assert_eq!(AggState::new(AggregateKind::CountStar, false).finish().unwrap(), Value::BigInt(0));
        assert!(AggState::new(AggregateKind::Sum, false).finish().unwrap().is_null());
        assert!(AggState::new(AggregateKind::Min, false).finish().unwrap().is_null());
        assert!(AggState::new(AggregateKind::Stddev, false).finish().unwrap().is_null());
    }

    #[test]
    fn aggregate_kind_mapping() {
        assert_eq!(AggregateKind::from_name("COUNT", false), Some(AggregateKind::CountStar));
        assert_eq!(AggregateKind::from_name("COUNT", true), Some(AggregateKind::Count));
        assert_eq!(AggregateKind::from_name("STDDEV", true), Some(AggregateKind::Stddev));
        assert_eq!(AggregateKind::from_name("NOPE", true), None);
    }
}
