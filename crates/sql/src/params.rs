//! Parameter-marker substitution for prepared-statement-style execution.
//!
//! `?` markers parse to [`Expr::Parameter`] with sequential indices (or
//! explicit `?N` indices). Before execution, [`bind_statement`] replaces
//! every marker with the literal value supplied for its index — the
//! federation facade exposes this as `execute_with_params`.

use crate::ast::{Expr, InsertSource, Query, Statement, TableRef};
use idaa_common::{Error, Result, Value};

/// Replace every parameter marker in `stmt` with the corresponding literal
/// from `params` (marker `?i` takes `params[i]`).
pub fn bind_statement(stmt: &Statement, params: &[Value]) -> Result<Statement> {
    let mut out = stmt.clone();
    visit_statement(&mut out, params)?;
    Ok(out)
}

fn visit_statement(stmt: &mut Statement, params: &[Value]) -> Result<()> {
    match stmt {
        Statement::Query(q) => visit_query(q, params),
        Statement::Insert { source, .. } => match source {
            InsertSource::Values(rows) => {
                for row in rows {
                    for e in row {
                        visit_expr(e, params)?;
                    }
                }
                Ok(())
            }
            InsertSource::Query(q) => visit_query(q, params),
        },
        Statement::Update { assignments, filter, .. } => {
            for (_, e) in assignments {
                visit_expr(e, params)?;
            }
            if let Some(f) = filter {
                visit_expr(f, params)?;
            }
            Ok(())
        }
        Statement::Delete { filter, .. } => {
            if let Some(f) = filter {
                visit_expr(f, params)?;
            }
            Ok(())
        }
        Statement::Call { args, .. } => {
            for a in args {
                visit_expr(a, params)?;
            }
            Ok(())
        }
        Statement::Explain { stmt, .. } => visit_statement(stmt, params),
        _ => Ok(()),
    }
}

fn visit_query(q: &mut Query, params: &[Value]) -> Result<()> {
    for item in &mut q.projection {
        if let crate::ast::SelectItem::Expr { expr, .. } = item {
            visit_expr(expr, params)?;
        }
    }
    if let Some(from) = &mut q.from {
        visit_table_ref(from, params)?;
    }
    if let Some(f) = &mut q.filter {
        visit_expr(f, params)?;
    }
    for e in &mut q.group_by {
        visit_expr(e, params)?;
    }
    if let Some(h) = &mut q.having {
        visit_expr(h, params)?;
    }
    for (_, block) in &mut q.unions {
        visit_query(block, params)?;
    }
    for o in &mut q.order_by {
        visit_expr(&mut o.expr, params)?;
    }
    Ok(())
}

fn visit_table_ref(tr: &mut TableRef, params: &[Value]) -> Result<()> {
    match tr {
        TableRef::Table { .. } => Ok(()),
        TableRef::Subquery { query, .. } => visit_query(query, params),
        TableRef::Join { left, right, on, .. } => {
            visit_table_ref(left, params)?;
            visit_table_ref(right, params)?;
            visit_expr(on, params)
        }
    }
}

fn visit_expr(e: &mut Expr, params: &[Value]) -> Result<()> {
    if let Expr::Parameter(i) = e {
        let v = params.get(*i).ok_or_else(|| {
            Error::TypeMismatch(format!(
                "statement uses parameter ?{i} but only {} value(s) were supplied",
                params.len()
            ))
        })?;
        *e = Expr::Literal(v.clone());
        return Ok(());
    }
    match e {
        Expr::Binary { left, right, .. } => {
            visit_expr(left, params)?;
            visit_expr(right, params)
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            visit_expr(expr, params)
        }
        Expr::Function { args, .. } => {
            for a in args {
                visit_expr(a, params)?;
            }
            Ok(())
        }
        Expr::InList { expr, list, .. } => {
            visit_expr(expr, params)?;
            for i in list {
                visit_expr(i, params)?;
            }
            Ok(())
        }
        Expr::Between { expr, low, high, .. } => {
            visit_expr(expr, params)?;
            visit_expr(low, params)?;
            visit_expr(high, params)
        }
        Expr::Like { expr, pattern, .. } => {
            visit_expr(expr, params)?;
            visit_expr(pattern, params)
        }
        Expr::Case { operand, branches, else_result } => {
            if let Some(o) = operand {
                visit_expr(o, params)?;
            }
            for (w, t) in branches {
                visit_expr(w, params)?;
                visit_expr(t, params)?;
            }
            if let Some(el) = else_result {
                visit_expr(el, params)?;
            }
            Ok(())
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::Parameter(_) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_statement;

    #[test]
    fn substitutes_sequential_markers() {
        let stmt = parse_statement("SELECT a FROM t WHERE a = ? AND b < ?").unwrap();
        let bound =
            bind_statement(&stmt, &[Value::Int(5), Value::Varchar("x".into())]).unwrap();
        let printed = bound.to_string();
        assert!(printed.contains("(A = 5)"), "{printed}");
        assert!(printed.contains("(B < 'x')"), "{printed}");
    }

    #[test]
    fn explicit_indices_can_repeat() {
        let stmt = parse_statement("SELECT a FROM t WHERE a = ?0 OR b = ?0").unwrap();
        let bound = bind_statement(&stmt, &[Value::Int(9)]).unwrap();
        let printed = bound.to_string();
        assert_eq!(printed.matches("= 9").count(), 2, "{printed}");
    }

    #[test]
    fn missing_parameter_errors() {
        let stmt = parse_statement("SELECT a FROM t WHERE a = ?").unwrap();
        assert!(bind_statement(&stmt, &[]).is_err());
    }

    #[test]
    fn markers_in_dml_and_call() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (?, ?)").unwrap();
        let bound = bind_statement(&stmt, &[Value::Int(1), Value::Int(2)]).unwrap();
        assert!(bound.to_string().contains("VALUES (1, 2)"));
        let stmt = parse_statement("UPDATE t SET a = ? WHERE b = ?").unwrap();
        let bound = bind_statement(&stmt, &[Value::Int(1), Value::Int(2)]).unwrap();
        assert!(bound.to_string().contains("SET A = 1"));
        let stmt = parse_statement("CALL p(?)").unwrap();
        let bound = bind_statement(&stmt, &[Value::Varchar("T".into())]).unwrap();
        assert!(bound.to_string().contains("P('T')"));
    }
}
