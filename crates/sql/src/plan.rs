//! Engine-independent logical planning.
//!
//! Translates a [`Query`] AST into a [`Plan`] tree: scans, joins, filters,
//! aggregation (with aggregate-call rewriting), projection, sort, distinct
//! and limit. The host engine lowers the plan to row-at-a-time Volcano
//! operators; the accelerator lowers it to vectorized columnar kernels —
//! but both consume this same structure, which is also what the federation
//! router inspects to decide *where* a statement may run.

use crate::ast::{is_aggregate_name, Expr, JoinKind, Query, SelectItem, TableRef};
use crate::eval::AggregateKind;
use idaa_common::{DataType, Error, ObjectName, Result, Schema};

/// A column flowing out of a plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanCol {
    /// Table alias / name this column is addressable under (None for
    /// computed columns).
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
    /// Inferred type.
    pub data_type: DataType,
}

impl PlanCol {
    fn new(qualifier: Option<String>, name: impl Into<String>, data_type: DataType) -> Self {
        PlanCol { qualifier, name: name.into(), data_type }
    }
}

/// One aggregate call extracted from a query.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub kind: AggregateKind,
    /// Argument expression (None for `COUNT(*)`).
    pub arg: Option<Expr>,
    pub distinct: bool,
}

/// Logical plan tree. Expressions inside nodes are *unbound* AST
/// expressions; engines bind them against the child's output columns.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Base-table scan.
    Scan { table: ObjectName, alias: Option<String>, cols: Vec<PlanCol> },
    /// σ predicate.
    Filter { input: Box<Plan>, predicate: Expr },
    /// π with explicit output names.
    Project { input: Box<Plan>, exprs: Vec<(Expr, String)>, cols: Vec<PlanCol> },
    /// Binary join.
    Join { left: Box<Plan>, right: Box<Plan>, kind: JoinKind, on: Expr },
    /// γ grouping: output = group key columns then aggregate columns.
    Aggregate {
        input: Box<Plan>,
        group_exprs: Vec<Expr>,
        aggs: Vec<AggCall>,
        cols: Vec<PlanCol>,
    },
    /// ORDER BY: `(input column ordinal, descending)` pairs. Keys are always
    /// ordinals into the child's output — the planner materializes computed
    /// sort keys as hidden projection columns first.
    Sort { input: Box<Plan>, keys: Vec<(usize, bool)> },
    /// DISTINCT over full rows.
    Distinct { input: Box<Plan> },
    /// Row-count cap.
    Limit { input: Box<Plan>, n: u64 },
    /// Keep only the first `n` columns (drops hidden ORDER BY columns).
    KeepCols { input: Box<Plan>, n: usize },
    /// `UNION [ALL]` of two inputs (left-associative folding of longer
    /// chains). `all == false` dedups the combined rows.
    Union { left: Box<Plan>, right: Box<Plan>, all: bool },
}

impl Plan {
    /// Columns this node produces, in order.
    pub fn cols(&self) -> Vec<PlanCol> {
        match self {
            Plan::Scan { cols, .. } | Plan::Project { cols, .. } | Plan::Aggregate { cols, .. } => {
                cols.clone()
            }
            Plan::Filter { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Distinct { input }
            | Plan::Limit { input, .. } => input.cols(),
            Plan::Join { left, right, .. } => {
                let mut c = left.cols();
                c.extend(right.cols());
                c
            }
            Plan::KeepCols { input, n } => {
                let mut c = input.cols();
                c.truncate(*n);
                c
            }
            // Union output takes the first branch's names/types (DB2 also
            // names union columns after the first subselect).
            Plan::Union { left, .. } => left.cols(),
        }
    }

    /// Result schema (duplicate names allowed, all columns nullable).
    pub fn schema(&self) -> Schema {
        Schema::new_unchecked(
            self.cols()
                .into_iter()
                .map(|c| idaa_common::ColumnDef::new(c.name, c.data_type))
                .collect(),
        )
    }

    /// All base tables referenced anywhere in the plan.
    pub fn tables(&self) -> Vec<ObjectName> {
        let mut out = Vec::new();
        self.collect_tables(&mut out);
        out
    }

    /// Multi-line, indented plan rendering for `EXPLAIN`.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push_str(&self.label());
        out.push('\n');
        for child in self.children() {
            child.explain_into(depth + 1, out);
        }
    }

    /// This node's own `EXPLAIN` line (no indentation, no children).
    pub fn label(&self) -> String {
        match self {
            Plan::Scan { table, alias, cols } => format!(
                "SCAN {table}{} [{} cols]",
                alias.as_ref().map(|a| format!(" AS {a}")).unwrap_or_default(),
                cols.len()
            ),
            Plan::Filter { predicate, .. } => format!("FILTER {predicate}"),
            Plan::Project { exprs, .. } => {
                let items: Vec<String> =
                    exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                format!("PROJECT {}", items.join(", "))
            }
            Plan::Join { kind, on, .. } => format!("{kind:?} JOIN ON {on}"),
            Plan::Aggregate { group_exprs, aggs, .. } => {
                let keys: Vec<String> = group_exprs.iter().map(|e| e.to_string()).collect();
                format!(
                    "AGGREGATE [{} aggs] GROUP BY {}",
                    aggs.len(),
                    if keys.is_empty() { "()".to_string() } else { keys.join(", ") }
                )
            }
            Plan::Sort { keys, .. } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|(i, d)| format!("#{i}{}", if *d { " DESC" } else { "" }))
                    .collect();
                format!("SORT {}", ks.join(", "))
            }
            Plan::Distinct { .. } => "DISTINCT".to_string(),
            Plan::Limit { n, .. } => format!("LIMIT {n}"),
            Plan::KeepCols { n, .. } => format!("KEEP FIRST {n} COLS"),
            Plan::Union { all, .. } => format!("UNION{}", if *all { " ALL" } else { "" }),
        }
    }

    /// Child nodes in `EXPLAIN` order.
    pub fn children(&self) -> Vec<&Plan> {
        match self {
            Plan::Scan { .. } => Vec::new(),
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Distinct { input }
            | Plan::Limit { input, .. }
            | Plan::KeepCols { input, .. } => vec![input],
            Plan::Join { left, right, .. } | Plan::Union { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    fn collect_tables(&self, out: &mut Vec<ObjectName>) {
        match self {
            Plan::Scan { table, .. } => out.push(table.clone()),
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Distinct { input }
            | Plan::Limit { input, .. }
            | Plan::KeepCols { input, .. } => input.collect_tables(out),
            Plan::Join { left, right, .. } | Plan::Union { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
        }
    }
}

/// Per-operator row counts collected during one execution of a [`Plan`].
///
/// Keyed by plan-node *identity* (address), so the profiled plan must live
/// at a stable address for the profile's lifetime — keep the root boxed and
/// don't move it between execution and readout. Executors record each
/// node's output cardinality as they unwind; operator fusion (e.g. a filter
/// fused into its scan) legitimately leaves the fused child unrecorded.
#[derive(Debug, Default)]
pub struct PlanProfile {
    rows_out: std::sync::Mutex<std::collections::HashMap<usize, u64>>,
    /// Nodes the vectorized batch pipeline executed, with the number of
    /// column batches (non-pruned blocks) it processed. Absence means the
    /// node ran through the row-at-a-time interpreter.
    vectorized: std::sync::Mutex<std::collections::HashMap<usize, u64>>,
    /// Join nodes whose probe consulted a Bloom filter, with the number of
    /// probe rows the filter skipped before any hash-table lookup.
    bloom: std::sync::Mutex<std::collections::HashMap<usize, u64>>,
    /// Whether this statement's plan came from the compiled-plan cache
    /// (`Some(true)` = hit, `Some(false)` = miss, `None` = not consulted).
    cache_hit: std::sync::Mutex<Option<bool>>,
}

impl PlanProfile {
    fn key(node: &Plan) -> usize {
        node as *const Plan as usize
    }

    /// Record `node`'s output row count.
    pub fn record(&self, node: &Plan, rows: u64) {
        self.rows_out.lock().unwrap().insert(Self::key(node), rows);
    }

    /// Output row count for `node`, if it executed unfused.
    pub fn rows_out(&self, node: &Plan) -> Option<u64> {
        self.rows_out.lock().unwrap().get(&Self::key(node)).copied()
    }

    /// Record that `node` ran through the vectorized batch pipeline,
    /// processing `batches` column batches.
    pub fn record_vectorized(&self, node: &Plan, batches: u64) {
        self.vectorized.lock().unwrap().insert(Self::key(node), batches);
    }

    /// Batch count for `node` if the vectorized pipeline executed it;
    /// `None` means it was interpreted (or fused into another node).
    pub fn vectorized_batches(&self, node: &Plan) -> Option<u64> {
        self.vectorized.lock().unwrap().get(&Self::key(node)).copied()
    }

    /// Record that `node`'s join probe consulted a Bloom filter which
    /// skipped `skipped` probe rows.
    pub fn record_bloom(&self, node: &Plan, skipped: u64) {
        self.bloom.lock().unwrap().insert(Self::key(node), skipped);
    }

    /// Bloom-skipped probe row count for `node`; `None` means no Bloom
    /// filter was consulted there.
    pub fn bloom_skipped(&self, node: &Plan) -> Option<u64> {
        self.bloom.lock().unwrap().get(&Self::key(node)).copied()
    }

    /// Record whether the statement's plan came from the compiled-plan
    /// cache.
    pub fn set_cache_hit(&self, hit: bool) {
        *self.cache_hit.lock().unwrap() = Some(hit);
    }

    /// `Some(true)` when the plan was a cache hit, `Some(false)` on a miss,
    /// `None` when no cache was consulted.
    pub fn cache_hit(&self) -> Option<bool> {
        *self.cache_hit.lock().unwrap()
    }
}

/// Supplies table schemas during planning.
pub trait SchemaProvider {
    /// Schema of a base table (name resolution, including default-schema
    /// handling, is the provider's business).
    fn table_schema(&self, name: &ObjectName) -> Result<Schema>;
}

/// Plan a query against `provider`.
pub fn plan_query(q: &Query, provider: &dyn SchemaProvider) -> Result<Plan> {
    if !q.unions.is_empty() {
        return plan_union(q, provider);
    }
    plan_block(q, provider)
}

/// Plan a `UNION` chain: fold the blocks left-associatively, then apply the
/// outer ORDER BY/LIMIT over the combined output columns.
fn plan_union(q: &Query, provider: &dyn SchemaProvider) -> Result<Plan> {
    let first_core = Query { unions: Vec::new(), order_by: Vec::new(), limit: None, ..q.clone() };
    let mut plan = plan_block(&first_core, provider)?;
    let width = plan.cols().len();
    let first_cols = plan.cols();
    for (all, block) in &q.unions {
        let rhs = plan_block(block, provider)?;
        let rhs_cols = rhs.cols();
        if rhs_cols.len() != width {
            return Err(Error::Parse(format!(
                "UNION branches have different column counts ({width} vs {})",
                rhs_cols.len()
            )));
        }
        for (a, b) in first_cols.iter().zip(&rhs_cols) {
            DataType::unify(a.data_type, b.data_type).map_err(|_| {
                Error::TypeMismatch(format!(
                    "UNION column {} has incompatible types {} and {}",
                    a.name, a.data_type, b.data_type
                ))
            })?;
        }
        plan = Plan::Union { left: Box::new(plan), right: Box::new(rhs), all: *all };
    }
    // ORDER BY over a union may reference output ordinals or unique output
    // column names only (there is no single underlying block to evaluate
    // arbitrary expressions against).
    if !q.order_by.is_empty() {
        let cols = plan.cols();
        let mut keys = Vec::new();
        for item in &q.order_by {
            let ordinal = match &item.expr {
                Expr::Literal(v)
                    if matches!(
                        v,
                        idaa_common::Value::BigInt(_)
                            | idaa_common::Value::Int(_)
                            | idaa_common::Value::SmallInt(_)
                    ) =>
                {
                    let i = v.as_i64().expect("integer literal");
                    if i < 1 || i as usize > cols.len() {
                        return Err(Error::Parse(format!("ORDER BY position {i} out of range")));
                    }
                    (i - 1) as usize
                }
                Expr::Column { qualifier: None, name }
                    if cols.iter().filter(|c| c.name == *name).count() == 1 =>
                {
                    cols.iter().position(|c| c.name == *name).expect("counted above")
                }
                other => {
                    return Err(Error::Unsupported(format!(
                        "ORDER BY on UNION must reference output columns, not {other}"
                    )))
                }
            };
            keys.push((ordinal, item.desc));
        }
        plan = Plan::Sort { input: Box::new(plan), keys };
    }
    if let Some(n) = q.limit {
        plan = Plan::Limit { input: Box::new(plan), n };
    }
    Ok(plan)
}

/// Plan one SELECT block (no unions).
fn plan_block(q: &Query, provider: &dyn SchemaProvider) -> Result<Plan> {
    let mut plan = match &q.from {
        Some(tr) => plan_table_ref(tr, provider)?,
        None => {
            // FROM-less SELECT: a single empty row (DB2's SYSIBM.SYSDUMMY1).
            Plan::Scan { table: ObjectName::bare("SYSDUMMY1"), alias: None, cols: vec![] }
        }
    };
    if let Some(pred) = &q.filter {
        if pred.contains_aggregate() {
            return Err(Error::Parse("aggregates are not allowed in WHERE".into()));
        }
        plan = Plan::Filter { input: Box::new(plan), predicate: pred.clone() };
        // Push single-sided WHERE conjuncts below joins: both engines compile
        // `Filter(Scan)` shapes to their best access path (indexes on the
        // host, zone-map-pruned kernels on the accelerator), and because the
        // rewrite lives in the shared planner, host/accelerator answer
        // agreement is preserved by construction.
        plan = push_filters_below_joins(plan);
    }

    let needs_agg = !q.group_by.is_empty()
        || q.projection.iter().any(|item| match item {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        })
        || q.having.as_ref().map(|h| h.contains_aggregate()).unwrap_or(false);

    // Expand wildcards against the pre-aggregation columns.
    let input_cols = plan.cols();
    let mut proj: Vec<(Expr, Option<String>)> = Vec::new();
    for item in &q.projection {
        match item {
            SelectItem::Wildcard => {
                if needs_agg {
                    return Err(Error::Parse("SELECT * cannot be combined with GROUP BY".into()));
                }
                for c in &input_cols {
                    proj.push((
                        Expr::Column { qualifier: c.qualifier.clone(), name: c.name.clone() },
                        Some(c.name.clone()),
                    ));
                }
            }
            SelectItem::QualifiedWildcard(qual) => {
                let mut any = false;
                for c in input_cols.iter().filter(|c| c.qualifier.as_deref() == Some(qual)) {
                    proj.push((
                        Expr::Column { qualifier: c.qualifier.clone(), name: c.name.clone() },
                        Some(c.name.clone()),
                    ));
                    any = true;
                }
                if !any {
                    return Err(Error::UndefinedObject(format!("unknown qualifier {qual}.*")));
                }
            }
            SelectItem::Expr { expr, alias } => proj.push((expr.clone(), alias.clone())),
        }
    }

    // Output names come from the *original* projection (before aggregate
    // rewriting replaces calls with #AGG references).
    let orig_names: Vec<Option<String>> = proj
        .iter()
        .map(|(e, alias)| {
            alias.clone().or(match e {
                Expr::Column { name, .. } => Some(name.clone()),
                _ => None,
            })
        })
        .collect();

    let mut having = q.having.clone();
    let mut order_exprs: Vec<Expr> = q.order_by.iter().map(|o| o.expr.clone()).collect();
    if needs_agg {
        let (agg_plan, rewritten_proj, rewritten_having, rewritten_order) =
            plan_aggregate(plan, &q.group_by, proj, having, order_exprs)?;
        plan = agg_plan;
        proj = rewritten_proj;
        having = rewritten_having;
        order_exprs = rewritten_order;
    }
    if let Some(h) = having {
        if !needs_agg {
            return Err(Error::Parse("HAVING requires GROUP BY or aggregates".into()));
        }
        plan = Plan::Filter { input: Box::new(plan), predicate: h };
    }

    // Projection (visible columns).
    let in_cols = plan.cols();
    let mut out_cols = Vec::new();
    let mut exprs = Vec::new();
    for (i, (expr, _)) in proj.iter().enumerate() {
        let name = match &orig_names[i] {
            Some(n) => n.clone(),
            None => format!("C{}", i + 1),
        };
        let qualifier = match expr {
            Expr::Column { qualifier, .. } => qualifier.clone(),
            _ => None,
        };
        let data_type = infer_type(expr, &in_cols)?;
        out_cols.push(PlanCol::new(qualifier, name.clone(), data_type));
        exprs.push((expr.clone(), name));
    }
    let visible = exprs.len();

    // Resolve each ORDER BY key to an output ordinal; keys that reference
    // the projection's *input* (non-projected columns, computed keys) are
    // materialized as hidden columns appended to the projection.
    let mut sort_keys: Vec<(usize, bool)> = Vec::new();
    for (item, key_expr) in q.order_by.iter().zip(order_exprs) {
        let ordinal = match &key_expr {
            // `ORDER BY 2` means the second output column.
            Expr::Literal(v)
                if matches!(
                    v,
                    idaa_common::Value::BigInt(_)
                        | idaa_common::Value::Int(_)
                        | idaa_common::Value::SmallInt(_)
                ) =>
            {
                let i = v.as_i64().unwrap();
                if i < 1 || i as usize > visible {
                    return Err(Error::Parse(format!("ORDER BY position {i} out of range")));
                }
                (i - 1) as usize
            }
            // A bare name that matches exactly one output column (alias or
            // projected column name) sorts by that output column.
            Expr::Column { qualifier: None, name }
                if out_cols[..visible].iter().filter(|c| c.name == *name).count() == 1 =>
            {
                out_cols[..visible].iter().position(|c| c.name == *name).unwrap()
            }
            // Anything else is evaluated over the projection input as a
            // hidden column.
            e => {
                if q.distinct {
                    return Err(Error::Parse(
                        "with SELECT DISTINCT, ORDER BY must reference output columns".into(),
                    ));
                }
                let idx = exprs.len();
                let name = format!("#ORD{}", idx - visible);
                out_cols.push(PlanCol::new(None, name.clone(), infer_type(e, &in_cols)?));
                exprs.push((e.clone(), name));
                idx
            }
        };
        sort_keys.push((ordinal, item.desc));
    }
    let hidden = exprs.len() - visible;
    plan = Plan::Project { input: Box::new(plan), exprs, cols: out_cols };

    if q.distinct {
        plan = Plan::Distinct { input: Box::new(plan) };
    }
    if !sort_keys.is_empty() {
        plan = Plan::Sort { input: Box::new(plan), keys: sort_keys };
    }
    if hidden > 0 {
        plan = Plan::KeepCols { input: Box::new(plan), n: visible };
    }
    if let Some(n) = q.limit {
        plan = Plan::Limit { input: Box::new(plan), n };
    }
    Ok(plan)
}

/// Split an expression into its top-level AND conjuncts.
fn split_conjuncts(e: &Expr) -> Vec<Expr> {
    match e {
        Expr::Binary { left, op: crate::ast::BinaryOp::And, right } => {
            let mut out = split_conjuncts(left);
            out.extend(split_conjuncts(right));
            out
        }
        other => vec![other.clone()],
    }
}

/// AND-fold a list of conjuncts back into one predicate.
fn and_all(conjs: Vec<Expr>) -> Option<Expr> {
    conjs.into_iter().reduce(|a, b| Expr::Binary {
        left: Box::new(a),
        op: crate::ast::BinaryOp::And,
        right: Box::new(b),
    })
}

/// Does `conj` bind cleanly (every column resolved, unambiguously) against
/// one join input's columns?
fn binds_against(conj: &Expr, cols: &[PlanCol]) -> bool {
    let resolver = crate::eval::FlatResolver::new(
        cols.iter().map(|c| (c.qualifier.clone(), c.name.clone())).collect(),
    );
    crate::eval::bind(conj, &resolver).is_ok()
}

/// Join predicate pushdown: move WHERE conjuncts that reference columns of
/// exactly one join input below the join, onto that input.
///
/// A conjunct is moved only when it binds against one side and *fails* to
/// bind against the other — conjuncts referencing both sides, ambiguous
/// unqualified names, or no columns at all stay above the join untouched.
/// For LEFT joins only the preserved (left) side accepts pushdown: filtering
/// the nullable side below the join would change null-extension semantics.
/// The rewrite recurses so multi-level join trees push predicates all the
/// way down to their scans.
pub fn push_filters_below_joins(plan: Plan) -> Plan {
    let (input, predicate) = match plan {
        Plan::Filter { input, predicate } => (input, predicate),
        other => return other,
    };
    let (left, right, kind, on) = match *input {
        Plan::Join { left, right, kind, on } => (left, right, kind, on),
        other => return Plan::Filter { input: Box::new(other), predicate },
    };
    let lcols = left.cols();
    let rcols = right.cols();
    let mut to_left: Vec<Expr> = Vec::new();
    let mut to_right: Vec<Expr> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for conj in split_conjuncts(&predicate) {
        let on_l = binds_against(&conj, &lcols);
        let on_r = binds_against(&conj, &rcols);
        if on_l && !on_r {
            to_left.push(conj);
        } else if on_r && !on_l && kind == JoinKind::Inner {
            to_right.push(conj);
        } else {
            residual.push(conj);
        }
    }
    let new_left = apply_pushed_filter(*left, to_left);
    let new_right = apply_pushed_filter(*right, to_right);
    let joined =
        Plan::Join { left: Box::new(new_left), right: Box::new(new_right), kind, on };
    match and_all(residual) {
        Some(p) => Plan::Filter { input: Box::new(joined), predicate: p },
        None => joined,
    }
}

/// Wrap `child` in the pushed conjuncts (merging with an existing filter so
/// scans keep their single fused `Filter(Scan)` shape), then keep pushing
/// through any join below.
fn apply_pushed_filter(child: Plan, preds: Vec<Expr>) -> Plan {
    let child = match and_all(preds) {
        None => child,
        Some(p) => match child {
            Plan::Filter { input, predicate } => Plan::Filter {
                input,
                predicate: Expr::Binary {
                    left: Box::new(predicate),
                    op: crate::ast::BinaryOp::And,
                    right: Box::new(p),
                },
            },
            other => Plan::Filter { input: Box::new(other), predicate: p },
        },
    };
    push_filters_below_joins(child)
}

fn plan_table_ref(tr: &TableRef, provider: &dyn SchemaProvider) -> Result<Plan> {
    match tr {
        TableRef::Table { name, alias } => {
            let schema = provider.table_schema(name)?;
            let qual = alias.clone().unwrap_or_else(|| name.name.clone());
            let cols = schema
                .columns()
                .iter()
                .map(|c| PlanCol::new(Some(qual.clone()), c.name.clone(), c.data_type))
                .collect();
            Ok(Plan::Scan { table: name.clone(), alias: alias.clone(), cols })
        }
        TableRef::Subquery { query, alias } => {
            let inner = plan_query(query, provider)?;
            // Re-qualify the subquery's outputs under the alias.
            let cols = inner
                .cols()
                .into_iter()
                .map(|c| PlanCol::new(Some(alias.clone()), c.name, c.data_type))
                .collect();
            let exprs = inner
                .cols()
                .into_iter()
                .map(|c| {
                    (
                        Expr::Column { qualifier: c.qualifier, name: c.name.clone() },
                        c.name,
                    )
                })
                .collect();
            Ok(Plan::Project { input: Box::new(inner), exprs, cols })
        }
        TableRef::Join { left, right, kind, on } => {
            let l = plan_table_ref(left, provider)?;
            let r = plan_table_ref(right, provider)?;
            Ok(Plan::Join { left: Box::new(l), right: Box::new(r), kind: *kind, on: on.clone() })
        }
    }
}

/// Build the Aggregate node and rewrite projection/having so that aggregate
/// calls and group expressions become column references into the aggregate's
/// output (`keys… then #AGG0…`).
#[allow(clippy::type_complexity)]
fn plan_aggregate(
    input: Plan,
    group_by: &[Expr],
    proj: Vec<(Expr, Option<String>)>,
    having: Option<Expr>,
    order_exprs: Vec<Expr>,
) -> Result<(Plan, Vec<(Expr, Option<String>)>, Option<Expr>, Vec<Expr>)> {
    let input_cols = input.cols();
    // Collect unique aggregate calls.
    let mut aggs: Vec<(Expr, AggCall)> = Vec::new();
    for (e, _) in &proj {
        collect_aggs(e, &mut aggs)?;
    }
    if let Some(h) = &having {
        collect_aggs(h, &mut aggs)?;
    }
    for e in &order_exprs {
        collect_aggs(e, &mut aggs)?;
    }

    // Output columns: group keys first (named after the expr when it is a
    // bare column, else KEY{i}), then one per aggregate.
    let mut cols = Vec::new();
    for (i, g) in group_by.iter().enumerate() {
        let (qualifier, name) = match g {
            Expr::Column { qualifier, name } => (qualifier.clone(), name.clone()),
            _ => (None, format!("#KEY{i}")),
        };
        cols.push(PlanCol::new(qualifier, name, infer_type(g, &input_cols)?));
    }
    for (i, (expr, _)) in aggs.iter().enumerate() {
        cols.push(PlanCol::new(None, format!("#AGG{i}"), infer_type(expr, &input_cols)?));
    }

    let plan = Plan::Aggregate {
        input: Box::new(input),
        group_exprs: group_by.to_vec(),
        aggs: aggs.iter().map(|(_, c)| c.clone()).collect(),
        cols,
    };

    let rewrite_all = |e: &Expr| -> Expr { rewrite_agg_expr(e, group_by, &aggs) };
    let proj = proj.into_iter().map(|(e, a)| (rewrite_all(&e), a)).collect();
    let having = having.map(|h| rewrite_all(&h));
    let order_exprs = order_exprs.iter().map(rewrite_all).collect();
    Ok((plan, proj, having, order_exprs))
}

fn collect_aggs(e: &Expr, out: &mut Vec<(Expr, AggCall)>) -> Result<()> {
    match e {
        Expr::Function { name, args, distinct } if is_aggregate_name(name) => {
            if args.iter().any(|a| a.contains_aggregate()) {
                return Err(Error::Parse("nested aggregate functions are not allowed".into()));
            }
            if args.len() > 1 {
                return Err(Error::Parse(format!("{name} takes at most one argument")));
            }
            let kind = AggregateKind::from_name(name, !args.is_empty())
                .ok_or_else(|| Error::Parse(format!("unknown aggregate {name}")))?;
            if !out.iter().any(|(seen, _)| seen == e) {
                out.push((
                    e.clone(),
                    AggCall { kind, arg: args.first().cloned(), distinct: *distinct },
                ));
            }
            Ok(())
        }
        Expr::Function { args, .. } => {
            args.iter().try_for_each(|a| collect_aggs(a, out))
        }
        Expr::Binary { left, right, .. } => {
            collect_aggs(left, out)?;
            collect_aggs(right, out)
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            collect_aggs(expr, out)
        }
        Expr::InList { expr, list, .. } => {
            collect_aggs(expr, out)?;
            list.iter().try_for_each(|e| collect_aggs(e, out))
        }
        Expr::Between { expr, low, high, .. } => {
            collect_aggs(expr, out)?;
            collect_aggs(low, out)?;
            collect_aggs(high, out)
        }
        Expr::Like { expr, pattern, .. } => {
            collect_aggs(expr, out)?;
            collect_aggs(pattern, out)
        }
        Expr::Case { operand, branches, else_result } => {
            if let Some(o) = operand {
                collect_aggs(o, out)?;
            }
            for (w, t) in branches {
                collect_aggs(w, out)?;
                collect_aggs(t, out)?;
            }
            if let Some(e) = else_result {
                collect_aggs(e, out)?;
            }
            Ok(())
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::Parameter(_) => Ok(()),
    }
}

/// Replace aggregate calls with `#AGGi` references and group-by expression
/// matches with references to the corresponding key output column.
fn rewrite_agg_expr(e: &Expr, group_by: &[Expr], aggs: &[(Expr, AggCall)]) -> Expr {
    if let Some(i) = aggs.iter().position(|(seen, _)| seen == e) {
        return Expr::Column { qualifier: None, name: format!("#AGG{i}") };
    }
    if let Some(i) = group_by.iter().position(|g| g == e) {
        return match &group_by[i] {
            Expr::Column { qualifier, name } => {
                Expr::Column { qualifier: qualifier.clone(), name: name.clone() }
            }
            _ => Expr::Column { qualifier: None, name: format!("#KEY{i}") },
        };
    }
    match e {
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite_agg_expr(left, group_by, aggs)),
            op: *op,
            right: Box::new(rewrite_agg_expr(right, group_by, aggs)),
        },
        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(rewrite_agg_expr(expr, group_by, aggs)),
        },
        Expr::Function { name, args, distinct } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|a| rewrite_agg_expr(a, group_by, aggs)).collect(),
            distinct: *distinct,
        },
        Expr::IsNull { expr, negated } => Expr::IsNull {
            expr: Box::new(rewrite_agg_expr(expr, group_by, aggs)),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(rewrite_agg_expr(expr, group_by, aggs)),
            list: list.iter().map(|e| rewrite_agg_expr(e, group_by, aggs)).collect(),
            negated: *negated,
        },
        Expr::Between { expr, low, high, negated } => Expr::Between {
            expr: Box::new(rewrite_agg_expr(expr, group_by, aggs)),
            low: Box::new(rewrite_agg_expr(low, group_by, aggs)),
            high: Box::new(rewrite_agg_expr(high, group_by, aggs)),
            negated: *negated,
        },
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(rewrite_agg_expr(expr, group_by, aggs)),
            pattern: Box::new(rewrite_agg_expr(pattern, group_by, aggs)),
            negated: *negated,
        },
        Expr::Case { operand, branches, else_result } => Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| Box::new(rewrite_agg_expr(o, group_by, aggs))),
            branches: branches
                .iter()
                .map(|(w, t)| {
                    (rewrite_agg_expr(w, group_by, aggs), rewrite_agg_expr(t, group_by, aggs))
                })
                .collect(),
            else_result: else_result
                .as_ref()
                .map(|e| Box::new(rewrite_agg_expr(e, group_by, aggs))),
        },
        Expr::Cast { expr, data_type } => Expr::Cast {
            expr: Box::new(rewrite_agg_expr(expr, group_by, aggs)),
            data_type: *data_type,
        },
        Expr::Literal(_) | Expr::Column { .. } | Expr::Parameter(_) => e.clone(),
    }
}

/// Infer the result type of `expr` over `cols`.
pub fn infer_type(expr: &Expr, cols: &[PlanCol]) -> Result<DataType> {
    Ok(match expr {
        Expr::Literal(v) => v.data_type().unwrap_or(DataType::Varchar(1)),
        Expr::Column { qualifier, name } => {
            let mut matches = cols.iter().filter(|c| {
                c.name == *name
                    && match qualifier {
                        Some(q) => c.qualifier.as_deref() == Some(q.as_str()),
                        None => true,
                    }
            });
            let first = matches.next().ok_or_else(|| {
                Error::UndefinedColumn(format!(
                    "column {}{name} not found",
                    qualifier.as_ref().map(|q| format!("{q}.")).unwrap_or_default()
                ))
            })?;
            // Ambiguity is diagnosed at bind time; for typing take the first.
            first.data_type
        }
        Expr::Binary { left, op, right } => {
            use crate::ast::BinaryOp::*;
            match op {
                Or | And | Eq | Neq | Lt | LtEq | Gt | GtEq => DataType::Boolean,
                Concat => DataType::Varchar(255),
                Add | Sub | Mul | Div | Mod => {
                    let lt = infer_type(left, cols)?;
                    let rt = infer_type(right, cols)?;
                    if lt == DataType::Date && rt.is_integer() {
                        DataType::Date
                    } else if lt.is_numeric() && rt.is_numeric() {
                        // Integer family unifies to BIGINT at runtime.
                        let u = DataType::unify(lt, rt)?;
                        if u.is_integer() {
                            DataType::BigInt
                        } else {
                            u
                        }
                    } else {
                        return Err(Error::TypeMismatch(format!(
                            "arithmetic between {lt} and {rt}"
                        )));
                    }
                }
            }
        }
        Expr::Unary { op: crate::ast::UnaryOp::Not, .. } => DataType::Boolean,
        Expr::Unary { op: crate::ast::UnaryOp::Neg, expr } => infer_type(expr, cols)?,
        Expr::Function { name, args, .. } => match name.as_str() {
            "COUNT" => DataType::BigInt,
            "SUM" => {
                let t = infer_type(&args[0], cols)?;
                if t.is_integer() {
                    DataType::BigInt
                } else {
                    t
                }
            }
            "AVG" | "STDDEV" | "VARIANCE" | "SQRT" | "LN" | "EXP" | "POWER" | "FLOOR" | "CEIL"
            | "CEILING" | "ROUND" => DataType::Double,
            "MIN" | "MAX" | "ABS" | "COALESCE" | "VALUE" => infer_type(&args[0], cols)?,
            "MOD" => DataType::BigInt,
            "LENGTH" | "YEAR" | "MONTH" | "DAY" => DataType::Integer,
            "UPPER" | "LOWER" | "UCASE" | "LCASE" | "TRIM" | "STRIP" | "SUBSTR" | "SUBSTRING" => {
                DataType::Varchar(255)
            }
            _ => DataType::Varchar(255),
        },
        Expr::IsNull { .. } | Expr::InList { .. } | Expr::Between { .. } | Expr::Like { .. } => {
            DataType::Boolean
        }
        Expr::Case { branches, else_result, .. } => {
            let mut t: Option<DataType> = None;
            for (_, then) in branches {
                let bt = infer_type(then, cols)?;
                t = Some(match t {
                    None => bt,
                    Some(prev) => DataType::unify(prev, bt).unwrap_or(prev),
                });
            }
            if let Some(e) = else_result {
                let et = infer_type(e, cols)?;
                t = Some(match t {
                    None => et,
                    Some(prev) => DataType::unify(prev, et).unwrap_or(prev),
                });
            }
            t.unwrap_or(DataType::Varchar(1))
        }
        Expr::Cast { data_type, .. } => *data_type,
        Expr::Parameter(_) => DataType::Varchar(255),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use crate::Statement;
    use idaa_common::ColumnDef;

    struct Fixed;

    impl SchemaProvider for Fixed {
        fn table_schema(&self, name: &ObjectName) -> Result<Schema> {
            match name.name.as_str() {
                "T" => Schema::new(vec![
                    ColumnDef::new("A", DataType::Integer),
                    ColumnDef::new("B", DataType::Varchar(20)),
                    ColumnDef::new("C", DataType::Double),
                ]),
                "S" => Schema::new(vec![
                    ColumnDef::new("A", DataType::Integer),
                    ColumnDef::new("D", DataType::Date),
                ]),
                other => Err(Error::UndefinedObject(other.to_string())),
            }
        }
    }

    fn plan(sql: &str) -> Plan {
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
        plan_query(&q, &Fixed).unwrap()
    }

    fn plan_err(sql: &str) -> Error {
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
        plan_query(&q, &Fixed).unwrap_err()
    }

    #[test]
    fn simple_select_star() {
        let p = plan("SELECT * FROM t");
        let cols = p.cols();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[0].name, "A");
        assert_eq!(cols[0].data_type, DataType::Integer);
    }

    #[test]
    fn projection_names_and_types() {
        let p = plan("SELECT a + 1 AS next, b, c * 2 FROM t");
        let cols = p.cols();
        assert_eq!(cols[0].name, "NEXT");
        assert_eq!(cols[0].data_type, DataType::BigInt);
        assert_eq!(cols[1].name, "B");
        assert_eq!(cols[2].name, "C3");
        assert_eq!(cols[2].data_type, DataType::Double);
    }

    #[test]
    fn join_merges_columns() {
        let p = plan("SELECT t.a, s.d FROM t INNER JOIN s ON t.a = s.a");
        assert_eq!(p.tables().len(), 2);
        let cols = p.cols();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[1].data_type, DataType::Date);
    }

    #[test]
    fn join_pushdown_moves_single_sided_conjuncts() {
        let p = plan(
            "SELECT t.a FROM t INNER JOIN s ON t.a = s.a \
             WHERE t.c > 1 AND s.a = 3 AND t.a < s.a",
        );
        let Plan::Project { input, .. } = &p else { panic!("{p:?}") };
        // Residual keeps only the two-sided conjunct above the join.
        let Plan::Filter { input: join, predicate } = input.as_ref() else { panic!("{input:?}") };
        assert_eq!(predicate.to_string(), "(T.A < S.A)");
        let Plan::Join { left, right, .. } = join.as_ref() else { panic!("{join:?}") };
        let Plan::Filter { input: lscan, predicate: lp } = left.as_ref() else {
            panic!("left not filtered: {left:?}")
        };
        assert!(matches!(lscan.as_ref(), Plan::Scan { .. }));
        assert_eq!(lp.to_string(), "(T.C > 1)");
        let Plan::Filter { input: rscan, predicate: rp } = right.as_ref() else {
            panic!("right not filtered: {right:?}")
        };
        assert!(matches!(rscan.as_ref(), Plan::Scan { .. }));
        assert_eq!(rp.to_string(), "(S.A = 3)");
    }

    #[test]
    fn join_pushdown_never_moves_two_sided_or_ambiguous_conjuncts() {
        // Unqualified A exists on both sides: ambiguous, must stay above.
        let p = plan("SELECT t.b FROM t INNER JOIN s ON t.a = s.a WHERE a = 5");
        let Plan::Project { input, .. } = &p else { panic!("{p:?}") };
        let Plan::Filter { input: join, predicate } = input.as_ref() else { panic!("{input:?}") };
        assert_eq!(predicate.to_string(), "(A = 5)");
        let Plan::Join { left, right, .. } = join.as_ref() else { panic!("{join:?}") };
        assert!(matches!(left.as_ref(), Plan::Scan { .. }));
        assert!(matches!(right.as_ref(), Plan::Scan { .. }));
    }

    #[test]
    fn left_join_pushdown_only_touches_preserved_side() {
        let p = plan(
            "SELECT t.a FROM t LEFT JOIN s ON t.a = s.a WHERE t.c > 1 AND s.d IS NULL",
        );
        let Plan::Project { input, .. } = &p else { panic!("{p:?}") };
        // The nullable-side conjunct must stay above the join (pushing it
        // below would change null-extension semantics)…
        let Plan::Filter { input: join, predicate } = input.as_ref() else { panic!("{input:?}") };
        assert_eq!(predicate.to_string(), "(S.D IS NULL)");
        let Plan::Join { left, right, .. } = join.as_ref() else { panic!("{join:?}") };
        // …while the preserved-side conjunct still pushes down.
        let Plan::Filter { predicate: lp, .. } = left.as_ref() else { panic!("{left:?}") };
        assert_eq!(lp.to_string(), "(T.C > 1)");
        assert!(matches!(right.as_ref(), Plan::Scan { .. }));
    }

    #[test]
    fn join_pushdown_recurses_into_nested_joins() {
        let p = plan(
            "SELECT t.a FROM t INNER JOIN s ON t.a = s.a \
             INNER JOIN t AS u ON s.a = u.a WHERE u.c > 9 AND t.b = 'x'",
        );
        let Plan::Project { input, .. } = &p else { panic!("{p:?}") };
        // Both conjuncts are single-sided: nothing remains above the join.
        let Plan::Join { left, right, .. } = input.as_ref() else { panic!("{input:?}") };
        let Plan::Filter { predicate: up, .. } = right.as_ref() else { panic!("{right:?}") };
        assert_eq!(up.to_string(), "(U.C > 9)");
        // t.b = 'x' pushed through the outer join into the inner one.
        let Plan::Join { left: t_side, .. } = left.as_ref() else { panic!("{left:?}") };
        let Plan::Filter { predicate: tp, .. } = t_side.as_ref() else { panic!("{t_side:?}") };
        assert_eq!(tp.to_string(), "(T.B = 'x')");
    }

    #[test]
    fn aggregate_rewrites() {
        let p = plan("SELECT b, SUM(a) + 1, COUNT(*) FROM t GROUP BY b HAVING SUM(a) > 5");
        // Shape: Project <- Filter(having) <- Aggregate <- Scan
        let Plan::Project { input, exprs, .. } = &p else { panic!("{p:?}") };
        assert!(exprs[1].0.to_string().contains("#AGG0"));
        let Plan::Filter { input, predicate } = input.as_ref() else { panic!() };
        assert!(predicate.to_string().contains("#AGG0"));
        assert!(matches!(input.as_ref(), Plan::Aggregate { .. }));
    }

    #[test]
    fn aggregate_dedup() {
        let p = plan("SELECT SUM(a), SUM(a) * 2 FROM t");
        let Plan::Project { input, .. } = &p else { panic!() };
        let Plan::Aggregate { aggs, .. } = input.as_ref() else { panic!() };
        assert_eq!(aggs.len(), 1);
    }

    #[test]
    fn group_by_expression_key() {
        let p = plan("SELECT a % 10, COUNT(*) FROM t GROUP BY a % 10");
        let Plan::Project { exprs, .. } = &p else { panic!() };
        assert_eq!(exprs[0].0.to_string(), "#KEY0");
    }

    #[test]
    fn count_star_type() {
        let p = plan("SELECT COUNT(*) FROM t");
        assert_eq!(p.cols()[0].data_type, DataType::BigInt);
    }

    #[test]
    fn subquery_requalifies() {
        let p = plan("SELECT x FROM (SELECT a AS x FROM t) AS sub");
        assert_eq!(p.cols()[0].name, "X");
        assert_eq!(p.cols()[0].data_type, DataType::Integer);
    }

    #[test]
    fn order_by_position() {
        let p = plan("SELECT a, b FROM t ORDER BY 2 DESC");
        let Plan::Sort { keys, .. } = &p else { panic!() };
        assert_eq!(keys[0], (1, true));
    }

    #[test]
    fn order_by_non_projected_column_uses_hidden_key() {
        let p = plan("SELECT a FROM t ORDER BY c");
        let Plan::KeepCols { input, n } = &p else { panic!("{p:?}") };
        assert_eq!(*n, 1);
        let Plan::Sort { keys, .. } = input.as_ref() else { panic!() };
        assert_eq!(keys[0], (1, false));
        assert_eq!(p.cols().len(), 1);
    }

    #[test]
    fn order_by_aggregate() {
        let p = plan("SELECT b FROM t GROUP BY b ORDER BY SUM(a) DESC");
        let Plan::KeepCols { input, .. } = &p else { panic!("{p:?}") };
        let Plan::Sort { keys, .. } = input.as_ref() else { panic!() };
        assert_eq!(keys[0], (1, true));
    }

    #[test]
    fn order_by_alias() {
        let p = plan("SELECT a AS x FROM t ORDER BY x");
        let Plan::Sort { keys, .. } = &p else { panic!("{p:?}") };
        assert_eq!(keys[0], (0, false));
    }

    #[test]
    fn distinct_with_hidden_order_key_rejected() {
        assert!(matches!(plan_err("SELECT DISTINCT a FROM t ORDER BY c"), Error::Parse(_)));
    }

    #[test]
    fn order_by_position_out_of_range() {
        assert!(matches!(plan_err("SELECT a FROM t ORDER BY 3"), Error::Parse(_)));
    }

    #[test]
    fn distinct_and_limit_nodes() {
        let p = plan("SELECT DISTINCT a FROM t LIMIT 5");
        let Plan::Limit { input, n } = &p else { panic!() };
        assert_eq!(*n, 5);
        assert!(matches!(input.as_ref(), Plan::Distinct { .. }));
    }

    #[test]
    fn where_with_aggregate_rejected() {
        assert!(matches!(plan_err("SELECT a FROM t WHERE SUM(a) > 1"), Error::Parse(_)));
    }

    #[test]
    fn having_without_group_rejected() {
        // HAVING with aggregate is fine (implicit global group); HAVING on a
        // plain query is not.
        assert!(plan_err("SELECT a FROM t HAVING a > 1").to_string().contains("HAVING"));
    }

    #[test]
    fn star_with_group_by_rejected() {
        assert!(matches!(plan_err("SELECT * FROM t GROUP BY a"), Error::Parse(_)));
    }

    #[test]
    fn unknown_table_and_column() {
        assert!(matches!(plan_err("SELECT a FROM missing"), Error::UndefinedObject(_)));
        assert!(matches!(plan_err("SELECT zzz FROM t"), Error::UndefinedColumn(_)));
    }

    #[test]
    fn nested_aggregates_rejected() {
        assert!(matches!(plan_err("SELECT SUM(COUNT(*)) FROM t"), Error::Parse(_)));
    }

    #[test]
    fn type_inference_cases() {
        let p = plan("SELECT CASE WHEN a > 1 THEN 1.5 ELSE 2.5 END FROM t");
        assert!(matches!(p.cols()[0].data_type, DataType::Decimal(_, _)));
        let p = plan("SELECT CAST(a AS VARCHAR(8)) FROM t");
        assert_eq!(p.cols()[0].data_type, DataType::Varchar(8));
        let p = plan("SELECT a IS NULL FROM t");
        assert_eq!(p.cols()[0].data_type, DataType::Boolean);
    }
}
