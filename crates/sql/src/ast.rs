//! Abstract syntax tree for the supported DB2-dialect subset, with
//! `Display` implementations that emit SQL which re-parses to the same AST.

use idaa_common::{DataType, ObjectName, Value};
use std::fmt;

/// A complete SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (cols…) [IN ACCELERATOR] [DISTRIBUTE BY HASH(col,…)]`
    CreateTable {
        name: ObjectName,
        columns: Vec<ColumnSpec>,
        /// The paper's AOT extension clause.
        in_accelerator: bool,
        /// Netezza-style distribution key for accelerator tables.
        distribute_by: Vec<String>,
    },
    /// `DROP TABLE name`
    DropTable { name: ObjectName },
    /// `CREATE INDEX name ON table (col, …)`
    CreateIndex { name: ObjectName, table: ObjectName, columns: Vec<String> },
    /// `INSERT INTO t [(cols)] VALUES … | SELECT …`
    Insert { table: ObjectName, columns: Vec<String>, source: InsertSource },
    /// `UPDATE t SET c = e, … [WHERE p]`
    Update { table: ObjectName, assignments: Vec<(String, Expr)>, filter: Option<Expr> },
    /// `DELETE FROM t [WHERE p]`
    Delete { table: ObjectName, filter: Option<Expr> },
    /// A `SELECT` query.
    Query(Box<Query>),
    /// `BEGIN`
    Begin,
    /// `COMMIT`
    Commit,
    /// `ROLLBACK`
    Rollback,
    /// `SET CURRENT QUERY ACCELERATION = …` (DB2 special register).
    SetQueryAcceleration(AccelerationMode),
    /// `SET CURRENT SCHEMA = name`
    SetCurrentSchema(String),
    /// `CALL proc(arg, …)` — stored procedures, including the IDAA system
    /// procedures and deployed analytics operations.
    Call { procedure: ObjectName, args: Vec<Expr> },
    /// `GRANT priv, … ON table TO user, …`
    Grant { privileges: Vec<Privilege>, object: ObjectName, grantees: Vec<String> },
    /// `REVOKE priv, … ON table FROM user, …`
    Revoke { privileges: Vec<Privilege>, object: ObjectName, grantees: Vec<String> },
    /// `EXPLAIN statement` — report the plan and routing decision without
    /// executing. With `analyze`, the statement *is* executed and the
    /// report appends the executed span tree (per-operator row counts and
    /// virtual-time costs).
    Explain { analyze: bool, stmt: Box<Statement> },
    /// `SHOW WORKLOAD` — the server's workload-manager view: one row per
    /// connected session (queued/running/done counts, queue time, bytes),
    /// rendered from the `server.*` metrics. Empty outside a server.
    ShowWorkload,
}

/// Column definition inside `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    pub name: String,
    pub data_type: DataType,
    pub not_null: bool,
}

/// Source of inserted rows.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Box<Query>),
}

/// `CURRENT QUERY ACCELERATION` register values (DB2 for z/OS).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccelerationMode {
    /// Never offload.
    None,
    /// Offload when the optimizer deems it beneficial; run locally otherwise.
    Enable,
    /// Offload when possible; fail if the query references accelerated
    /// tables but cannot be offloaded.
    Eligible,
    /// Offload everything; fail any query that cannot be offloaded.
    All,
}

impl AccelerationMode {
    /// Parse a register value keyword.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "NONE" => Some(Self::None),
            "ENABLE" => Some(Self::Enable),
            "ELIGIBLE" => Some(Self::Eligible),
            "ALL" => Some(Self::All),
            _ => None,
        }
    }
}

impl fmt::Display for AccelerationMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::None => write!(f, "NONE"),
            Self::Enable => write!(f, "ENABLE"),
            Self::Eligible => write!(f, "ELIGIBLE"),
            Self::All => write!(f, "ALL"),
        }
    }
}

/// Table privileges for `GRANT`/`REVOKE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Privilege {
    Select,
    Insert,
    Update,
    Delete,
    /// Required to `CALL` a procedure (`EXECUTE` privilege in DB2).
    Execute,
    /// All of the above.
    All,
}

impl Privilege {
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "SELECT" => Some(Self::Select),
            "INSERT" => Some(Self::Insert),
            "UPDATE" => Some(Self::Update),
            "DELETE" => Some(Self::Delete),
            "EXECUTE" => Some(Self::Execute),
            "ALL" => Some(Self::All),
            _ => None,
        }
    }
}

impl fmt::Display for Privilege {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Select => write!(f, "SELECT"),
            Self::Insert => write!(f, "INSERT"),
            Self::Update => write!(f, "UPDATE"),
            Self::Delete => write!(f, "DELETE"),
            Self::Execute => write!(f, "EXECUTE"),
            Self::All => write!(f, "ALL"),
        }
    }
}

/// A `SELECT` query block, optionally combined with further blocks via
/// `UNION [ALL]`. `ORDER BY` and `LIMIT` on the outer query apply to the
/// whole union.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Option<TableRef>,
    pub filter: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
    /// Further blocks combined with this one: `(all, block)` per
    /// `UNION [ALL]` arm. Inner blocks never carry ORDER BY/LIMIT/unions.
    pub unions: Vec<(bool, Query)>,
    pub order_by: Vec<OrderByItem>,
    pub limit: Option<u64>,
}

impl Query {
    /// An empty `SELECT` skeleton for programmatic construction.
    pub fn select(projection: Vec<SelectItem>) -> Self {
        Query {
            distinct: false,
            projection,
            from: None,
            filter: None,
            group_by: Vec::new(),
            having: None,
            unions: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        }
    }
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A table expression in `FROM`.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table with optional correlation name.
    Table { name: ObjectName, alias: Option<String> },
    /// Derived table: `(SELECT …) AS alias`.
    Subquery { query: Box<Query>, alias: String },
    /// Binary join.
    Join { left: Box<TableRef>, right: Box<TableRef>, kind: JoinKind, on: Expr },
}

/// Supported join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinKind::Inner => write!(f, "INNER JOIN"),
            JoinKind::Left => write!(f, "LEFT JOIN"),
        }
    }
}

/// `ORDER BY` element.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub desc: bool,
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal constant.
    Literal(Value),
    /// Column reference, optionally qualified by table/alias.
    Column { qualifier: Option<String>, name: String },
    /// Binary operation.
    Binary { left: Box<Expr>, op: BinaryOp, right: Box<Expr> },
    /// Unary operation.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Function call (scalar or aggregate; `COUNT(*)` is
    /// `Function { name: "COUNT", args: [], .. }`).
    Function { name: String, args: Vec<Expr>, distinct: bool },
    /// `expr IS [NOT] NULL`
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr [NOT] IN (v, …)`
    InList { expr: Box<Expr>, list: Vec<Expr>, negated: bool },
    /// `expr [NOT] BETWEEN low AND high`
    Between { expr: Box<Expr>, low: Box<Expr>, high: Box<Expr>, negated: bool },
    /// `expr [NOT] LIKE pattern`
    Like { expr: Box<Expr>, pattern: Box<Expr>, negated: bool },
    /// `CASE [operand] WHEN … THEN … [ELSE …] END`
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_result: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`
    Cast { expr: Box<Expr>, data_type: DataType },
    /// `?` host-variable style parameter marker (bound at execution).
    Parameter(usize),
}

impl Expr {
    /// Unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column { qualifier: None, name: idaa_common::ident::normalize(&name.into()) }
    }

    /// Qualified column reference.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(idaa_common::ident::normalize(&qualifier.into())),
            name: idaa_common::ident::normalize(&name.into()),
        }
    }

    /// Integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Literal(Value::BigInt(v))
    }

    /// String literal.
    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Literal(Value::Varchar(v.into()))
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Binary { left: Box::new(self), op: BinaryOp::Eq, right: Box::new(other) }
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary { left: Box::new(self), op: BinaryOp::And, right: Box::new(other) }
    }

    /// True if the expression tree contains an aggregate function call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Function { name, .. } if is_aggregate_name(name) => true,
            Expr::Function { args, .. } => args.iter().any(Expr::contains_aggregate),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. }
            | Expr::IsNull { expr, .. }
            | Expr::Cast { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::Case { operand, branches, else_result } => {
                operand.as_ref().map(|e| e.contains_aggregate()).unwrap_or(false)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_result.as_ref().map(|e| e.contains_aggregate()).unwrap_or(false)
            }
            Expr::Literal(_) | Expr::Column { .. } | Expr::Parameter(_) => false,
        }
    }
}

/// The aggregate function names the engines implement.
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(name, "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "STDDEV" | "VARIANCE")
}

/// Binary operators, grouped by precedence in the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Or,
    And,
    Eq,
    Neq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::Neq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Concat => "||",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

// ---------------------------------------------------------------------------
// Display: SQL generation. Expressions are printed fully parenthesized so the
// printed form unambiguously re-parses to the identical tree.
// ---------------------------------------------------------------------------

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(Value::Varchar(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(Value::Null) => write!(f, "NULL"),
            Expr::Literal(Value::Boolean(b)) => {
                write!(f, "{}", if *b { "TRUE" } else { "FALSE" })
            }
            Expr::Literal(Value::Date(d)) => {
                write!(f, "DATE '{}'", idaa_common::value::render_date(*d))
            }
            Expr::Literal(Value::Timestamp(t)) => {
                write!(f, "TIMESTAMP '{}'", idaa_common::value::render_timestamp(*t))
            }
            Expr::Literal(Value::Double(v)) => {
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    write!(f, "{v:.1}E0")
                } else {
                    write!(f, "{v:E}")
                }
            }
            Expr::Literal(v) => write!(f, "{}", v.render()),
            Expr::Column { qualifier: Some(q), name } => write!(f, "{q}.{name}"),
            Expr::Column { qualifier: None, name } => write!(f, "{name}"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Unary { op: UnaryOp::Not, expr } => write!(f, "(NOT {expr})"),
            Expr::Unary { op: UnaryOp::Neg, expr } => write!(f, "(- {expr})"),
            Expr::Function { name, args, distinct } => {
                if name == "COUNT" && args.is_empty() {
                    return write!(f, "COUNT(*)");
                }
                write!(f, "{name}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                write!(f, "({expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::Between { expr, low, high, negated } => write!(
                f,
                "({expr} {}BETWEEN {low} AND {high})",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Like { expr, pattern, negated } => {
                write!(f, "({expr} {}LIKE {pattern})", if *negated { "NOT " } else { "" })
            }
            Expr::Case { operand, branches, else_result } => {
                write!(f, "CASE")?;
                if let Some(op) = operand {
                    write!(f, " {op}")?;
                }
                for (w, t) in branches {
                    write!(f, " WHEN {w} THEN {t}")?;
                }
                if let Some(e) = else_result {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END")
            }
            Expr::Cast { expr, data_type } => write!(f, "CAST({expr} AS {data_type})"),
            Expr::Parameter(i) => write!(f, "?{i}"),
        }
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(q) => write!(f, "{q}.*"),
            SelectItem::Expr { expr, alias: Some(a) } => write!(f, "{expr} AS {a}"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableRef::Table { name, alias: Some(a) } => write!(f, "{name} AS {a}"),
            TableRef::Table { name, alias: None } => write!(f, "{name}"),
            TableRef::Subquery { query, alias } => write!(f, "({query}) AS {alias}"),
            TableRef::Join { left, right, kind, on } => {
                write!(f, "{left} {kind} {right} ON {on}")
            }
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for (i, p) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        if let Some(from) = &self.from {
            write!(f, " FROM {from}")?;
        }
        if let Some(w) = &self.filter {
            write!(f, " WHERE {w}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " GROUP BY ")?;
            for (i, g) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{g}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        for (all, block) in &self.unions {
            write!(f, " UNION {}{block}", if *all { "ALL " } else { "" })?;
        }
        if !self.order_by.is_empty() {
            write!(f, " ORDER BY ")?;
            for (i, o) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}{}", o.expr, if o.desc { " DESC" } else { "" })?;
            }
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable { name, columns, in_accelerator, distribute_by } => {
                write!(f, "CREATE TABLE {name} (")?;
                for (i, c) in columns.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{} {}", c.name, c.data_type)?;
                    if c.not_null {
                        write!(f, " NOT NULL")?;
                    }
                }
                write!(f, ")")?;
                if *in_accelerator {
                    write!(f, " IN ACCELERATOR")?;
                }
                if !distribute_by.is_empty() {
                    write!(f, " DISTRIBUTE BY HASH({})", distribute_by.join(", "))?;
                }
                Ok(())
            }
            Statement::DropTable { name } => write!(f, "DROP TABLE {name}"),
            Statement::CreateIndex { name, table, columns } => {
                write!(f, "CREATE INDEX {name} ON {table} ({})", columns.join(", "))
            }
            Statement::Insert { table, columns, source } => {
                write!(f, "INSERT INTO {table}")?;
                if !columns.is_empty() {
                    write!(f, " ({})", columns.join(", "))?;
                }
                match source {
                    InsertSource::Values(rows) => {
                        write!(f, " VALUES ")?;
                        for (i, row) in rows.iter().enumerate() {
                            if i > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "(")?;
                            for (j, e) in row.iter().enumerate() {
                                if j > 0 {
                                    write!(f, ", ")?;
                                }
                                write!(f, "{e}")?;
                            }
                            write!(f, ")")?;
                        }
                        Ok(())
                    }
                    InsertSource::Query(q) => write!(f, " {q}"),
                }
            }
            Statement::Update { table, assignments, filter } => {
                write!(f, "UPDATE {table} SET ")?;
                for (i, (c, e)) in assignments.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c} = {e}")?;
                }
                if let Some(p) = filter {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Statement::Delete { table, filter } => {
                write!(f, "DELETE FROM {table}")?;
                if let Some(p) = filter {
                    write!(f, " WHERE {p}")?;
                }
                Ok(())
            }
            Statement::Query(q) => write!(f, "{q}"),
            Statement::Begin => write!(f, "BEGIN"),
            Statement::Commit => write!(f, "COMMIT"),
            Statement::Rollback => write!(f, "ROLLBACK"),
            Statement::SetQueryAcceleration(m) => {
                write!(f, "SET CURRENT QUERY ACCELERATION = {m}")
            }
            Statement::SetCurrentSchema(s) => write!(f, "SET CURRENT SCHEMA = {s}"),
            Statement::Call { procedure, args } => {
                write!(f, "CALL {procedure}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Statement::Grant { privileges, object, grantees } => {
                write!(
                    f,
                    "GRANT {} ON {object} TO {}",
                    privileges.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", "),
                    grantees.join(", ")
                )
            }
            Statement::Revoke { privileges, object, grantees } => {
                write!(
                    f,
                    "REVOKE {} ON {object} FROM {}",
                    privileges.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(", "),
                    grantees.join(", ")
                )
            }
            Statement::Explain { analyze, stmt } => {
                write!(f, "EXPLAIN {}{stmt}", if *analyze { "ANALYZE " } else { "" })
            }
            Statement::ShowWorkload => write!(f, "SHOW WORKLOAD"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_builders() {
        let e = Expr::col("a").eq(Expr::int(1)).and(Expr::col("b").eq(Expr::str("x")));
        assert_eq!(e.to_string(), "((A = 1) AND (B = 'x'))");
    }

    #[test]
    fn aggregate_detection() {
        let e = Expr::Function { name: "SUM".into(), args: vec![Expr::col("x")], distinct: false };
        assert!(e.contains_aggregate());
        let wrapped = Expr::Binary {
            left: Box::new(e),
            op: BinaryOp::Add,
            right: Box::new(Expr::int(1)),
        };
        assert!(wrapped.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn count_star_prints() {
        let e = Expr::Function { name: "COUNT".into(), args: vec![], distinct: false };
        assert_eq!(e.to_string(), "COUNT(*)");
    }

    #[test]
    fn string_literal_escapes() {
        let e = Expr::str("it's");
        assert_eq!(e.to_string(), "'it''s'");
    }

    #[test]
    fn create_table_in_accelerator_prints_clause() {
        let s = Statement::CreateTable {
            name: ObjectName::bare("T1"),
            columns: vec![ColumnSpec {
                name: "A".into(),
                data_type: DataType::Integer,
                not_null: true,
            }],
            in_accelerator: true,
            distribute_by: vec!["A".into()],
        };
        assert_eq!(
            s.to_string(),
            "CREATE TABLE T1 (A INTEGER NOT NULL) IN ACCELERATOR DISTRIBUTE BY HASH(A)"
        );
    }
}
