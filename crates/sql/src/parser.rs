//! Recursive-descent parser with precedence climbing for expressions.

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use idaa_common::{DataType, Decimal, Error, ObjectName, Result, Value};

/// Parse a single SQL statement (a trailing semicolon is tolerated).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.parse_statement()?;
    p.eat(&Token::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a semicolon-separated script into statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&Token::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.parse_statement()?);
        if !p.at_eof() && !p.peek_is(&Token::Semicolon) {
            return Err(p.unexpected("';' between statements"));
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_param: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Parser> {
        Ok(Parser { tokens: tokenize(sql)?, pos: 0, next_param: 0 })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_is(&self, t: &Token) -> bool {
        self.peek() == Some(t)
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    fn peek2_kw(&self, kw: &str) -> bool {
        self.tokens.get(self.pos + 1).map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek_is(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("{t:?}")))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(kw))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.unexpected("end of statement"))
        }
    }

    fn unexpected(&self, wanted: &str) -> Error {
        match self.peek() {
            Some(t) => Error::Parse(format!("expected {wanted}, found {t:?} at token {}", self.pos)),
            None => Error::Parse(format!("expected {wanted}, found end of input")),
        }
    }

    /// Any identifier (keyword or not), upper-cased; quoted identifiers
    /// pass through unchanged.
    fn ident(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            Some(Token::QuotedIdent(s)) => Ok(s),
            other => Err(Error::Parse(format!("expected identifier, found {other:?}"))),
        }
    }

    fn object_name(&mut self) -> Result<ObjectName> {
        let first = self.ident()?;
        if self.eat(&Token::Period) {
            let second = self.ident()?;
            Ok(ObjectName { schema: Some(first), name: second })
        } else {
            Ok(ObjectName { schema: None, name: first })
        }
    }

    // -- statements ---------------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.eat_kw("EXPLAIN") {
            // `EXPLAIN PLAN FOR …` is accepted as a synonym.
            if self.eat_kw("PLAN") {
                self.eat_kw("FOR");
            }
            let analyze = self.eat_kw("ANALYZE");
            let inner = self.parse_statement()?;
            return Ok(Statement::Explain { analyze, stmt: Box::new(inner) });
        }
        if self.peek_kw("SELECT") {
            return Ok(Statement::Query(Box::new(self.parse_query()?)));
        }
        if self.eat_kw("CREATE") {
            if self.peek_kw("TABLE") {
                return self.parse_create_table();
            }
            if self.peek_kw("INDEX") || self.peek_kw("UNIQUE") {
                return self.parse_create_index();
            }
            return Err(self.unexpected("TABLE or INDEX after CREATE"));
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            return Ok(Statement::DropTable { name: self.object_name()? });
        }
        if self.eat_kw("INSERT") {
            return self.parse_insert();
        }
        if self.eat_kw("UPDATE") {
            return self.parse_update();
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.object_name()?;
            let filter = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
            return Ok(Statement::Delete { table, filter });
        }
        if self.eat_kw("BEGIN") {
            self.eat_kw("TRANSACTION");
            self.eat_kw("WORK");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            self.eat_kw("WORK");
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            self.eat_kw("WORK");
            return Ok(Statement::Rollback);
        }
        if self.eat_kw("SET") {
            return self.parse_set();
        }
        if self.eat_kw("SHOW") {
            self.expect_kw("WORKLOAD")?;
            return Ok(Statement::ShowWorkload);
        }
        if self.eat_kw("CALL") {
            let procedure = self.object_name()?;
            let mut args = Vec::new();
            self.expect(&Token::LParen)?;
            if !self.peek_is(&Token::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Statement::Call { procedure, args });
        }
        if self.eat_kw("GRANT") {
            let (privileges, object, grantees) = self.parse_grant_body("TO")?;
            return Ok(Statement::Grant { privileges, object, grantees });
        }
        if self.eat_kw("REVOKE") {
            let (privileges, object, grantees) = self.parse_grant_body("FROM")?;
            return Ok(Statement::Revoke { privileges, object, grantees });
        }
        Err(self.unexpected("a SQL statement"))
    }

    fn parse_grant_body(
        &mut self,
        connective: &str,
    ) -> Result<(Vec<Privilege>, ObjectName, Vec<String>)> {
        let mut privileges = Vec::new();
        loop {
            let word = self.ident()?;
            let p = Privilege::parse(&word)
                .ok_or_else(|| Error::Parse(format!("unknown privilege {word}")))?;
            // `ALL PRIVILEGES` is a synonym for `ALL`.
            if p == Privilege::All {
                self.eat_kw("PRIVILEGES");
            }
            privileges.push(p);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("ON")?;
        self.eat_kw("TABLE");
        self.eat_kw("PROCEDURE");
        let object = self.object_name()?;
        self.expect_kw(connective)?;
        let mut grantees = Vec::new();
        loop {
            grantees.push(self.ident()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        Ok((privileges, object, grantees))
    }

    fn parse_set(&mut self) -> Result<Statement> {
        self.expect_kw("CURRENT")?;
        if self.eat_kw("QUERY") {
            self.expect_kw("ACCELERATION")?;
            self.eat(&Token::Eq);
            let word = self.ident()?;
            let mode = AccelerationMode::parse(&word)
                .ok_or_else(|| Error::Parse(format!("invalid acceleration mode {word}")))?;
            return Ok(Statement::SetQueryAcceleration(mode));
        }
        if self.eat_kw("SCHEMA") {
            self.eat(&Token::Eq);
            let s = self.ident()?;
            return Ok(Statement::SetCurrentSchema(s));
        }
        Err(self.unexpected("QUERY ACCELERATION or SCHEMA"))
    }

    fn parse_create_table(&mut self) -> Result<Statement> {
        self.expect_kw("TABLE")?;
        let name = self.object_name()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let data_type = self.parse_data_type()?;
            let mut not_null = false;
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                not_null = true;
            }
            columns.push(ColumnSpec { name: col_name, data_type, not_null });
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        let mut in_accelerator = false;
        let mut distribute_by = Vec::new();
        loop {
            if self.eat_kw("IN") {
                self.expect_kw("ACCELERATOR")?;
                // Optional accelerator name, as in the product syntax.
                if !self.at_eof()
                    && !self.peek_is(&Token::Semicolon)
                    && !self.peek_kw("DISTRIBUTE")
                {
                    let _accel_name = self.ident()?;
                }
                in_accelerator = true;
            } else if self.eat_kw("DISTRIBUTE") {
                self.expect_kw("BY")?;
                self.expect_kw("HASH")?;
                self.expect(&Token::LParen)?;
                loop {
                    distribute_by.push(self.ident()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            } else {
                break;
            }
        }
        Ok(Statement::CreateTable { name, columns, in_accelerator, distribute_by })
    }

    fn parse_create_index(&mut self) -> Result<Statement> {
        self.eat_kw("UNIQUE");
        self.expect_kw("INDEX")?;
        let name = self.object_name()?;
        self.expect_kw("ON")?;
        let table = self.object_name()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateIndex { name, table, columns })
    }

    fn parse_data_type(&mut self) -> Result<DataType> {
        let mut name = self.ident()?;
        // Two-word names such as `DOUBLE PRECISION`.
        if name == "DOUBLE" && self.eat_kw("PRECISION") {
            name = "DOUBLE".into();
        }
        let mut args = Vec::new();
        if self.eat(&Token::LParen) {
            loop {
                match self.advance() {
                    Some(Token::Integer(v)) if (0..=65535).contains(&v) => args.push(v as u16),
                    other => {
                        return Err(Error::Parse(format!("invalid type argument {other:?}")));
                    }
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        DataType::parse_name(&name, &args)
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_kw("INTO")?;
        let table = self.object_name()?;
        let mut columns = Vec::new();
        if self.peek_is(&Token::LParen) && !self.peek2_kw("SELECT") {
            self.expect(&Token::LParen)?;
            loop {
                columns.push(self.ident()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        let source = if self.eat_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else if self.peek_kw("SELECT") || self.peek_is(&Token::LParen) {
            self.eat(&Token::LParen);
            let q = self.parse_query()?;
            self.eat(&Token::RParen);
            InsertSource::Query(Box::new(q))
        } else {
            return Err(self.unexpected("VALUES or SELECT"));
        };
        Ok(Statement::Insert { table, columns, source })
    }

    fn parse_update(&mut self) -> Result<Statement> {
        let table = self.object_name()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&Token::Eq)?;
            let e = self.parse_expr()?;
            assignments.push((col, e));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        Ok(Statement::Update { table, assignments, filter })
    }

    // -- queries ------------------------------------------------------------

    fn parse_query(&mut self) -> Result<Query> {
        let mut q = self.parse_query_core()?;
        while self.eat_kw("UNION") {
            let all = self.eat_kw("ALL");
            let block = self.parse_query_core()?;
            q.unions.push((all, block));
        }
        self.parse_order_limit(&mut q)?;
        Ok(q)
    }

    fn parse_query_core(&mut self) -> Result<Query> {
        self.expect_kw("SELECT")?;
        let distinct = self.eat_kw("DISTINCT");
        self.eat_kw("ALL");
        let mut projection = Vec::new();
        loop {
            projection.push(self.parse_select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let from = if self.eat_kw("FROM") { Some(self.parse_table_ref()?) } else { None };
        let filter = if self.eat_kw("WHERE") { Some(self.parse_expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            loop {
                group_by.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("HAVING") { Some(self.parse_expr()?) } else { None };
        Ok(Query {
            distinct,
            projection,
            from,
            filter,
            group_by,
            having,
            unions: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        })
    }

    /// ORDER BY / LIMIT / FETCH FIRST, attached to the outer query.
    fn parse_order_limit(&mut self, q: &mut Query) -> Result<()> {
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let expr = self.parse_expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                q.order_by.push(OrderByItem { expr, desc });
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.eat_kw("LIMIT") {
            match self.advance() {
                Some(Token::Integer(v)) if v >= 0 => q.limit = Some(v as u64),
                other => return Err(Error::Parse(format!("invalid LIMIT {other:?}"))),
            }
        } else if self.eat_kw("FETCH") {
            // DB2's `FETCH FIRST n ROWS ONLY`.
            self.expect_kw("FIRST")?;
            match self.advance() {
                Some(Token::Integer(v)) if v >= 0 => q.limit = Some(v as u64),
                other => return Err(Error::Parse(format!("invalid FETCH FIRST {other:?}"))),
            }
            self.eat_kw("ROWS");
            self.eat_kw("ROW");
            self.expect_kw("ONLY")?;
        }
        Ok(())
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.eat(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Some(Token::Ident(q)), Some(Token::Period), Some(Token::Star)) = (
            self.tokens.get(self.pos),
            self.tokens.get(self.pos + 1),
            self.tokens.get(self.pos + 2),
        ) {
            let q = q.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("AS")
            || matches!(self.peek(), Some(Token::Ident(s)) if !is_clause_keyword(s))
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_factor()?;
        loop {
            let kind = if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.eat_kw("LEFT") {
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Left
            } else if self.eat_kw("JOIN") {
                JoinKind::Inner
            } else if self.eat(&Token::Comma) {
                // Comma join: cross product with the ON condition pushed to
                // WHERE by the planner; encode as INNER JOIN ON TRUE.
                let right = self.parse_table_factor()?;
                left = TableRef::Join {
                    left: Box::new(left),
                    right: Box::new(right),
                    kind: JoinKind::Inner,
                    on: Expr::Literal(Value::Boolean(true)),
                };
                continue;
            } else {
                break;
            };
            let right = self.parse_table_factor()?;
            self.expect_kw("ON")?;
            let on = self.parse_expr()?;
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
        Ok(left)
    }

    fn parse_table_factor(&mut self) -> Result<TableRef> {
        if self.eat(&Token::LParen) {
            let q = self.parse_query()?;
            self.expect(&Token::RParen)?;
            self.eat_kw("AS");
            let alias = self.ident()?;
            return Ok(TableRef::Subquery { query: Box::new(q), alias });
        }
        let name = self.object_name()?;
        let alias = if self.eat_kw("AS")
            || matches!(self.peek(), Some(Token::Ident(s)) if !is_clause_keyword(s))
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    // -- expressions (precedence climbing) -----------------------------------

    fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::Or, right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::Binary { left: Box::new(left), op: BinaryOp::And, right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.eat_kw("NOT") {
            let inner = self.parse_not()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let left = self.parse_additive()?;
        // Postfix predicates: IS NULL, IN, BETWEEN, LIKE — optionally
        // prefixed with NOT.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let negated = if self.peek_kw("NOT")
            && (self.peek2_kw("IN") || self.peek2_kw("BETWEEN") || self.peek2_kw("LIKE"))
        {
            self.eat_kw("NOT");
            true
        } else {
            false
        };
        if self.eat_kw("IN") {
            self.expect(&Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.parse_additive()?;
            self.expect_kw("AND")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = self.parse_additive()?;
            return Ok(Expr::Like { expr: Box::new(left), pattern: Box::new(pattern), negated });
        }
        let op = match self.peek() {
            Some(Token::Eq) => BinaryOp::Eq,
            Some(Token::Neq) => BinaryOp::Neq,
            Some(Token::Lt) => BinaryOp::Lt,
            Some(Token::LtEq) => BinaryOp::LtEq,
            Some(Token::Gt) => BinaryOp::Gt,
            Some(Token::GtEq) => BinaryOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.parse_additive()?;
        Ok(Expr::Binary { left: Box::new(left), op, right: Box::new(right) })
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                Some(Token::ConcatOp) => BinaryOp::Concat,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::Binary { left: Box::new(left), op, right: Box::new(right) };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            // Fold negation into numeric literals for natural round-trips.
            let inner = self.parse_unary()?;
            return Ok(match inner {
                Expr::Literal(Value::BigInt(v)) => Expr::Literal(Value::BigInt(-v)),
                Expr::Literal(Value::Double(v)) => Expr::Literal(Value::Double(-v)),
                Expr::Literal(Value::Decimal(d)) => Expr::Literal(Value::Decimal(d.neg())),
                other => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(other) },
            });
        }
        if self.eat(&Token::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(Token::Integer(v)) => {
                self.advance();
                Ok(Expr::Literal(Value::BigInt(v)))
            }
            Some(Token::Number(text)) => {
                self.advance();
                if text.contains(['e', 'E']) {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| Error::Parse(format!("bad float literal {text}")))?;
                    Ok(Expr::Literal(Value::Double(v)))
                } else {
                    Ok(Expr::Literal(Value::Decimal(Decimal::parse(&text)?)))
                }
            }
            Some(Token::String(s)) => {
                self.advance();
                Ok(Expr::Literal(Value::Varchar(s)))
            }
            Some(Token::QuestionMark) => {
                self.advance();
                // Optional explicit index `?3`; otherwise auto-number.
                if let Some(Token::Integer(v)) = self.peek().cloned() {
                    self.advance();
                    Ok(Expr::Parameter(v as usize))
                } else {
                    let i = self.next_param;
                    self.next_param += 1;
                    Ok(Expr::Parameter(i))
                }
            }
            Some(Token::LParen) => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(word)) => self.parse_ident_expr(word),
            Some(Token::QuotedIdent(name)) => {
                self.advance();
                if self.eat(&Token::Period) {
                    let col = self.ident()?;
                    Ok(Expr::Column { qualifier: Some(name), name: col })
                } else {
                    Ok(Expr::Column { qualifier: None, name })
                }
            }
            other => Err(Error::Parse(format!("expected expression, found {other:?}"))),
        }
    }

    fn parse_ident_expr(&mut self, word: String) -> Result<Expr> {
        if is_clause_keyword(&word) {
            return Err(Error::Parse(format!(
                "reserved keyword {word} cannot start an expression"
            )));
        }
        match word.as_str() {
            "NULL" => {
                self.advance();
                return Ok(Expr::Literal(Value::Null));
            }
            "TRUE" => {
                self.advance();
                return Ok(Expr::Literal(Value::Boolean(true)));
            }
            "FALSE" => {
                self.advance();
                return Ok(Expr::Literal(Value::Boolean(false)));
            }
            "DATE" => {
                if let Some(Token::String(s)) = self.tokens.get(self.pos + 1).cloned() {
                    self.pos += 2;
                    return Ok(Expr::Literal(Value::Date(idaa_common::value::parse_date(&s)?)));
                }
            }
            "TIMESTAMP" => {
                if let Some(Token::String(s)) = self.tokens.get(self.pos + 1).cloned() {
                    self.pos += 2;
                    return Ok(Expr::Literal(Value::Timestamp(
                        idaa_common::value::parse_timestamp(&s)?,
                    )));
                }
            }
            "CAST" => {
                self.advance();
                self.expect(&Token::LParen)?;
                let e = self.parse_expr()?;
                self.expect_kw("AS")?;
                let t = self.parse_data_type()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::Cast { expr: Box::new(e), data_type: t });
            }
            "CASE" => {
                self.advance();
                return self.parse_case();
            }
            _ => {}
        }
        self.advance();
        // Function call?
        if self.peek_is(&Token::LParen) {
            self.advance();
            if word == "COUNT" && self.eat(&Token::Star) {
                self.expect(&Token::RParen)?;
                return Ok(Expr::Function { name: "COUNT".into(), args: vec![], distinct: false });
            }
            let distinct = self.eat_kw("DISTINCT");
            let mut args = Vec::new();
            if !self.peek_is(&Token::RParen) {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function { name: word, args, distinct });
        }
        // Qualified column?
        if self.eat(&Token::Period) {
            let col = self.ident()?;
            return Ok(Expr::Column { qualifier: Some(word), name: col });
        }
        Ok(Expr::Column { qualifier: None, name: word })
    }

    fn parse_case(&mut self) -> Result<Expr> {
        let operand = if self.peek_kw("WHEN") {
            None
        } else {
            Some(Box::new(self.parse_expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let w = self.parse_expr()?;
            self.expect_kw("THEN")?;
            let t = self.parse_expr()?;
            branches.push((w, t));
        }
        if branches.is_empty() {
            return Err(self.unexpected("WHEN"));
        }
        let else_result = if self.eat_kw("ELSE") {
            Some(Box::new(self.parse_expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case { operand, branches, else_result })
    }
}

/// Keywords that terminate an implicit alias position.
fn is_clause_keyword(s: &str) -> bool {
    matches!(
        s,
        "FROM"
            | "WHERE"
            | "GROUP"
            | "HAVING"
            | "ORDER"
            | "LIMIT"
            | "FETCH"
            | "ON"
            | "INNER"
            | "LEFT"
            | "RIGHT"
            | "JOIN"
            | "AS"
            | "AND"
            | "OR"
            | "NOT"
            | "UNION"
            | "SET"
            | "VALUES"
            | "IN"
            | "DISTRIBUTE"
            | "ASC"
            | "DESC"
            | "WHEN"
            | "THEN"
            | "ELSE"
            | "END"
            | "IS"
            | "BETWEEN"
            | "LIKE"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(sql: &str) -> Statement {
        let s = parse_statement(sql).unwrap();
        let printed = s.to_string();
        let s2 = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("re-parse of '{printed}' failed: {e}"));
        assert_eq!(s, s2, "round trip mismatch for {sql} -> {printed}");
        s
    }

    #[test]
    fn select_basic() {
        let s = roundtrip("SELECT a, b AS total FROM t WHERE a > 1 ORDER BY b DESC LIMIT 10");
        let Statement::Query(q) = s else { panic!() };
        assert_eq!(q.projection.len(), 2);
        assert!(q.filter.is_some());
        assert_eq!(q.limit, Some(10));
        assert!(q.order_by[0].desc);
    }

    #[test]
    fn select_star_and_qualified_star() {
        roundtrip("SELECT * FROM t");
        roundtrip("SELECT t.* FROM t");
    }

    #[test]
    fn fetch_first_rows_only() {
        let s = parse_statement("SELECT a FROM t FETCH FIRST 5 ROWS ONLY").unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn joins() {
        let s = roundtrip(
            "SELECT a FROM t1 INNER JOIN t2 ON t1.id = t2.id LEFT JOIN t3 ON t2.k = t3.k",
        );
        let Statement::Query(q) = s else { panic!() };
        let Some(TableRef::Join { kind, .. }) = q.from else { panic!() };
        assert_eq!(kind, JoinKind::Left);
    }

    #[test]
    fn comma_join_becomes_cross() {
        let s = parse_statement("SELECT a FROM t1, t2 WHERE t1.x = t2.x").unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert!(matches!(q.from, Some(TableRef::Join { .. })));
    }

    #[test]
    fn subquery_in_from() {
        let s = roundtrip("SELECT x FROM (SELECT a AS x FROM t) AS sub WHERE x > 0");
        let Statement::Query(q) = s else { panic!() };
        assert!(matches!(q.from, Some(TableRef::Subquery { .. })));
    }

    #[test]
    fn group_by_having() {
        let s = roundtrip(
            "SELECT dept, SUM(pay) FROM emp GROUP BY dept HAVING (SUM(pay) > 100)",
        );
        let Statement::Query(q) = s else { panic!() };
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
    }

    #[test]
    fn aggregates_and_distinct() {
        roundtrip("SELECT COUNT(*), COUNT(DISTINCT a), AVG(b), STDDEV(c) FROM t");
        let s = parse_statement("SELECT DISTINCT a FROM t").unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert!(q.distinct);
    }

    #[test]
    fn expression_precedence() {
        let s = parse_statement("SELECT 1 + 2 * 3 FROM t").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &q.projection[0] else { panic!() };
        assert_eq!(expr.to_string(), "(1 + (2 * 3))");
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let s = parse_statement("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert_eq!(q.filter.unwrap().to_string(), "((A = 1) OR ((B = 2) AND (C = 3)))");
    }

    #[test]
    fn predicates() {
        roundtrip("SELECT a FROM t WHERE (a IS NULL)");
        roundtrip("SELECT a FROM t WHERE (a IS NOT NULL)");
        roundtrip("SELECT a FROM t WHERE (a IN (1, 2, 3))");
        roundtrip("SELECT a FROM t WHERE (a NOT BETWEEN 1 AND 5)");
        roundtrip("SELECT a FROM t WHERE (name LIKE 'AB%')");
    }

    #[test]
    fn case_expressions() {
        roundtrip("SELECT CASE WHEN (a > 1) THEN 'hi' ELSE 'lo' END FROM t");
        roundtrip("SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t");
    }

    #[test]
    fn cast_and_literals() {
        roundtrip("SELECT CAST(a AS DECIMAL(10,2)) FROM t");
        roundtrip("SELECT DATE '2016-03-15', TIMESTAMP '2016-03-15 10:00:00.000000' FROM t");
        let s = parse_statement("SELECT 1.5, 2E0 FROM t").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &q.projection[0] else { panic!() };
        assert!(matches!(expr, Expr::Literal(Value::Decimal(_))));
        let SelectItem::Expr { expr, .. } = &q.projection[1] else { panic!() };
        assert!(matches!(expr, Expr::Literal(Value::Double(_))));
    }

    #[test]
    fn negative_literals_fold() {
        let s = parse_statement("SELECT -5, -2.5 FROM t").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let SelectItem::Expr { expr, .. } = &q.projection[0] else { panic!() };
        assert_eq!(*expr, Expr::Literal(Value::BigInt(-5)));
    }

    #[test]
    fn create_table_plain_and_aot() {
        let s = roundtrip("CREATE TABLE T1 (A INTEGER NOT NULL, B VARCHAR(20))");
        assert!(matches!(s, Statement::CreateTable { in_accelerator: false, .. }));
        let s = roundtrip(
            "CREATE TABLE DWH.STAGE1 (A INTEGER NOT NULL) IN ACCELERATOR DISTRIBUTE BY HASH(A)",
        );
        let Statement::CreateTable { in_accelerator, distribute_by, .. } = s else { panic!() };
        assert!(in_accelerator);
        assert_eq!(distribute_by, vec!["A"]);
    }

    #[test]
    fn create_table_in_named_accelerator() {
        let s = parse_statement("CREATE TABLE T1 (A INT) IN ACCELERATOR ACCEL1").unwrap();
        assert!(matches!(s, Statement::CreateTable { in_accelerator: true, .. }));
    }

    #[test]
    fn insert_values_and_select() {
        roundtrip("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
        roundtrip("INSERT INTO t SELECT a, b FROM s WHERE (a > 0)");
        let s = parse_statement("INSERT INTO t (SELECT a FROM s)").unwrap();
        assert!(matches!(
            s,
            Statement::Insert { source: InsertSource::Query(_), .. }
        ));
    }

    #[test]
    fn update_delete() {
        roundtrip("UPDATE t SET a = (a + 1), b = 'z' WHERE (a < 10)");
        roundtrip("DELETE FROM t WHERE (a = 5)");
        roundtrip("DELETE FROM t");
    }

    #[test]
    fn transaction_control() {
        assert_eq!(parse_statement("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("COMMIT WORK").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ROLLBACK").unwrap(), Statement::Rollback);
    }

    #[test]
    fn show_workload() {
        assert_eq!(parse_statement("SHOW WORKLOAD").unwrap(), Statement::ShowWorkload);
        roundtrip("SHOW WORKLOAD");
        assert!(parse_statement("SHOW TABLES").is_err());
    }

    #[test]
    fn set_registers() {
        let s = parse_statement("SET CURRENT QUERY ACCELERATION = ELIGIBLE").unwrap();
        assert_eq!(s, Statement::SetQueryAcceleration(AccelerationMode::Eligible));
        let s = parse_statement("SET CURRENT QUERY ACCELERATION ALL").unwrap();
        assert_eq!(s, Statement::SetQueryAcceleration(AccelerationMode::All));
        let s = parse_statement("SET CURRENT SCHEMA = DWH").unwrap();
        assert_eq!(s, Statement::SetCurrentSchema("DWH".into()));
    }

    #[test]
    fn call_statement() {
        let s = roundtrip("CALL SYSPROC.ACCEL_ADD_TABLES('ACCEL1', 'SALES')");
        let Statement::Call { procedure, args } = s else { panic!() };
        assert_eq!(procedure.to_string(), "SYSPROC.ACCEL_ADD_TABLES");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn grant_revoke() {
        let s = roundtrip("GRANT SELECT, INSERT ON SALES TO ALICE, BOB");
        let Statement::Grant { privileges, grantees, .. } = s else { panic!() };
        assert_eq!(privileges, vec![Privilege::Select, Privilege::Insert]);
        assert_eq!(grantees, vec!["ALICE", "BOB"]);
        roundtrip("REVOKE ALL ON SALES FROM BOB");
        let s = parse_statement("GRANT ALL PRIVILEGES ON T TO U").unwrap();
        assert!(matches!(s, Statement::Grant { .. }));
    }

    #[test]
    fn union_parsing() {
        let s = roundtrip("SELECT a FROM t UNION ALL SELECT a FROM s UNION SELECT a FROM t ORDER BY 1 LIMIT 5");
        let Statement::Query(q) = s else { panic!() };
        assert_eq!(q.unions.len(), 2);
        assert!(q.unions[0].0, "first arm is UNION ALL");
        assert!(!q.unions[1].0, "second arm is plain UNION");
        assert_eq!(q.limit, Some(5));
        assert!(q.unions.iter().all(|(_, b)| b.order_by.is_empty() && b.limit.is_none()));
    }

    #[test]
    fn union_inside_subquery_keeps_own_scope() {
        let s = parse_statement(
            "SELECT x FROM (SELECT a AS x FROM t UNION ALL SELECT a AS x FROM s) AS u ORDER BY x",
        )
        .unwrap();
        let Statement::Query(q) = s else { panic!() };
        assert!(q.unions.is_empty());
        assert_eq!(q.order_by.len(), 1);
    }

    #[test]
    fn multi_statement_script() {
        let script = "CREATE TABLE a (x INT); INSERT INTO a VALUES (1); SELECT x FROM a;";
        let stmts = parse_statements(script).unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_statement("SELEKT 1").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("CREATE TABLE t").is_err());
        assert!(parse_statement("INSERT INTO t").is_err());
        assert!(parse_statement("SELECT 1 2 3 FROM t WHERE").is_err());
        assert!(parse_statement("SET CURRENT QUERY ACCELERATION = SOMETIMES").is_err());
    }

    #[test]
    fn parameters_autonumber() {
        let s = parse_statement("SELECT a FROM t WHERE a = ? AND b = ?").unwrap();
        let Statement::Query(q) = s else { panic!() };
        let printed = q.filter.unwrap().to_string();
        assert!(printed.contains("?0") && printed.contains("?1"));
    }

    #[test]
    fn double_precision_type() {
        let s = parse_statement("CREATE TABLE t (x DOUBLE PRECISION)").unwrap();
        let Statement::CreateTable { columns, .. } = s else { panic!() };
        assert_eq!(columns[0].data_type, DataType::Double);
    }
}
