//! Hand-written SQL tokenizer.
//!
//! Follows DB2 lexical rules for the supported subset: unquoted identifiers
//! fold to upper case, `"double quoted"` identifiers preserve case,
//! `'string'` literals escape quotes by doubling, `--` starts a line
//! comment.

use idaa_common::{Error, Result};

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword, upper-cased.
    Ident(String),
    /// Double-quoted identifier, case preserved.
    QuotedIdent(String),
    /// String literal (quotes stripped, `''` unescaped).
    String(String),
    /// Integer literal.
    Integer(i64),
    /// Decimal or float literal kept as text (the parser decides DECIMAL vs
    /// DOUBLE based on presence of an exponent).
    Number(String),
    /// Punctuation / operators.
    LParen,
    RParen,
    Comma,
    Period,
    Semicolon,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Eq,
    Neq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    ConcatOp,
    QuestionMark,
}

impl Token {
    /// True if this token is the given keyword (case-insensitive match on
    /// unquoted identifiers only).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s == kw)
    }
}

/// Tokenize `input` into a token vector.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '?' => {
                tokens.push(Token::QuestionMark);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                tokens.push(Token::ConcatOp);
                i += 2;
            }
            '<' => {
                match bytes.get(i + 1) {
                    Some(b'=') => {
                        tokens.push(Token::LtEq);
                        i += 2;
                    }
                    Some(b'>') => {
                        tokens.push(Token::Neq);
                        i += 2;
                    }
                    _ => {
                        tokens.push(Token::Lt);
                        i += 1;
                    }
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Neq);
                i += 2;
            }
            '\'' => {
                let (s, next) = lex_string(input, i)?;
                tokens.push(Token::String(s));
                i = next;
            }
            '"' => {
                let (s, next) = lex_quoted_ident(input, i)?;
                tokens.push(Token::QuotedIdent(s));
                i = next;
            }
            '.' if bytes.get(i + 1).map(|b| b.is_ascii_digit()).unwrap_or(false) => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(tok);
                i = next;
            }
            '.' => {
                tokens.push(Token::Period);
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let (tok, next) = lex_number(input, i)?;
                tokens.push(tok);
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_ascii_uppercase()));
            }
            other => {
                return Err(Error::Parse(format!("unexpected character '{other}' at offset {i}")));
            }
        }
    }
    Ok(tokens)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // Copy the full UTF-8 character.
            let ch = input[i..].chars().next().unwrap();
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(Error::Parse("unterminated string literal".into()))
}

fn lex_quoted_ident(input: &str, start: usize) -> Result<(String, usize)> {
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1;
    while i < bytes.len() {
        if bytes[i] == b'"' {
            if bytes.get(i + 1) == Some(&b'"') {
                out.push('"');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            let ch = input[i..].chars().next().unwrap();
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    Err(Error::Parse("unterminated quoted identifier".into()))
}

fn lex_number(input: &str, start: usize) -> Result<(Token, usize)> {
    let bytes = input.as_bytes();
    let mut i = start;
    let mut saw_dot = false;
    let mut saw_exp = false;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => i += 1,
            b'.' if !saw_dot && !saw_exp => {
                saw_dot = true;
                i += 1;
            }
            b'e' | b'E' if !saw_exp && i > start => {
                saw_exp = true;
                i += 1;
                if matches!(bytes.get(i), Some(b'+') | Some(b'-')) {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let text = &input[start..i];
    if saw_dot || saw_exp {
        Ok((Token::Number(text.to_string()), i))
    } else {
        let v: i64 = text
            .parse()
            .map_err(|_| Error::Parse(format!("integer literal '{text}' out of range")))?;
        Ok((Token::Integer(v), i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_fold_upper() {
        let t = tokenize("select Foo from bar").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("FOO".into()),
                Token::Ident("FROM".into()),
                Token::Ident("BAR".into()),
            ]
        );
    }

    #[test]
    fn strings_preserve_case_and_escape() {
        let t = tokenize("'It''s Fine'").unwrap();
        assert_eq!(t, vec![Token::String("It's Fine".into())]);
    }

    #[test]
    fn quoted_idents_preserve_case() {
        let t = tokenize("\"MixedCase\"").unwrap();
        assert_eq!(t, vec![Token::QuotedIdent("MixedCase".into())]);
    }

    #[test]
    fn numbers() {
        assert_eq!(tokenize("42").unwrap(), vec![Token::Integer(42)]);
        assert_eq!(tokenize("4.5").unwrap(), vec![Token::Number("4.5".into())]);
        assert_eq!(tokenize("1e-3").unwrap(), vec![Token::Number("1e-3".into())]);
        assert_eq!(tokenize(".5").unwrap(), vec![Token::Number(".5".into())]);
    }

    #[test]
    fn operators() {
        let t = tokenize("a <= b <> c >= d != e || f").unwrap();
        assert!(t.contains(&Token::LtEq));
        assert_eq!(t.iter().filter(|x| **x == Token::Neq).count(), 2);
        assert!(t.contains(&Token::GtEq));
        assert!(t.contains(&Token::ConcatOp));
    }

    #[test]
    fn comments_skipped() {
        let t = tokenize("select 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(t, vec![
            Token::Ident("SELECT".into()),
            Token::Integer(1),
            Token::Comma,
            Token::Integer(2),
        ]);
    }

    #[test]
    fn qualified_name_periods() {
        let t = tokenize("dwh.sales").unwrap();
        assert_eq!(
            t,
            vec![
                Token::Ident("DWH".into()),
                Token::Period,
                Token::Ident("SALES".into())
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
        assert!(tokenize("\"abc").is_err());
    }

    #[test]
    fn unexpected_char_errors() {
        assert!(tokenize("select #").is_err());
    }

    #[test]
    fn huge_integer_errors() {
        assert!(tokenize("99999999999999999999999").is_err());
    }
}
