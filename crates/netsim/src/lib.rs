//! # idaa-netsim
//!
//! A metered model of the z/OS ↔ accelerator network link.
//!
//! The paper's headline claim is that accelerator-only tables *minimize
//! data movement* between DB2 and the accelerator. To make that claim
//! measurable and deterministic, every byte that crosses the federation
//! boundary in this reproduction goes through a [`NetLink`]: transfers are
//! counted per direction, and a virtual clock accumulates the time the
//! transfer would take on a link with configurable bandwidth and latency
//! (default: 10 GbE with 200 µs round-trip, roughly the IDAA appliance
//! attachment). Wall-clock time is never consumed — benchmarks report
//! compute (wall) and network (virtual) time separately and combined.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Transfer direction over the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// DB2 → accelerator (statements, load batches, replication).
    ToAccel,
    /// Accelerator → DB2 (result sets, acknowledgements).
    ToHost,
}

/// Link parameters.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Payload bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// One-way message latency.
    pub latency: Duration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // 10 GbE ≈ 1.25 GB/s payload, 100 µs one-way latency.
        LinkConfig {
            bandwidth_bytes_per_sec: 1.25e9,
            latency: Duration::from_micros(100),
        }
    }
}

impl LinkConfig {
    /// A deliberately slow link (useful to expose data-movement costs in
    /// examples: 100 MB/s, 1 ms latency).
    pub fn slow() -> LinkConfig {
        LinkConfig { bandwidth_bytes_per_sec: 1.0e8, latency: Duration::from_millis(1) }
    }
}

/// Accumulated link metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkMetrics {
    pub bytes_to_accel: u64,
    pub bytes_to_host: u64,
    pub messages_to_accel: u64,
    pub messages_to_host: u64,
    /// Virtual time spent on the wire.
    pub wire_time: Duration,
}

impl LinkMetrics {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_to_accel + self.bytes_to_host
    }

    /// Total messages in either direction.
    pub fn total_messages(&self) -> u64 {
        self.messages_to_accel + self.messages_to_host
    }

    /// Difference against an earlier snapshot of the same link.
    pub fn since(&self, earlier: &LinkMetrics) -> LinkMetrics {
        LinkMetrics {
            bytes_to_accel: self.bytes_to_accel - earlier.bytes_to_accel,
            bytes_to_host: self.bytes_to_host - earlier.bytes_to_host,
            messages_to_accel: self.messages_to_accel - earlier.messages_to_accel,
            messages_to_host: self.messages_to_host - earlier.messages_to_host,
            wire_time: self.wire_time - earlier.wire_time,
        }
    }
}

/// The metered link.
#[derive(Debug)]
pub struct NetLink {
    config: Mutex<LinkConfig>,
    bytes_to_accel: AtomicU64,
    bytes_to_host: AtomicU64,
    messages_to_accel: AtomicU64,
    messages_to_host: AtomicU64,
    wire_nanos: AtomicU64,
}

impl Default for NetLink {
    fn default() -> Self {
        NetLink::new(LinkConfig::default())
    }
}

impl NetLink {
    /// Link with the given parameters.
    pub fn new(config: LinkConfig) -> NetLink {
        NetLink {
            config: Mutex::new(config),
            bytes_to_accel: AtomicU64::new(0),
            bytes_to_host: AtomicU64::new(0),
            messages_to_accel: AtomicU64::new(0),
            messages_to_host: AtomicU64::new(0),
            wire_nanos: AtomicU64::new(0),
        }
    }

    /// Change parameters mid-flight (experiments sweep these).
    pub fn set_config(&self, config: LinkConfig) {
        *self.config.lock() = config;
    }

    /// Record one message of `bytes` payload in `direction`; returns the
    /// virtual transfer time charged.
    pub fn transfer(&self, direction: Direction, bytes: usize) -> Duration {
        let cfg = self.config.lock().clone();
        let cost = cfg.latency
            + Duration::from_secs_f64(bytes as f64 / cfg.bandwidth_bytes_per_sec);
        match direction {
            Direction::ToAccel => {
                self.bytes_to_accel.fetch_add(bytes as u64, Ordering::Relaxed);
                self.messages_to_accel.fetch_add(1, Ordering::Relaxed);
            }
            Direction::ToHost => {
                self.bytes_to_host.fetch_add(bytes as u64, Ordering::Relaxed);
                self.messages_to_host.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.wire_nanos.fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
        cost
    }

    /// Snapshot of the counters.
    pub fn metrics(&self) -> LinkMetrics {
        LinkMetrics {
            bytes_to_accel: self.bytes_to_accel.load(Ordering::Relaxed),
            bytes_to_host: self.bytes_to_host.load(Ordering::Relaxed),
            messages_to_accel: self.messages_to_accel.load(Ordering::Relaxed),
            messages_to_host: self.messages_to_host.load(Ordering::Relaxed),
            wire_time: Duration::from_nanos(self.wire_nanos.load(Ordering::Relaxed)),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.bytes_to_accel.store(0, Ordering::Relaxed);
        self.bytes_to_host.store(0, Ordering::Relaxed);
        self.messages_to_accel.store(0, Ordering::Relaxed);
        self.messages_to_host.store(0, Ordering::Relaxed);
        self.wire_nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_accumulates_both_directions() {
        let link = NetLink::default();
        link.transfer(Direction::ToAccel, 1000);
        link.transfer(Direction::ToAccel, 500);
        link.transfer(Direction::ToHost, 200);
        let m = link.metrics();
        assert_eq!(m.bytes_to_accel, 1500);
        assert_eq!(m.bytes_to_host, 200);
        assert_eq!(m.messages_to_accel, 2);
        assert_eq!(m.messages_to_host, 1);
        assert_eq!(m.total_bytes(), 1700);
        assert_eq!(m.total_messages(), 3);
    }

    #[test]
    fn wire_time_scales_with_bytes_and_latency() {
        let link = NetLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1000.0,
            latency: Duration::from_millis(1),
        });
        let t = link.transfer(Direction::ToAccel, 1000);
        // 1 ms latency + 1 s payload.
        assert_eq!(t, Duration::from_millis(1001));
        let t2 = link.transfer(Direction::ToAccel, 0);
        assert_eq!(t2, Duration::from_millis(1), "empty message still pays latency");
        assert_eq!(link.metrics().wire_time, Duration::from_millis(1002));
    }

    #[test]
    fn since_computes_deltas() {
        let link = NetLink::default();
        link.transfer(Direction::ToAccel, 100);
        let before = link.metrics();
        link.transfer(Direction::ToAccel, 50);
        link.transfer(Direction::ToHost, 10);
        let delta = link.metrics().since(&before);
        assert_eq!(delta.bytes_to_accel, 50);
        assert_eq!(delta.bytes_to_host, 10);
        assert_eq!(delta.messages_to_accel, 1);
    }

    #[test]
    fn reset_zeroes() {
        let link = NetLink::default();
        link.transfer(Direction::ToHost, 10);
        link.reset();
        assert_eq!(link.metrics(), LinkMetrics::default());
    }

    #[test]
    fn reconfiguration_applies_to_later_transfers() {
        let link = NetLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1000.0,
            latency: Duration::ZERO,
        });
        let t1 = link.transfer(Direction::ToAccel, 1000);
        link.set_config(LinkConfig {
            bandwidth_bytes_per_sec: 2000.0,
            latency: Duration::ZERO,
        });
        let t2 = link.transfer(Direction::ToAccel, 1000);
        assert!(t2 < t1);
    }
}
