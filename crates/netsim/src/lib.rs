//! # idaa-netsim
//!
//! A metered, fault-injectable model of the z/OS ↔ accelerator network
//! link.
//!
//! The paper's headline claim is that accelerator-only tables *minimize
//! data movement* between DB2 and the accelerator. To make that claim
//! measurable and deterministic, every byte that crosses the federation
//! boundary in this reproduction goes through a [`NetLink`]: transfers are
//! counted per direction, and a virtual clock accumulates the time the
//! transfer would take on a link with configurable bandwidth and latency
//! (default: 10 GbE with 200 µs round-trip, roughly the IDAA appliance
//! attachment). Wall-clock time is never consumed — benchmarks report
//! compute (wall) and network (virtual) time separately and combined.
//!
//! ## Fault injection
//!
//! Real IDAA deployments survive accelerator outages; to reproduce that,
//! the link can be armed with a [`FaultPlan`]: seeded per-direction
//! drop/corrupt/delay probabilities, scheduled [`OutageWindow`]s keyed to
//! the virtual clock, and a "fail the next N transfers" hook for targeted
//! tests. [`NetLink::transfer`] returns `Result<Duration, LinkError>`, so
//! every caller must decide what a lost message means for its protocol.
//! All randomness comes from a splitmix64 stream owned by the link —
//! replaying the same plan against the same workload yields byte-identical
//! metrics. Retry backoff ([`RetryPolicy`]) is charged to the same virtual
//! clock via [`NetLink::advance`], never to wall time.

use idaa_common::{wire, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Transfer direction over the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// DB2 → accelerator (statements, load batches, replication).
    ToAccel,
    /// Accelerator → DB2 (result sets, acknowledgements).
    ToHost,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::ToAccel => write!(f, "host→accelerator"),
            Direction::ToHost => write!(f, "accelerator→host"),
        }
    }
}

/// Link parameters.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Payload bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// One-way message latency.
    pub latency: Duration,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // 10 GbE ≈ 1.25 GB/s payload, 100 µs one-way latency.
        LinkConfig {
            bandwidth_bytes_per_sec: 1.25e9,
            latency: Duration::from_micros(100),
        }
    }
}

impl LinkConfig {
    /// A deliberately slow link (useful to expose data-movement costs in
    /// examples: 100 MB/s, 1 ms latency).
    pub fn slow() -> LinkConfig {
        LinkConfig { bandwidth_bytes_per_sec: 1.0e8, latency: Duration::from_millis(1) }
    }
}

/// Per-direction fault probabilities applied to each transfer attempt.
///
/// Probabilities are evaluated in a fixed order (drop, corrupt, delay)
/// against a seeded random stream so a given `FaultPlan` seed reproduces
/// the exact same failure pattern — and therefore byte-identical
/// [`LinkMetrics`] — on replay.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FaultSpec {
    /// Probability the message is silently lost in flight.
    pub drop: f64,
    /// Probability the message arrives damaged (receiver discards it).
    pub corrupt: f64,
    /// Probability the message is delivered but late.
    pub delay: f64,
    /// Extra virtual time charged when a delay fires.
    pub delay_extra: Duration,
}

impl FaultSpec {
    /// Spec that only drops messages with probability `p`.
    pub fn dropping(p: f64) -> FaultSpec {
        FaultSpec { drop: p, ..FaultSpec::default() }
    }

    fn is_clean(&self) -> bool {
        self.drop <= 0.0 && self.corrupt <= 0.0 && self.delay <= 0.0
    }
}

/// A scheduled outage on the virtual clock: every transfer attempted while
/// `start <= link.now() < end` fails with [`LinkError::Outage`]. Because
/// retry backoff advances the same clock, a bounded retry loop can ride
/// out a short window — exactly how a real coordinator outlasts a failover
/// blip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    pub start: Duration,
    pub end: Duration,
}

impl OutageWindow {
    pub fn new(start: Duration, end: Duration) -> OutageWindow {
        OutageWindow { start, end }
    }

    fn contains(&self, t: Duration) -> bool {
        self.start <= t && t < self.end
    }
}

/// A deterministic schedule of link faults.
///
/// The default plan is clean: it injects nothing, draws no random numbers,
/// and leaves every successful-path metric identical to an unfaulted link.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the splitmix64 stream behind the probabilistic faults.
    pub seed: u64,
    /// Faults applied to host → accelerator messages.
    pub to_accel: FaultSpec,
    /// Faults applied to accelerator → host messages.
    pub to_host: FaultSpec,
    /// Scheduled outages on the virtual clock.
    pub outages: Vec<OutageWindow>,
}

impl FaultPlan {
    /// Plan that drops a fraction `p` of messages in both directions.
    pub fn dropping(seed: u64, p: f64) -> FaultPlan {
        FaultPlan {
            seed,
            to_accel: FaultSpec::dropping(p),
            to_host: FaultSpec::dropping(p),
            outages: Vec::new(),
        }
    }

    /// Plan with a single scheduled outage window and no random faults.
    pub fn outage(start: Duration, end: Duration) -> FaultPlan {
        FaultPlan { outages: vec![OutageWindow::new(start, end)], ..FaultPlan::default() }
    }

    /// True if this plan can never fault a transfer.
    pub fn is_clean(&self) -> bool {
        self.to_accel.is_clean() && self.to_host.is_clean() && self.outages.is_empty()
    }
}

/// Why a transfer failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkError {
    /// The message was lost in flight.
    Dropped { direction: Direction, bytes: usize },
    /// The message arrived damaged and was discarded by the receiver.
    Corrupted { direction: Direction, bytes: usize },
    /// The link is inside a scheduled outage window until `until`.
    Outage { until: Duration },
    /// An explicitly injected failure (`fail_next_transfers`).
    Injected { remaining: u64 },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Dropped { direction, bytes } => {
                write!(f, "message dropped ({bytes} bytes {direction})")
            }
            LinkError::Corrupted { direction, bytes } => {
                write!(f, "message corrupted ({bytes} bytes {direction})")
            }
            LinkError::Outage { until } => {
                write!(f, "link outage until t={:?} on the virtual clock", until)
            }
            LinkError::Injected { remaining } => {
                write!(f, "injected failure ({remaining} more scheduled)")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Accumulated link metrics.
///
/// `bytes_*`/`messages_*`/`wire_time` count only *delivered* messages, so
/// pre-existing byte-exact assertions hold regardless of faults; failed
/// attempts are tallied separately in `failures`/`fault_time`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkMetrics {
    pub bytes_to_accel: u64,
    pub bytes_to_host: u64,
    pub messages_to_accel: u64,
    pub messages_to_host: u64,
    /// Pre-encoding (logical) bytes represented by delivered host →
    /// accelerator messages. For control messages this equals the wire
    /// bytes; for encoded row frames ([`NetLink::transfer_frame`]) it is
    /// the frame's declared logical payload, so `bytes_*` vs.
    /// `logical_bytes_*` measures the wire codec's compression.
    pub logical_bytes_to_accel: u64,
    /// Pre-encoding (logical) bytes represented by delivered accelerator
    /// → host messages.
    pub logical_bytes_to_host: u64,
    /// Virtual time spent on the wire by delivered messages.
    pub wire_time: Duration,
    /// Transfer attempts that failed (dropped, corrupted, outage, injected).
    pub failures: u64,
    /// Virtual time consumed by failed attempts, injected delays, and
    /// retry backoff ([`NetLink::advance`]).
    pub fault_time: Duration,
}

impl LinkMetrics {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_to_accel + self.bytes_to_host
    }

    /// Total messages in either direction.
    pub fn total_messages(&self) -> u64 {
        self.messages_to_accel + self.messages_to_host
    }

    /// Total pre-encoding bytes represented by delivered messages.
    pub fn total_logical_bytes(&self) -> u64 {
        self.logical_bytes_to_accel + self.logical_bytes_to_host
    }

    /// Difference against an earlier snapshot of the same link.
    ///
    /// Saturating: if the link was `reset()` between snapshots the deltas
    /// clamp to zero instead of panicking on underflow.
    pub fn since(&self, earlier: &LinkMetrics) -> LinkMetrics {
        LinkMetrics {
            bytes_to_accel: self.bytes_to_accel.saturating_sub(earlier.bytes_to_accel),
            bytes_to_host: self.bytes_to_host.saturating_sub(earlier.bytes_to_host),
            messages_to_accel: self.messages_to_accel.saturating_sub(earlier.messages_to_accel),
            messages_to_host: self.messages_to_host.saturating_sub(earlier.messages_to_host),
            logical_bytes_to_accel: self
                .logical_bytes_to_accel
                .saturating_sub(earlier.logical_bytes_to_accel),
            logical_bytes_to_host: self
                .logical_bytes_to_host
                .saturating_sub(earlier.logical_bytes_to_host),
            wire_time: self.wire_time.saturating_sub(earlier.wire_time),
            failures: self.failures.saturating_sub(earlier.failures),
            fault_time: self.fault_time.saturating_sub(earlier.fault_time),
        }
    }

    /// Accumulate another link's counters into this snapshot (multi-link
    /// fleet totals). Every field adds, including `failures`/`fault_time`,
    /// so a fleet total reconciles exactly with the per-link metrics it
    /// was merged from.
    pub fn merge(&mut self, other: &LinkMetrics) {
        self.bytes_to_accel += other.bytes_to_accel;
        self.bytes_to_host += other.bytes_to_host;
        self.messages_to_accel += other.messages_to_accel;
        self.messages_to_host += other.messages_to_host;
        self.logical_bytes_to_accel += other.logical_bytes_to_accel;
        self.logical_bytes_to_host += other.logical_bytes_to_host;
        self.wire_time += other.wire_time;
        self.failures += other.failures;
        self.fault_time += other.fault_time;
    }

    /// Fold an iterator of per-link snapshots into one fleet total via
    /// [`LinkMetrics::merge`] — the only sanctioned way to sum traffic
    /// across a multi-accelerator topology (no hand-summed fields).
    pub fn merged<'a>(links: impl IntoIterator<Item = &'a LinkMetrics>) -> LinkMetrics {
        let mut total = LinkMetrics::default();
        for m in links {
            total.merge(m);
        }
        total
    }
}

#[derive(Debug, Default)]
struct FaultState {
    plan: FaultPlan,
    /// splitmix64 state; one stream per link keeps replays deterministic.
    rng: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` from the splitmix64 stream.
fn next_unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// The metered link.
#[derive(Debug)]
pub struct NetLink {
    config: Mutex<LinkConfig>,
    faults: Mutex<FaultState>,
    /// Countdown armed by `fail_next_transfers`.
    injected: AtomicU64,
    /// Healthy transfers to let through before `injected` starts firing
    /// (`fail_transfers_after`).
    inject_skip: AtomicU64,
    bytes_to_accel: AtomicU64,
    bytes_to_host: AtomicU64,
    messages_to_accel: AtomicU64,
    messages_to_host: AtomicU64,
    logical_bytes_to_accel: AtomicU64,
    logical_bytes_to_host: AtomicU64,
    wire_nanos: AtomicU64,
    failures: AtomicU64,
    fault_nanos: AtomicU64,
    /// Optional mirror of the delivered/failed counters into a shared
    /// [`MetricsRegistry`], with the counter-name prefix to mirror under
    /// (`link` for a single-accelerator topology, `link.nodeN` for the
    /// extra links of a fleet).
    registry: Mutex<Option<(Arc<MetricsRegistry>, String)>>,
}

impl Default for NetLink {
    fn default() -> Self {
        NetLink::new(LinkConfig::default())
    }
}

impl NetLink {
    /// Link with the given parameters and no faults armed.
    pub fn new(config: LinkConfig) -> NetLink {
        NetLink {
            config: Mutex::new(config),
            faults: Mutex::new(FaultState::default()),
            injected: AtomicU64::new(0),
            inject_skip: AtomicU64::new(0),
            bytes_to_accel: AtomicU64::new(0),
            bytes_to_host: AtomicU64::new(0),
            messages_to_accel: AtomicU64::new(0),
            messages_to_host: AtomicU64::new(0),
            logical_bytes_to_accel: AtomicU64::new(0),
            logical_bytes_to_host: AtomicU64::new(0),
            wire_nanos: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            fault_nanos: AtomicU64::new(0),
            registry: Mutex::new(None),
        }
    }

    /// Mirror every delivered transfer and failed attempt into `registry`
    /// as monotone `link.*` counters. By construction these reconcile with
    /// [`NetLink::metrics`] from the moment of installation.
    pub fn set_metrics(&self, registry: Arc<MetricsRegistry>) {
        self.set_metrics_prefixed(registry, "link");
    }

    /// [`NetLink::set_metrics`] under an explicit counter-name prefix —
    /// fleet topologies mirror each accelerator's link under its own
    /// prefix (`link.node1.*`, `link.node2.*`, …) so per-node counters
    /// reconcile with per-node [`NetLink::metrics`] exactly.
    pub fn set_metrics_prefixed(&self, registry: Arc<MetricsRegistry>, prefix: &str) {
        *self.registry.lock() = Some((registry, prefix.to_string()));
    }

    /// Change parameters mid-flight (experiments sweep these).
    pub fn set_config(&self, config: LinkConfig) {
        *self.config.lock() = config;
    }

    /// Arm a fault plan; the random stream is reseeded from `plan.seed`.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        let mut st = self.faults.lock();
        st.rng = plan.seed ^ 0x51ed_270b_9a3f_c42d;
        st.plan = plan;
    }

    /// Disarm all probabilistic faults and outage windows (explicitly
    /// injected `fail_next_transfers` counts are cleared too).
    pub fn clear_faults(&self) {
        *self.faults.lock() = FaultState::default();
        self.injected.store(0, Ordering::Relaxed);
        self.inject_skip.store(0, Ordering::Relaxed);
    }

    /// Fail the next `n` transfer attempts with [`LinkError::Injected`],
    /// regardless of direction or fault plan.
    pub fn fail_next_transfers(&self, n: u64) {
        self.injected.fetch_add(n, Ordering::Relaxed);
    }

    /// Let `skip` transfer attempts through untouched, then fail the `n`
    /// after that — pinpoints a specific protocol message (e.g. "lose the
    /// 2PC vote but deliver the PREPARE request").
    pub fn fail_transfers_after(&self, skip: u64, n: u64) {
        self.inject_skip.store(skip, Ordering::Relaxed);
        self.injected.fetch_add(n, Ordering::Relaxed);
    }

    /// Current virtual time: wire time of delivered messages plus fault
    /// and backoff time. Outage windows are positioned against this clock.
    pub fn now(&self) -> Duration {
        Duration::from_nanos(
            self.wire_nanos.load(Ordering::Relaxed) + self.fault_nanos.load(Ordering::Relaxed),
        )
    }

    /// Advance the virtual clock without touching the wire — this is how
    /// retry backoff "sleeps" without consuming wall time.
    pub fn advance(&self, d: Duration) {
        self.fault_nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    fn record_failure(&self, cost: Duration) {
        self.failures.fetch_add(1, Ordering::Relaxed);
        self.fault_nanos.fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
        if let Some((reg, prefix)) = self.registry.lock().as_ref() {
            reg.inc(&format!("{prefix}.failures"), 1);
        }
    }

    /// Attempt one control message of `bytes` payload in `direction`.
    ///
    /// On delivery, returns the virtual transfer time charged and updates
    /// the delivered-traffic counters (logical bytes equal wire bytes for
    /// control messages). On a fault, returns the [`LinkError`], charges
    /// the wasted attempt to `fault_time`, and leaves the
    /// delivered-traffic counters untouched.
    pub fn transfer(&self, direction: Direction, bytes: usize) -> Result<Duration, LinkError> {
        self.attempt(direction, bytes, bytes as u64, None)
    }

    /// Attempt one encoded row frame (see `idaa_common::wire`) in
    /// `direction`.
    ///
    /// The wire counters are charged the *encoded* frame length; the
    /// logical counters are charged the frame's declared pre-encoding
    /// payload. A `corrupt` fault damages one frame byte in flight and the
    /// receiving side's checksum verification rejects it — the error path
    /// is the checksum actually failing, not a fiat discard — which
    /// surfaces as [`LinkError::Corrupted`] to the retry machinery.
    pub fn transfer_frame(&self, direction: Direction, frame: &[u8]) -> Result<Duration, LinkError> {
        let logical = wire::frame_logical_len(frame).unwrap_or(frame.len() as u64);
        self.attempt(direction, frame.len(), logical, Some(frame))
    }

    fn attempt(
        &self,
        direction: Direction,
        bytes: usize,
        logical_bytes: u64,
        frame: Option<&[u8]>,
    ) -> Result<Duration, LinkError> {
        let (bandwidth, latency) = {
            let cfg = self.config.lock();
            (cfg.bandwidth_bytes_per_sec, cfg.latency)
        };
        let payload = Duration::from_secs_f64(bytes as f64 / bandwidth);

        // Explicitly injected failures take precedence over the plan; a
        // pending skip count shields this transfer from them.
        let skipped = self
            .inject_skip
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok();
        if !skipped
            && self
                .injected
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                .is_ok()
        {
            self.record_failure(latency);
            return Err(LinkError::Injected { remaining: self.injected.load(Ordering::Relaxed) });
        }

        let mut extra = Duration::ZERO;
        {
            let mut st = self.faults.lock();
            if !st.plan.is_clean() {
                let now = self.now();
                if let Some(w) = st.plan.outages.iter().find(|w| w.contains(now)) {
                    // During an outage nothing reaches the other side; the
                    // sender only wastes its send latency noticing.
                    let until = w.end;
                    drop(st);
                    self.record_failure(latency);
                    return Err(LinkError::Outage { until });
                }
                let spec = match direction {
                    Direction::ToAccel => st.plan.to_accel,
                    Direction::ToHost => st.plan.to_host,
                };
                if !spec.is_clean() {
                    // Fixed draw order (drop, corrupt, delay) keeps the
                    // stream — and the metrics — identical on replay.
                    let (d_drop, d_corrupt, d_delay) =
                        (next_unit(&mut st.rng), next_unit(&mut st.rng), next_unit(&mut st.rng));
                    // A firing corrupt fault on a frame consumes exactly
                    // one extra draw (the damaged bit position), keeping
                    // the stream replayable for a given seed and call
                    // sequence.
                    let damage = if d_drop >= spec.drop && d_corrupt < spec.corrupt {
                        frame.map(|_| splitmix64(&mut st.rng))
                    } else {
                        None
                    };
                    drop(st);
                    if d_drop < spec.drop {
                        // A dropped message still occupied the wire.
                        self.record_failure(latency + payload);
                        return Err(LinkError::Dropped { direction, bytes });
                    }
                    if d_corrupt < spec.corrupt {
                        if let (Some(frame), Some(damage)) = (frame, damage) {
                            if !frame.is_empty() {
                                let mut damaged = frame.to_vec();
                                let idx = (damage as usize) % damaged.len();
                                damaged[idx] ^= 1 << ((damage >> 32) & 7);
                                if wire::verify(&damaged) {
                                    // Damage the checksum cannot see (not
                                    // reachable for a single bit flip under
                                    // XXH64): the frame is delivered as-is
                                    // below rather than pretending the
                                    // receiver caught it.
                                    extra = Duration::ZERO;
                                } else {
                                    self.record_failure(latency + payload);
                                    return Err(LinkError::Corrupted { direction, bytes });
                                }
                            } else {
                                self.record_failure(latency + payload);
                                return Err(LinkError::Corrupted { direction, bytes });
                            }
                        } else {
                            // Control messages carry their own length-fixed
                            // CRC in the real protocol; model detection as
                            // certain.
                            self.record_failure(latency + payload);
                            return Err(LinkError::Corrupted { direction, bytes });
                        }
                    } else if d_delay < spec.delay {
                        extra = spec.delay_extra;
                    }
                }
            }
        }

        let cost = latency + payload + extra;
        match direction {
            Direction::ToAccel => {
                self.bytes_to_accel.fetch_add(bytes as u64, Ordering::Relaxed);
                self.messages_to_accel.fetch_add(1, Ordering::Relaxed);
                self.logical_bytes_to_accel.fetch_add(logical_bytes, Ordering::Relaxed);
            }
            Direction::ToHost => {
                self.bytes_to_host.fetch_add(bytes as u64, Ordering::Relaxed);
                self.messages_to_host.fetch_add(1, Ordering::Relaxed);
                self.logical_bytes_to_host.fetch_add(logical_bytes, Ordering::Relaxed);
            }
        }
        self.wire_nanos.fetch_add(cost.as_nanos() as u64, Ordering::Relaxed);
        if let Some((reg, prefix)) = self.registry.lock().as_ref() {
            let dir = match direction {
                Direction::ToAccel => "to_accel",
                Direction::ToHost => "to_host",
            };
            reg.inc(&format!("{prefix}.delivered.{dir}.bytes"), bytes as u64);
            reg.inc(&format!("{prefix}.delivered.{dir}.msgs"), 1);
        }
        Ok(cost)
    }

    /// Snapshot of the counters.
    pub fn metrics(&self) -> LinkMetrics {
        LinkMetrics {
            bytes_to_accel: self.bytes_to_accel.load(Ordering::Relaxed),
            bytes_to_host: self.bytes_to_host.load(Ordering::Relaxed),
            messages_to_accel: self.messages_to_accel.load(Ordering::Relaxed),
            messages_to_host: self.messages_to_host.load(Ordering::Relaxed),
            logical_bytes_to_accel: self.logical_bytes_to_accel.load(Ordering::Relaxed),
            logical_bytes_to_host: self.logical_bytes_to_host.load(Ordering::Relaxed),
            wire_time: Duration::from_nanos(self.wire_nanos.load(Ordering::Relaxed)),
            failures: self.failures.load(Ordering::Relaxed),
            fault_time: Duration::from_nanos(self.fault_nanos.load(Ordering::Relaxed)),
        }
    }

    /// Zero all counters (the fault plan and its random stream stay armed).
    pub fn reset(&self) {
        self.bytes_to_accel.store(0, Ordering::Relaxed);
        self.bytes_to_host.store(0, Ordering::Relaxed);
        self.messages_to_accel.store(0, Ordering::Relaxed);
        self.messages_to_host.store(0, Ordering::Relaxed);
        self.logical_bytes_to_accel.store(0, Ordering::Relaxed);
        self.logical_bytes_to_host.store(0, Ordering::Relaxed);
        self.wire_nanos.store(0, Ordering::Relaxed);
        self.failures.store(0, Ordering::Relaxed);
        self.fault_nanos.store(0, Ordering::Relaxed);
    }
}

/// Bounded retry with exponential backoff, charged entirely to the link's
/// virtual clock — a retry loop never sleeps on the wall clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Must be at least 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub backoff: Duration,
    /// Backoff multiplier between consecutive retries.
    pub multiplier: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, backoff: Duration::from_micros(500), multiplier: 2 }
    }
}

impl RetryPolicy {
    /// Policy that never retries (single attempt).
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, backoff: Duration::ZERO, multiplier: 1 }
    }

    /// Transfer with retry. Backoff advances the virtual clock between
    /// attempts, so a retry sequence can outlast a short scheduled outage
    /// window. Returns the cost of the delivered attempt, or the last
    /// error once attempts are exhausted.
    pub fn transfer(
        &self,
        link: &NetLink,
        direction: Direction,
        bytes: usize,
    ) -> Result<Duration, LinkError> {
        self.run(link, || link.transfer(direction, bytes))
    }

    /// [`NetLink::transfer_frame`] with the same retry/backoff behavior as
    /// [`RetryPolicy::transfer`]. Each attempt re-sends the frame, so a
    /// checksum-rejected ([`LinkError::Corrupted`]) attempt is recovered by
    /// a clean retransmission.
    pub fn transfer_frame(
        &self,
        link: &NetLink,
        direction: Direction,
        frame: &[u8],
    ) -> Result<Duration, LinkError> {
        self.run(link, || link.transfer_frame(direction, frame))
    }

    fn run(
        &self,
        link: &NetLink,
        mut attempt_once: impl FnMut() -> Result<Duration, LinkError>,
    ) -> Result<Duration, LinkError> {
        let attempts = self.max_attempts.max(1);
        let mut wait = self.backoff;
        let mut attempt = 1;
        loop {
            match attempt_once() {
                Ok(cost) => return Ok(cost),
                Err(e) => {
                    if attempt >= attempts {
                        return Err(e);
                    }
                    link.advance(wait);
                    wait = wait.saturating_mul(self.multiplier);
                    attempt += 1;
                }
            }
        }
    }
}

/// Well-known failure-injection site names used across the workspace.
///
/// A site names the *place in the protocol* where a [`FaultRegistry`] can
/// fire — component code calls `registry.fire(site)` at these points, and
/// plans/tests refer to the same constants. Keeping them here (next to the
/// fault machinery) means every crate injects through one vocabulary.
pub mod sites {
    /// Accelerator crash after bulk-load rows are ingested but before the
    /// internal load transaction commits.
    pub const MID_BULK_LOAD: &str = "accel.bulk_load.mid";
    /// Accelerator crash after a transaction's PREPARE is durably logged
    /// but before the coordinator's phase-2 COMMIT arrives — the classic
    /// in-doubt window.
    pub const POST_PREPARE: &str = "accel.prepare.post";
    /// Accelerator crash while applying a replication batch (after begin,
    /// before the apply transaction prepares).
    pub const MID_REPL_APPLY: &str = "accel.replication.apply.mid";
    /// Accelerator crash in the middle of writing a checkpoint, before the
    /// new checkpoint is atomically installed.
    pub const MID_CHECKPOINT: &str = "accel.checkpoint.mid";
    /// Coordinator-side injection: the accelerator's PREPARE vote comes
    /// back NO (no crash; replaces the old `fail_next_prepare` hook).
    pub const PREPARE_VOTE_NO: &str = "coord.prepare.vote_no";
    /// Accelerator crash while serving its partial of a scattered fleet
    /// query — after the shard request was delivered, before the partial
    /// result is produced. The coordinator fails the shard over to a
    /// replica.
    pub const MID_SCATTER: &str = "accel.scatter.mid";
    /// Storage fault: the in-flight commit-log append tears — the record's
    /// tail is lost mid-write and the node crashes. Recovery must truncate
    /// the torn record (it was never acknowledged).
    pub const TORN_LOG_APPEND: &str = "disk.log.append.torn";
    /// Storage fault: the node crashes in the middle of writing a new
    /// checkpoint, leaving a torn checkpoint image on disk. The previous
    /// checkpoint must stay authoritative.
    pub const TORN_CHECKPOINT: &str = "disk.checkpoint.torn";
    /// Storage fault: silent bit-rot flips a bit in an already-written
    /// commit-log record (segment chosen by the firing's parameter draw).
    pub const BITROT_LOG_SEGMENT: &str = "disk.log.segment.bitrot";
    /// Storage fault: silent bit-rot flips a bit in an already-written
    /// checkpoint image.
    pub const BITROT_CHECKPOINT: &str = "disk.checkpoint.bitrot";
    /// Storage fault: a recovery-time disk read fails transiently. The
    /// restart attempt errors and must be retried.
    pub const DISK_READ_FAIL: &str = "disk.read.fail";
}

/// Per-site crash/failure schedule inside a [`CrashPlan`].
///
/// A site fires on the listed 1-based `at_hits` (deterministic pinning for
/// targeted tests) and additionally with `probability` per hit, drawn from
/// the plan's seeded stream (for randomized chaos sweeps). Both can be
/// combined; the deterministic check is evaluated first and consumes no
/// random draw, so pinned hits never perturb the stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteSpec {
    /// Site name (see [`sites`]).
    pub site: String,
    /// Probability that any given hit fires, drawn from the seeded stream.
    pub probability: f64,
    /// Hit counts (1-based, per site) that fire unconditionally.
    pub at_hits: Vec<u64>,
}

/// A deterministic schedule of crash/failure points, the [`FaultPlan`]
/// analogue for *process* failures rather than link failures.
///
/// Same determinism contract: probabilistic draws come from one splitmix64
/// stream seeded by `seed` and are consumed in hit order, so a given seed
/// replays the exact same firing pattern. Sites with `probability == 0`
/// draw nothing, so the default plan is clean and free. Firing never
/// touches [`LinkMetrics`] — what a firing *means* (crash, NO vote, …) is
/// up to the component that called [`FaultRegistry::fire`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CrashPlan {
    /// Seed for the splitmix64 stream behind probabilistic firings.
    pub seed: u64,
    /// Per-site schedules; sites not listed never fire.
    pub sites: Vec<SiteSpec>,
}

impl CrashPlan {
    /// Plan that fires `site` exactly once, on its `hit`-th (1-based) hit.
    pub fn at(site: &str, hit: u64) -> CrashPlan {
        CrashPlan::default().and_at(site, hit)
    }

    /// Add a deterministic firing of `site` on its `hit`-th hit.
    pub fn and_at(mut self, site: &str, hit: u64) -> CrashPlan {
        if let Some(s) = self.sites.iter_mut().find(|s| s.site == site) {
            s.at_hits.push(hit);
        } else {
            self.sites.push(SiteSpec {
                site: site.to_string(),
                probability: 0.0,
                at_hits: vec![hit],
            });
        }
        self
    }

    /// Add a probabilistic firing of `site` with probability `p` per hit.
    pub fn and_probabilistic(mut self, site: &str, p: f64) -> CrashPlan {
        if let Some(s) = self.sites.iter_mut().find(|s| s.site == site) {
            s.probability = p;
        } else {
            self.sites.push(SiteSpec {
                site: site.to_string(),
                probability: p,
                at_hits: Vec::new(),
            });
        }
        self
    }

    /// Plan seed builder (relevant only with probabilistic sites).
    pub fn seeded(mut self, seed: u64) -> CrashPlan {
        self.seed = seed;
        self
    }

    /// True if this plan can never fire.
    pub fn is_clean(&self) -> bool {
        self.sites.iter().all(|s| s.probability <= 0.0 && s.at_hits.is_empty())
    }
}

/// A deterministic schedule of *storage* faults (torn writes, bit-rot,
/// failed reads) — the durable-disk analogue of [`CrashPlan`].
///
/// Same determinism contract: probabilistic draws and per-firing corruption
/// parameters come from one splitmix64 stream seeded by `seed` (separate
/// from the crash-plan stream, so mixing disk and crash plans never
/// perturbs either schedule). Sites fire via [`FaultRegistry::fire_disk`],
/// which returns a parameter draw the durable store uses to pick *which*
/// segment/bit to damage — so a given seed replays the exact same
/// corruption pattern. Firing never touches [`LinkMetrics`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiskFaultPlan {
    /// Seed for the splitmix64 stream behind probabilistic firings and
    /// per-firing corruption parameters.
    pub seed: u64,
    /// Per-site schedules; sites not listed never fire.
    pub sites: Vec<SiteSpec>,
}

impl DiskFaultPlan {
    /// Plan that fires `site` exactly once, on its `hit`-th (1-based) hit.
    pub fn at(site: &str, hit: u64) -> DiskFaultPlan {
        DiskFaultPlan::default().and_at(site, hit)
    }

    /// Add a deterministic firing of `site` on its `hit`-th hit.
    pub fn and_at(mut self, site: &str, hit: u64) -> DiskFaultPlan {
        if let Some(s) = self.sites.iter_mut().find(|s| s.site == site) {
            s.at_hits.push(hit);
        } else {
            self.sites.push(SiteSpec {
                site: site.to_string(),
                probability: 0.0,
                at_hits: vec![hit],
            });
        }
        self
    }

    /// Add a probabilistic firing of `site` with probability `p` per hit.
    pub fn and_probabilistic(mut self, site: &str, p: f64) -> DiskFaultPlan {
        if let Some(s) = self.sites.iter_mut().find(|s| s.site == site) {
            s.probability = p;
        } else {
            self.sites.push(SiteSpec {
                site: site.to_string(),
                probability: p,
                at_hits: Vec::new(),
            });
        }
        self
    }

    /// Plan seed builder (relevant with probabilistic sites, and for the
    /// per-firing corruption parameter draws).
    pub fn seeded(mut self, seed: u64) -> DiskFaultPlan {
        self.seed = seed;
        self
    }

    /// True if this plan can never fire.
    pub fn is_clean(&self) -> bool {
        self.sites.iter().all(|s| s.probability <= 0.0 && s.at_hits.is_empty())
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    plan: CrashPlan,
    /// splitmix64 state for probabilistic sites.
    rng: u64,
    /// Per-site hit counters (how many times `fire` was consulted).
    hits: HashMap<String, u64>,
    /// One-shot armings from [`FaultRegistry::arm`], per site.
    armed: HashMap<String, u64>,
    /// Log of firings as `(site, hit)` pairs, in firing order.
    fired: Vec<(String, u64)>,
    /// Storage-fault schedule consulted by [`FaultRegistry::fire_disk`].
    disk_plan: DiskFaultPlan,
    /// splitmix64 state for disk-site probabilities *and* the per-firing
    /// corruption parameter draws (independent of `rng`).
    disk_rng: u64,
    /// Per-site hit counters for disk sites (independent of `hits`, so
    /// installing one plan never restarts the other's counters).
    disk_hits: HashMap<String, u64>,
}

/// The unified failure-injection registry: every "make X fail next time"
/// hook in the workspace flows through here instead of ad-hoc
/// `AtomicBool`s, so all injection is seeded, replayable, and observable
/// in one place.
///
/// Component code marks its injectable points with [`FaultRegistry::fire`]
/// and reacts when it returns true. Tests either [`arm`](Self::arm) a
/// one-shot failure or install a [`CrashPlan`] for seeded schedules. The
/// registry never touches the link or its metrics.
#[derive(Debug, Default)]
pub struct FaultRegistry {
    inner: Mutex<RegistryInner>,
}

impl FaultRegistry {
    /// Install a crash plan; the random stream is reseeded from
    /// `plan.seed` and all per-site hit counters restart from zero.
    pub fn set_plan(&self, plan: CrashPlan) {
        let mut inner = self.inner.lock();
        inner.rng = plan.seed ^ 0x6c8e_9cf5_7093_1e4b;
        inner.plan = plan;
        inner.hits.clear();
        inner.fired.clear();
    }

    /// Arm `site` to fire on its next `n` hits, independent of any plan.
    /// This is the targeted-test hook (the `fail_next_transfers` analogue).
    pub fn arm(&self, site: &str, n: u64) {
        *self.inner.lock().armed.entry(site.to_string()).or_insert(0) += n;
    }

    /// Consult the registry at `site`: increments the site's hit counter
    /// and returns true if an armed one-shot or the installed plan says
    /// this hit fails. Deterministic checks (armed counts, pinned
    /// `at_hits`) consume no random draw; a probabilistic site draws
    /// exactly one number per hit whether or not it fires.
    pub fn fire(&self, site: &str) -> bool {
        let mut inner = self.inner.lock();
        let hit = {
            let h = inner.hits.entry(site.to_string()).or_insert(0);
            *h += 1;
            *h
        };
        let mut fired = false;
        if let Some(n) = inner.armed.get_mut(site) {
            if *n > 0 {
                *n -= 1;
                fired = true;
            }
        }
        if !fired {
            if let Some(spec) =
                inner.plan.sites.iter().find(|s| s.site == site).cloned()
            {
                if spec.at_hits.contains(&hit) {
                    fired = true;
                } else if spec.probability > 0.0 {
                    fired = next_unit(&mut inner.rng) < spec.probability;
                }
            }
        }
        if fired {
            inner.fired.push((site.to_string(), hit));
        }
        fired
    }

    /// Install a storage-fault plan; the disk random stream is reseeded
    /// from `plan.seed` and all disk-site hit counters restart from zero.
    /// The crash plan, its stream, and its counters are untouched.
    pub fn set_disk_plan(&self, plan: DiskFaultPlan) {
        let mut inner = self.inner.lock();
        inner.disk_rng = plan.seed ^ 0x9e37_79b9_7f4a_7c15;
        inner.disk_plan = plan;
        inner.disk_hits.clear();
    }

    /// Consult the registry at a *disk* `site` (see the `disk.*` constants
    /// in [`sites`]). Same contract as [`fire`](Self::fire) — armed
    /// one-shots and pinned `at_hits` consume no probability draw — except
    /// that a firing additionally draws one u64 *corruption parameter* from
    /// the disk stream and returns it: the durable store uses it to pick
    /// which segment/bit to damage, so a given seed replays the exact same
    /// corruption pattern. Returns `None` when the site does not fire.
    pub fn fire_disk(&self, site: &str) -> Option<u64> {
        let mut inner = self.inner.lock();
        let hit = {
            let h = inner.disk_hits.entry(site.to_string()).or_insert(0);
            *h += 1;
            *h
        };
        let mut fired = false;
        if let Some(n) = inner.armed.get_mut(site) {
            if *n > 0 {
                *n -= 1;
                fired = true;
            }
        }
        if !fired {
            if let Some(spec) =
                inner.disk_plan.sites.iter().find(|s| s.site == site).cloned()
            {
                if spec.at_hits.contains(&hit) {
                    fired = true;
                } else if spec.probability > 0.0 {
                    fired = next_unit(&mut inner.disk_rng) < spec.probability;
                }
            }
        }
        if fired {
            inner.fired.push((site.to_string(), hit));
            Some(splitmix64(&mut inner.disk_rng))
        } else {
            None
        }
    }

    /// How many times `site` has been consulted since the last
    /// [`set_plan`](Self::set_plan)/[`clear`](Self::clear).
    pub fn hits(&self, site: &str) -> u64 {
        self.inner.lock().hits.get(site).copied().unwrap_or(0)
    }

    /// How many times disk `site` has been consulted since the last
    /// [`set_disk_plan`](Self::set_disk_plan)/[`clear`](Self::clear).
    pub fn disk_hits(&self, site: &str) -> u64 {
        self.inner.lock().disk_hits.get(site).copied().unwrap_or(0)
    }

    /// Firing log as `(site, hit)` pairs, in firing order.
    pub fn fired(&self) -> Vec<(String, u64)> {
        self.inner.lock().fired.clone()
    }

    /// Disarm everything: plan, one-shot armings, counters, and log.
    pub fn clear(&self) {
        *self.inner.lock() = RegistryInner::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_accumulates_both_directions() {
        let link = NetLink::default();
        link.transfer(Direction::ToAccel, 1000).unwrap();
        link.transfer(Direction::ToAccel, 500).unwrap();
        link.transfer(Direction::ToHost, 200).unwrap();
        let m = link.metrics();
        assert_eq!(m.bytes_to_accel, 1500);
        assert_eq!(m.bytes_to_host, 200);
        assert_eq!(m.messages_to_accel, 2);
        assert_eq!(m.messages_to_host, 1);
        assert_eq!(m.total_bytes(), 1700);
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.failures, 0);
        assert_eq!(m.fault_time, Duration::ZERO);
    }

    #[test]
    fn wire_time_scales_with_bytes_and_latency() {
        let link = NetLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1000.0,
            latency: Duration::from_millis(1),
        });
        let t = link.transfer(Direction::ToAccel, 1000).unwrap();
        // 1 ms latency + 1 s payload.
        assert_eq!(t, Duration::from_millis(1001));
        let t2 = link.transfer(Direction::ToAccel, 0).unwrap();
        assert_eq!(t2, Duration::from_millis(1), "empty message still pays latency");
        assert_eq!(link.metrics().wire_time, Duration::from_millis(1002));
    }

    #[test]
    fn since_computes_deltas() {
        let link = NetLink::default();
        link.transfer(Direction::ToAccel, 100).unwrap();
        let before = link.metrics();
        link.transfer(Direction::ToAccel, 50).unwrap();
        link.transfer(Direction::ToHost, 10).unwrap();
        let delta = link.metrics().since(&before);
        assert_eq!(delta.bytes_to_accel, 50);
        assert_eq!(delta.bytes_to_host, 10);
        assert_eq!(delta.messages_to_accel, 1);
    }

    #[test]
    fn merge_accumulates_every_field() {
        let a = NetLink::default();
        let b = NetLink::default();
        a.transfer(Direction::ToAccel, 100).unwrap();
        b.transfer(Direction::ToAccel, 40).unwrap();
        b.transfer(Direction::ToHost, 10).unwrap();
        b.fail_next_transfers(1);
        let _ = b.transfer(Direction::ToHost, 5);
        let total = LinkMetrics::merged([&a.metrics(), &b.metrics()]);
        assert_eq!(total.bytes_to_accel, 140);
        assert_eq!(total.bytes_to_host, 10);
        assert_eq!(total.messages_to_accel, 2);
        assert_eq!(total.messages_to_host, 1);
        assert_eq!(total.failures, 1);
        assert_eq!(
            total.wire_time,
            a.metrics().wire_time + b.metrics().wire_time
        );
    }

    #[test]
    fn since_saturates_after_reset() {
        let link = NetLink::default();
        link.transfer(Direction::ToAccel, 100).unwrap();
        let before = link.metrics();
        link.reset();
        link.transfer(Direction::ToHost, 10).unwrap();
        // The link went backwards between snapshots; deltas clamp to zero
        // instead of panicking on unsigned underflow.
        let delta = link.metrics().since(&before);
        assert_eq!(delta.bytes_to_accel, 0);
        assert_eq!(delta.wire_time, Duration::ZERO);
        assert_eq!(delta.bytes_to_host, 10);
    }

    #[test]
    fn reset_zeroes() {
        let link = NetLink::default();
        link.transfer(Direction::ToHost, 10).unwrap();
        link.reset();
        assert_eq!(link.metrics(), LinkMetrics::default());
    }

    #[test]
    fn reconfiguration_applies_to_later_transfers() {
        let link = NetLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1000.0,
            latency: Duration::ZERO,
        });
        let t1 = link.transfer(Direction::ToAccel, 1000).unwrap();
        link.set_config(LinkConfig {
            bandwidth_bytes_per_sec: 2000.0,
            latency: Duration::ZERO,
        });
        let t2 = link.transfer(Direction::ToAccel, 1000).unwrap();
        assert!(t2 < t1);
    }

    #[test]
    fn clean_plan_never_faults_and_draws_nothing() {
        let link = NetLink::default();
        link.set_fault_plan(FaultPlan::default());
        for _ in 0..100 {
            link.transfer(Direction::ToAccel, 64).unwrap();
        }
        let m = link.metrics();
        assert_eq!(m.failures, 0);
        assert_eq!(m.fault_time, Duration::ZERO);
        assert_eq!(m.messages_to_accel, 100);
    }

    #[test]
    fn fail_next_transfers_fails_exactly_n() {
        let link = NetLink::default();
        link.fail_next_transfers(2);
        assert!(matches!(
            link.transfer(Direction::ToAccel, 10),
            Err(LinkError::Injected { remaining: 1 })
        ));
        assert!(matches!(
            link.transfer(Direction::ToHost, 10),
            Err(LinkError::Injected { remaining: 0 })
        ));
        link.transfer(Direction::ToAccel, 10).unwrap();
        let m = link.metrics();
        assert_eq!(m.failures, 2);
        assert_eq!(m.messages_to_accel, 1);
        assert_eq!(m.bytes_to_accel, 10, "failed attempts do not count as delivered");
    }

    #[test]
    fn fail_transfers_after_skips_then_fails() {
        let link = NetLink::default();
        link.fail_transfers_after(2, 1);
        link.transfer(Direction::ToAccel, 10).unwrap();
        link.transfer(Direction::ToHost, 10).unwrap();
        assert!(link.transfer(Direction::ToAccel, 10).is_err());
        link.transfer(Direction::ToAccel, 10).unwrap();
    }

    #[test]
    fn outage_window_blocks_until_clock_passes() {
        let link = NetLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1.0e9,
            latency: Duration::from_millis(1),
        });
        link.set_fault_plan(FaultPlan::outage(Duration::ZERO, Duration::from_millis(5)));
        let err = link.transfer(Direction::ToAccel, 100).unwrap_err();
        assert_eq!(err, LinkError::Outage { until: Duration::from_millis(5) });
        // Ride the clock past the window; transfers succeed again.
        link.advance(Duration::from_millis(10));
        link.transfer(Direction::ToAccel, 100).unwrap();
        assert_eq!(link.metrics().failures, 1);
    }

    #[test]
    fn drop_probability_one_loses_everything_and_charges_fault_time() {
        let link = NetLink::default();
        link.set_fault_plan(FaultPlan::dropping(7, 1.0));
        for _ in 0..5 {
            assert!(matches!(
                link.transfer(Direction::ToAccel, 100),
                Err(LinkError::Dropped { direction: Direction::ToAccel, bytes: 100 })
            ));
        }
        let m = link.metrics();
        assert_eq!(m.failures, 5);
        assert_eq!(m.total_bytes(), 0);
        assert!(m.fault_time > Duration::ZERO, "dropped messages still burned wire time");
        assert_eq!(m.wire_time, Duration::ZERO);
    }

    #[test]
    fn same_seed_replays_identical_fault_pattern() {
        let run = |seed: u64| {
            let link = NetLink::default();
            link.set_fault_plan(FaultPlan::dropping(seed, 0.3));
            let outcomes: Vec<bool> = (0..200)
                .map(|i| {
                    let dir = if i % 3 == 0 { Direction::ToHost } else { Direction::ToAccel };
                    link.transfer(dir, 64 + i).is_ok()
                })
                .collect();
            (outcomes, link.metrics())
        };
        let (o1, m1) = run(42);
        let (o2, m2) = run(42);
        assert_eq!(o1, o2);
        assert_eq!(m1, m2, "replaying a seed must yield byte-identical metrics");
        let (o3, _) = run(43);
        assert_ne!(o1, o3, "a different seed should fault differently");
    }

    #[test]
    fn delay_fault_charges_extra_time_but_delivers() {
        let link = NetLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1.0e9,
            latency: Duration::from_micros(100),
        });
        link.set_fault_plan(FaultPlan {
            seed: 1,
            to_accel: FaultSpec {
                delay: 1.0,
                delay_extra: Duration::from_millis(3),
                ..FaultSpec::default()
            },
            ..FaultPlan::default()
        });
        let cost = link.transfer(Direction::ToAccel, 0).unwrap();
        assert_eq!(cost, Duration::from_micros(100) + Duration::from_millis(3));
        assert_eq!(link.metrics().messages_to_accel, 1);
        assert_eq!(link.metrics().failures, 0);
    }

    #[test]
    fn retry_rides_out_injected_failures() {
        let link = NetLink::default();
        link.fail_next_transfers(2);
        let policy = RetryPolicy::default();
        policy.transfer(&link, Direction::ToAccel, 50).unwrap();
        let m = link.metrics();
        assert_eq!(m.failures, 2);
        assert_eq!(m.messages_to_accel, 1);
        // Two backoffs elapsed on the virtual clock: 500 µs + 1 ms.
        assert!(m.fault_time >= Duration::from_micros(1500));
    }

    #[test]
    fn retry_exhausts_and_reports_last_error() {
        let link = NetLink::default();
        link.set_fault_plan(FaultPlan::dropping(3, 1.0));
        let policy = RetryPolicy::default();
        let err = policy.transfer(&link, Direction::ToHost, 9).unwrap_err();
        assert!(matches!(err, LinkError::Dropped { direction: Direction::ToHost, bytes: 9 }));
        assert_eq!(link.metrics().failures, u64::from(policy.max_attempts));
    }

    fn sample_frame() -> Vec<u8> {
        use idaa_common::schema::{ColumnDef, Schema};
        use idaa_common::value::Value;
        use idaa_common::DataType;
        let schema = Schema::new_unchecked(vec![
            ColumnDef::new("K", DataType::BigInt),
            ColumnDef::new("V", DataType::Varchar(20)),
        ]);
        let rows: Vec<Vec<Value>> = (0..100)
            .map(|i| vec![Value::BigInt(i), Value::Varchar(format!("row{}", i % 4))])
            .collect();
        wire::encode_frame(&schema, &rows)
    }

    #[test]
    fn frame_transfer_charges_wire_and_logical_bytes() {
        let link = NetLink::default();
        let frame = sample_frame();
        let logical = wire::frame_logical_len(&frame).unwrap();
        assert!(logical > frame.len() as u64, "sample frame must compress");
        link.transfer_frame(Direction::ToAccel, &frame).unwrap();
        let m = link.metrics();
        assert_eq!(m.bytes_to_accel, frame.len() as u64);
        assert_eq!(m.logical_bytes_to_accel, logical);
        assert_eq!(m.messages_to_accel, 1);
        // Control transfers count the same bytes on both ledgers.
        link.transfer(Direction::ToHost, 32).unwrap();
        let m = link.metrics();
        assert_eq!(m.bytes_to_host, 32);
        assert_eq!(m.logical_bytes_to_host, 32);
        assert_eq!(m.total_logical_bytes(), logical + 32);
    }

    #[test]
    fn corrupt_fault_on_frame_is_caught_by_checksum_and_retried() {
        let link = NetLink::default();
        link.set_fault_plan(FaultPlan {
            seed: 11,
            to_accel: FaultSpec { corrupt: 1.0, ..FaultSpec::default() },
            ..FaultPlan::default()
        });
        let frame = sample_frame();
        let err = link.transfer_frame(Direction::ToAccel, &frame).unwrap_err();
        assert!(matches!(err, LinkError::Corrupted { direction: Direction::ToAccel, .. }));
        let m = link.metrics();
        assert_eq!(m.failures, 1);
        assert_eq!(m.bytes_to_accel, 0, "a rejected frame is not delivered traffic");
        assert_eq!(m.logical_bytes_to_accel, 0);

        // With an intermittent corruptor, the retry loop converges and only
        // the delivered attempt lands on the traffic ledgers.
        link.clear_faults();
        link.set_fault_plan(FaultPlan {
            seed: 11,
            to_accel: FaultSpec { corrupt: 0.5, ..FaultSpec::default() },
            ..FaultPlan::default()
        });
        link.reset();
        let mut delivered = 0;
        while delivered < 20 {
            // A 50% corruptor can exhaust a whole retry budget; keep
            // resending, as a statement-level caller would.
            if RetryPolicy::default().transfer_frame(&link, Direction::ToAccel, &frame).is_ok() {
                delivered += 1;
            }
        }
        let m = link.metrics();
        assert_eq!(m.messages_to_accel, 20);
        assert_eq!(m.bytes_to_accel, 20 * frame.len() as u64);
        assert!(m.failures > 0, "a 50% corruptor must have fired at least once in 20 sends");
    }

    #[test]
    fn corrupt_frame_faults_replay_byte_identically() {
        let run = |seed: u64| {
            let link = NetLink::default();
            link.set_fault_plan(FaultPlan {
                seed,
                to_accel: FaultSpec { corrupt: 0.3, ..FaultSpec::default() },
                to_host: FaultSpec { corrupt: 0.3, ..FaultSpec::default() },
                ..FaultPlan::default()
            });
            let frame = sample_frame();
            let outcomes: Vec<bool> = (0..100)
                .map(|i| {
                    let dir = if i % 3 == 0 { Direction::ToHost } else { Direction::ToAccel };
                    link.transfer_frame(dir, &frame).is_ok()
                })
                .collect();
            (outcomes, link.metrics())
        };
        let (o1, m1) = run(9);
        let (o2, m2) = run(9);
        assert_eq!(o1, o2);
        assert_eq!(m1, m2);
    }

    #[test]
    fn retry_backoff_outlasts_short_outage() {
        let link = NetLink::new(LinkConfig {
            bandwidth_bytes_per_sec: 1.0e9,
            latency: Duration::from_micros(100),
        });
        link.set_fault_plan(FaultPlan::outage(Duration::ZERO, Duration::from_micros(800)));
        // Default policy backs off 500 µs then 1 ms — the clock passes the
        // 800 µs window boundary before attempts run out.
        RetryPolicy::default().transfer(&link, Direction::ToAccel, 10).unwrap();
        assert!(link.metrics().messages_to_accel == 1);
    }

    #[test]
    fn registry_armed_one_shot_fires_exactly_n() {
        let reg = FaultRegistry::default();
        assert!(!reg.fire(sites::POST_PREPARE), "nothing armed yet");
        reg.arm(sites::POST_PREPARE, 2);
        assert!(reg.fire(sites::POST_PREPARE));
        assert!(!reg.fire(sites::MID_BULK_LOAD), "other sites unaffected");
        assert!(reg.fire(sites::POST_PREPARE));
        assert!(!reg.fire(sites::POST_PREPARE), "arming exhausted");
        assert_eq!(reg.hits(sites::POST_PREPARE), 4);
        assert_eq!(
            reg.fired(),
            vec![(sites::POST_PREPARE.to_string(), 2), (sites::POST_PREPARE.to_string(), 3)]
        );
    }

    #[test]
    fn registry_pinned_hit_fires_deterministically() {
        let reg = FaultRegistry::default();
        reg.set_plan(CrashPlan::at(sites::MID_REPL_APPLY, 3));
        assert!(!reg.fire(sites::MID_REPL_APPLY));
        assert!(!reg.fire(sites::MID_REPL_APPLY));
        assert!(reg.fire(sites::MID_REPL_APPLY), "third hit fires");
        assert!(!reg.fire(sites::MID_REPL_APPLY));
        // Reinstalling the plan restarts the hit counters.
        reg.set_plan(CrashPlan::at(sites::MID_REPL_APPLY, 1));
        assert!(reg.fire(sites::MID_REPL_APPLY));
    }

    #[test]
    fn registry_probabilistic_sites_replay_per_seed() {
        let run = |seed: u64| {
            let reg = FaultRegistry::default();
            reg.set_plan(
                CrashPlan::default()
                    .seeded(seed)
                    .and_probabilistic(sites::MID_BULK_LOAD, 0.3)
                    // A pinned-only site must not perturb the stream.
                    .and_at(sites::MID_CHECKPOINT, 2),
            );
            let mut outcomes = Vec::new();
            for i in 0..100 {
                outcomes.push(reg.fire(sites::MID_BULK_LOAD));
                if i % 5 == 0 {
                    outcomes.push(reg.fire(sites::MID_CHECKPOINT));
                }
            }
            outcomes
        };
        assert_eq!(run(17), run(17), "same seed replays the same firings");
        assert_ne!(run(17), run(18), "a different seed fires differently");
    }

    #[test]
    fn registry_clear_disarms_everything() {
        let reg = FaultRegistry::default();
        reg.arm(sites::PREPARE_VOTE_NO, 5);
        reg.set_plan(CrashPlan::at(sites::POST_PREPARE, 1));
        reg.set_disk_plan(DiskFaultPlan::at(sites::BITROT_LOG_SEGMENT, 1));
        reg.clear();
        assert!(!reg.fire(sites::PREPARE_VOTE_NO));
        assert!(!reg.fire(sites::POST_PREPARE));
        assert!(reg.fire_disk(sites::BITROT_LOG_SEGMENT).is_none());
        assert!(reg.fired().is_empty());
    }

    #[test]
    fn registry_disk_pinned_hits_fire_with_deterministic_params() {
        let run = || {
            let reg = FaultRegistry::default();
            reg.set_disk_plan(
                DiskFaultPlan::at(sites::TORN_LOG_APPEND, 2)
                    .and_at(sites::BITROT_CHECKPOINT, 1)
                    .seeded(0xD15C),
            );
            let mut draws = Vec::new();
            for _ in 0..4 {
                draws.push(reg.fire_disk(sites::TORN_LOG_APPEND));
                draws.push(reg.fire_disk(sites::BITROT_CHECKPOINT));
            }
            (draws, reg.fired())
        };
        let (draws, fired) = run();
        assert!(draws[0].is_none(), "first torn-append hit clean");
        assert!(draws[1].is_some(), "first bitrot hit fires");
        assert!(draws[2].is_some(), "second torn-append hit fires");
        assert!(draws[3..].iter().all(Option::is_none), "one-shot pins");
        assert_eq!(
            fired,
            vec![
                (sites::BITROT_CHECKPOINT.to_string(), 1),
                (sites::TORN_LOG_APPEND.to_string(), 2)
            ]
        );
        assert_eq!(run(), (draws, fired), "same seed replays params exactly");
    }

    #[test]
    fn registry_disk_plan_is_independent_of_crash_plan() {
        let reg = FaultRegistry::default();
        reg.set_plan(
            CrashPlan::default().seeded(7).and_probabilistic(sites::MID_BULK_LOAD, 0.5),
        );
        reg.set_disk_plan(
            DiskFaultPlan::default()
                .seeded(7)
                .and_probabilistic(sites::BITROT_LOG_SEGMENT, 0.5),
        );
        let crash_only: Vec<bool> = (0..50).map(|_| reg.fire(sites::MID_BULK_LOAD)).collect();

        // Interleaving disk firings must not perturb the crash stream.
        let reg2 = FaultRegistry::default();
        reg2.set_plan(
            CrashPlan::default().seeded(7).and_probabilistic(sites::MID_BULK_LOAD, 0.5),
        );
        reg2.set_disk_plan(
            DiskFaultPlan::default()
                .seeded(7)
                .and_probabilistic(sites::BITROT_LOG_SEGMENT, 0.5),
        );
        let interleaved: Vec<bool> = (0..50)
            .map(|_| {
                reg2.fire_disk(sites::BITROT_LOG_SEGMENT);
                reg2.fire(sites::MID_BULK_LOAD)
            })
            .collect();
        assert_eq!(crash_only, interleaved);
        // Reinstalling the disk plan restarts only disk hit counters.
        assert_eq!(reg2.hits(sites::MID_BULK_LOAD), 50);
        assert_eq!(reg2.disk_hits(sites::BITROT_LOG_SEGMENT), 50);
        reg2.set_disk_plan(DiskFaultPlan::at(sites::BITROT_LOG_SEGMENT, 1));
        assert_eq!(reg2.disk_hits(sites::BITROT_LOG_SEGMENT), 0);
        assert_eq!(reg2.hits(sites::MID_BULK_LOAD), 50);
    }
}
